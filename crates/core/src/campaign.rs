//! Campaign orchestration: the paper's §4–5 evaluation loop.
//!
//! A campaign generates test cases (LM programs + ECMA-guided data mutants),
//! runs them differentially over the testbed matrix, reduces and
//! deduplicates the deviations, attributes each discovered bug to the
//! earliest affected engine version (Table 3), and passes the report through
//! a stochastic **developer model** that reproduces the confirm/fix/reject
//! dynamics of Tables 2–4 (simulated time replaces the paper's 200-hour
//! wall-clock budget).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use comfort_engines::{
    shared_catalog, versions_of, ApiType, Backend, Component, Engine, EngineName, RunOptions,
    SeededBug, Testbed,
};
use comfort_lm::{Generator, GeneratorConfig};
use comfort_syntax::{parse, print_program, Program};
use comfort_telemetry::{CampaignMetrics, EventKind, ProgressHandle, Recorder, SinkHandle, Stage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::ResumeInfo;
use crate::datagen::{DataGen, DataGenConfig};
use crate::differential::{
    run_differential, CaseOutcome, DeviationKind, DeviationRecord, Signature,
};
use crate::filter::{BugKey, BugTree};
use crate::reduce::reduce_counted;
use crate::resilience::{
    run_case_hardened_cancellable, CancelToken, ChaosConfig, ExecPolicy, HealthTracker,
    TestbedHealth,
};
use crate::testcase::{Origin, TestCase};
use comfort_engines::FaultPlan;

/// Stable snake-case provenance label used in telemetry events.
fn origin_label(origin: Origin) -> &'static str {
    origin.slug()
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: the whole campaign is a pure function of it.
    pub seed: u64,
    /// Training-corpus size for the LM.
    pub corpus_programs: usize,
    /// LM configuration.
    pub lm: GeneratorConfig,
    /// Data-mutation configuration.
    pub datagen: DataGenConfig,
    /// Test-case budget (the paper runs 250k; scale to taste).
    pub max_cases: usize,
    /// Fuel per engine run.
    pub fuel: u64,
    /// Execution backend for every engine run. Both backends are
    /// bit-identical in every observable (output, fuel, coverage, report
    /// checksums); [`Backend::TreeWalk`] is the reference oracle, the
    /// default bytecode VM is the fast path. Excluded from the checkpoint
    /// fingerprint for exactly that reason — a journal written under one
    /// backend resumes cleanly under the other.
    pub backend: Backend,
    /// Simulated seconds of testing time per test case (the paper's 200 h /
    /// 250 k cases ≈ 2.88 s each).
    pub sim_seconds_per_case: f64,
    /// Also run the strict-mode testbed group (§4.2).
    pub include_strict: bool,
    /// Also include each engine's *oldest* version as extra testbeds —
    /// the paper tests 51 version configurations, which is how bugs fixed
    /// before trunk (Listings 2/3/5) are found in stable releases.
    pub include_legacy: bool,
    /// Reduce each bug-exposing case before reporting (§3.5).
    pub reduce_cases: bool,
    /// Fraction of syntactically invalid generations to keep as parser
    /// tests (§3.2 keeps 20%).
    pub keep_invalid_fraction: f64,
    /// Worker threads (`0` = available parallelism, `1` = serial). Affects
    /// scheduling only — results are bit-identical at every thread count.
    pub threads: usize,
    /// Cases per shard for the sharded executor (`0` = a single shard, which
    /// reproduces the legacy serial case stream exactly). The shard plan is
    /// a pure function of this value and `max_cases`, never of the hardware.
    pub shard_cases: usize,
    /// Telemetry sink receiving the campaign's typed event stream (see
    /// `comfort_telemetry`). Defaults to the discarding `NullSink`; the
    /// stream's *logical* content is identical at every thread count.
    pub sink: SinkHandle,
    /// Execution-hardening policy: isolation, retry, quarantine threshold,
    /// and voting quorum (see [`ExecPolicy`]).
    pub exec: ExecPolicy,
    /// Optional seeded fault injection: wraps selected testbeds of the
    /// matrix in a chaos [`FaultPlan`] (see [`ChaosConfig`]).
    pub chaos: Option<ChaosConfig>,
    /// Cooperative-shutdown token, checked at every case boundary and
    /// between testbed slots. Cloned configs **share** the token, so
    /// cancelling the campaign cancels every shard derived from it.
    /// Scheduling only — excluded from the checkpoint fingerprint.
    pub cancel: CancelToken,
    /// Optional wall-clock budget: the campaign cancels itself this long
    /// after `run` starts (armed once; shards inherit the armed instant).
    pub deadline: Option<std::time::Duration>,
    /// Write-ahead checkpoint journal path. When set, the sharded executor
    /// durably appends every completed shard and can resume from a crash
    /// via `run_campaign_resumable` to a bit-identical report.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FF,
            corpus_programs: 260,
            lm: GeneratorConfig { bpe_merges: 400, max_tokens: 1500, ..GeneratorConfig::default() },
            datagen: DataGenConfig::default(),
            max_cases: 1500,
            fuel: 400_000,
            backend: Backend::default(),
            sim_seconds_per_case: 2.88,
            include_strict: true,
            include_legacy: true,
            reduce_cases: true,
            keep_invalid_fraction: 0.2,
            threads: 1,
            shard_cases: 0,
            sink: SinkHandle::null(),
            exec: ExecPolicy::default(),
            chaos: None,
            cancel: CancelToken::new(),
            deadline: None,
            checkpoint: None,
        }
    }
}

impl CampaignConfig {
    /// Starts a builder pre-populated with the defaults.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder { config: CampaignConfig::default() }
    }
}

/// A configuration rejected by a builder's validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `max_cases` must be positive — a zero-budget campaign is a no-op.
    ZeroMaxCases,
    /// `keep_invalid_fraction` is a probability and must lie in `[0, 1]`.
    InvalidKeepFraction(f64),
    /// `fuel` must be positive — zero fuel times out every run.
    ZeroFuel,
    /// `corpus_programs` must be positive — the LM needs training data.
    EmptyCorpus,
    /// A chaos fault plan's rates must be probabilities whose sum fits one
    /// uniform draw (each in `[0, 1]`, sum ≤ 1).
    InvalidFaultPlan,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMaxCases => write!(f, "max_cases must be > 0"),
            ConfigError::InvalidKeepFraction(v) => {
                write!(f, "keep_invalid_fraction must be within [0, 1], got {v}")
            }
            ConfigError::ZeroFuel => write!(f, "fuel must be > 0"),
            ConfigError::EmptyCorpus => write!(f, "corpus_programs must be > 0"),
            ConfigError::InvalidFaultPlan => {
                write!(f, "chaos fault rates must lie in [0, 1] and sum to at most 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Chainable builder for [`CampaignConfig`] (see [`CampaignConfig::builder`]).
///
/// Struct-literal construction remains supported; the builder adds
/// validation at the boundary.
///
/// ```
/// use comfort_core::campaign::CampaignConfig;
///
/// let config = CampaignConfig::builder()
///     .seed(7)
///     .max_cases(200)
///     .include_strict(false)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.max_cases, 200);
/// assert!(CampaignConfig::builder().max_cases(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Training-corpus size for the LM.
    pub fn corpus_programs(mut self, n: usize) -> Self {
        self.config.corpus_programs = n;
        self
    }

    /// LM configuration.
    pub fn lm(mut self, lm: GeneratorConfig) -> Self {
        self.config.lm = lm;
        self
    }

    /// Data-mutation configuration.
    pub fn datagen(mut self, datagen: DataGenConfig) -> Self {
        self.config.datagen = datagen;
        self
    }

    /// Test-case budget.
    pub fn max_cases(mut self, n: usize) -> Self {
        self.config.max_cases = n;
        self
    }

    /// Fuel per engine run.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.config.fuel = fuel;
        self
    }

    /// Execution backend for every engine run (default: the bytecode VM).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Simulated seconds of testing time per test case.
    pub fn sim_seconds_per_case(mut self, secs: f64) -> Self {
        self.config.sim_seconds_per_case = secs;
        self
    }

    /// Also run the strict-mode testbed group.
    pub fn include_strict(mut self, yes: bool) -> Self {
        self.config.include_strict = yes;
        self
    }

    /// Also include each engine's oldest version as extra testbeds.
    pub fn include_legacy(mut self, yes: bool) -> Self {
        self.config.include_legacy = yes;
        self
    }

    /// Reduce each bug-exposing case before reporting.
    pub fn reduce_cases(mut self, yes: bool) -> Self {
        self.config.reduce_cases = yes;
        self
    }

    /// Fraction of invalid generations kept as parser tests.
    pub fn keep_invalid_fraction(mut self, fraction: f64) -> Self {
        self.config.keep_invalid_fraction = fraction;
        self
    }

    /// Worker threads (`0` = available parallelism, `1` = serial).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Cases per shard (`0` = single shard / legacy stream).
    pub fn shard_cases(mut self, cases: usize) -> Self {
        self.config.shard_cases = cases;
        self
    }

    /// Telemetry sink for the campaign's event stream.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.config.sink = sink;
        self
    }

    /// Execution-hardening policy (isolation, retry, quarantine, quorum).
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.config.exec = exec;
        self
    }

    /// Seeded fault injection over selected testbeds.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Cooperative-shutdown token (cloned configs share it).
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Wall-clock campaign budget; the campaign interrupts itself cleanly
    /// once it elapses.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Write-ahead checkpoint journal path (crash-safe resume).
    pub fn checkpoint_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint = Some(path.into());
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CampaignConfig, ConfigError> {
        let c = &self.config;
        if c.max_cases == 0 {
            return Err(ConfigError::ZeroMaxCases);
        }
        if !(0.0..=1.0).contains(&c.keep_invalid_fraction) {
            return Err(ConfigError::InvalidKeepFraction(c.keep_invalid_fraction));
        }
        if c.fuel == 0 {
            return Err(ConfigError::ZeroFuel);
        }
        if c.corpus_programs == 0 {
            return Err(ConfigError::EmptyCorpus);
        }
        if c.chaos.as_ref().is_some_and(|chaos| !chaos.plan.rates_valid()) {
            return Err(ConfigError::InvalidFaultPlan);
        }
        Ok(self.config)
    }
}

/// The developer-model verdict on one submitted bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Adjudication {
    /// Confirmed by the engine developers.
    pub verified: bool,
    /// Fixed after confirmation.
    pub fixed: bool,
    /// Rejected (feature unclear in ECMA-262 / unsupported version).
    pub rejected: bool,
    /// Test case accepted into Test262.
    pub accepted_test262: bool,
    /// Newly discovered (not independently reported before).
    pub novel: bool,
}

/// One submitted bug report.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Filter-tree identity.
    pub key: BugKey,
    /// Simulated time of discovery, in hours from campaign start.
    pub sim_hours: f64,
    /// Reduced (or raw) bug-exposing test case.
    pub test_case: String,
    /// Provenance of the triggering input (Table 4).
    pub origin: Origin,
    /// Earliest engine version exhibiting the deviation (Table 3).
    pub earliest_version: String,
    /// Deviation class observed.
    pub kind: DeviationKind,
    /// Only reproduces on the strict testbed.
    pub strict_only: bool,
    /// Affected component (Figure 7).
    pub component: Component,
    /// Buggy API object type (Table 5).
    pub api_type: ApiType,
    /// Ground-truth seeded bug this report maps to, when identifiable
    /// (evaluation-only — the fuzzing pipeline itself never reads it).
    pub matched_bug: Option<comfort_engines::BugId>,
    /// Developer-model outcome.
    pub adjudication: Adjudication,
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Test cases executed.
    pub cases_run: u64,
    /// Cases rejected by the front end (consistent parsing error group).
    pub parse_errors: u64,
    /// Cases where every engine agreed.
    pub passes: u64,
    /// Raw deviation observations before deduplication.
    pub deviations_observed: u64,
    /// Observations the filter discarded as duplicates.
    pub duplicates_filtered: u64,
    /// Submitted bug reports (unique filter leaves).
    pub bugs: Vec<BugReport>,
    /// Simulated campaign duration in hours.
    pub sim_hours: f64,
    /// Per-stage counters and histograms (see `comfort_telemetry`); merged
    /// conservation-exactly across shards. Wall-clock fields are
    /// measurement-only and excluded from determinism comparisons.
    pub metrics: CampaignMetrics,
    /// Per-testbed health ledger (fault counts, retries, quarantine state),
    /// indexed like the campaign's testbed matrix; merged additively across
    /// shards.
    pub health: Vec<TestbedHealth>,
    /// The campaign was cancelled (token or deadline) before finishing its
    /// budget: the report covers completed work only. Provenance — excluded
    /// from determinism comparisons.
    pub interrupted: bool,
    /// Resume provenance when this report came from `run_campaign_resumable`
    /// picking up a journal. Excluded from determinism comparisons.
    pub resume: Option<ResumeInfo>,
}

impl CampaignReport {
    /// Bugs on `engine`.
    pub fn bugs_for(&self, engine: EngineName) -> usize {
        self.bugs.iter().filter(|b| b.key.engine == engine).count()
    }

    /// (submitted, verified, fixed, test262) totals.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        let submitted = self.bugs.len();
        let verified = self.bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = self.bugs.iter().filter(|b| b.adjudication.fixed).count();
        let t262 = self.bugs.iter().filter(|b| b.adjudication.accepted_test262).count();
        (submitted, verified, fixed, t262)
    }
}

/// Builds the testbed matrix a config asks for: every engine's latest
/// version, plus legacy and strict groups when enabled.
pub fn testbeds_for(config: &CampaignConfig) -> Vec<Testbed> {
    let mut testbeds = comfort_engines::latest_testbeds();
    if config.include_legacy {
        for name in EngineName::ALL {
            let oldest = Engine::oldest(name);
            if oldest.version().ordinal != Engine::latest(name).version().ordinal {
                testbeds.push(Testbed::new(oldest, false));
            }
        }
    }
    if config.include_strict {
        for name in EngineName::ALL {
            testbeds.push(Testbed::new(Engine::latest(name), true));
        }
    }
    if let Some(chaos) = &config.chaos {
        let mut plan = chaos.plan.clone();
        if plan.seed == FaultPlan::DERIVE {
            plan.seed = FaultPlan::derived_from(config.seed).seed;
        }
        for &i in &chaos.testbeds {
            if let Some(bed) = testbeds.get_mut(i) {
                *bed = bed.clone().with_chaos(plan.clone());
            }
        }
    }
    testbeds
}

/// The campaign runner.
pub struct Campaign {
    config: CampaignConfig,
    generator: std::sync::Arc<Generator>,
    testbeds: Vec<Testbed>,
    rng: StdRng,
    next_case_id: u64,
    /// Per-case testbed-matrix parallelism (scheduling only; results are
    /// identical at every width). The sharded executor budgets this from its
    /// remaining worker threads.
    exec_threads: usize,
    /// Base (unmutated) programs of recent generations, for Table 4's
    /// mechanism attribution.
    base_programs: std::collections::HashMap<u64, Program>,
    /// Stamps telemetry events with `(shard, seq)` logical clocks.
    recorder: Recorder,
    /// Shard index in the executor's merge order (0 when run directly).
    shard: u64,
    /// Per-stage counters for the run in flight.
    metrics: CampaignMetrics,
    /// Live progress counters, safe to poll from other threads.
    progress: ProgressHandle,
}

impl Campaign {
    /// The per-run options every differential/hardened run of this campaign
    /// uses: the configured fuel and backend.
    fn case_options(&self) -> RunOptions {
        RunOptions::builder().fuel(self.config.fuel).backend(self.config.backend).build()
    }

    /// Trains the generator and prepares the testbed matrix.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = comfort_corpus::training_corpus(config.seed, config.corpus_programs);
        let generator = std::sync::Arc::new(Generator::train(&corpus, config.lm.clone()));
        let testbeds = testbeds_for(&config);
        Campaign::with_shared(config, generator, testbeds)
    }

    /// Builds a campaign around an already-trained generator and testbed
    /// matrix. This is how the sharded executor avoids re-training the LM
    /// per shard: training depends only on `(seed, corpus_programs, lm)`,
    /// which shards share — only the case-stream seed differs.
    pub fn with_shared(
        config: CampaignConfig,
        generator: std::sync::Arc<Generator>,
        testbeds: Vec<Testbed>,
    ) -> Self {
        let rng = StdRng::seed_from_u64(config.seed ^ 0x5EED);
        let exec_threads = config.threads.max(1);
        let recorder = Recorder::new(config.sink.clone(), 0);
        let progress = ProgressHandle::new();
        progress.reset(&[config.max_cases as u64]);
        Campaign {
            config,
            generator,
            testbeds,
            rng,
            next_case_id: 0,
            exec_threads,
            base_programs: std::collections::HashMap::new(),
            recorder,
            shard: 0,
            metrics: CampaignMetrics::default(),
            progress,
        }
    }

    /// Overrides the per-case testbed parallelism (scheduling only).
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// Assigns this campaign's shard index (the executor's merge order);
    /// telemetry events are stamped with it. Scheduling metadata only.
    pub fn set_shard(&mut self, shard: u64) {
        self.shard = shard;
        self.recorder = Recorder::new(self.config.sink.clone(), shard);
    }

    /// Replaces the progress handle (the executor shares one across all
    /// shards). The handle must already be `reset` for the full plan.
    pub fn set_progress(&mut self, progress: ProgressHandle) {
        self.progress = progress;
    }

    /// The live progress handle for this campaign (poll from any thread).
    pub fn progress(&self) -> ProgressHandle {
        self.progress.clone()
    }

    /// The trained generator (shared with quality measurements).
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Runs the campaign to its case budget.
    pub fn run(&mut self) -> CampaignReport {
        let run_start = std::time::Instant::now();
        self.metrics = CampaignMetrics::new();
        let mut report = CampaignReport::default();
        let mut tree = BugTree::new();
        let dev = DeveloperModel { seed: self.config.seed };
        let datagen = DataGen::new(comfort_ecma262::spec_db(), self.config.datagen.clone());
        let mut tracker = HealthTracker::new(&self.testbeds, self.config.exec.quarantine_after)
            .with_probe(self.config.exec.probe_after);
        if let Some(deadline) = self.config.deadline {
            // First arm wins: when the sharded executor already armed the
            // shared token at campaign start, shard-level re-arming is a
            // no-op, so the deadline measures the whole campaign.
            self.config.cancel.arm_deadline(std::time::Instant::now() + deadline);
        }

        self.progress.shard_started(self.shard as usize);
        self.recorder.emit(EventKind::ShardStarted {
            seed: self.config.seed,
            case_budget: self.config.max_cases as u64,
        });

        let mut queue: Vec<TestCase> = Vec::new();
        let mut base_counter = 0u64;

        while (report.cases_run as usize) < self.config.max_cases {
            if self.config.cancel.is_cancelled() {
                report.interrupted = true;
                break;
            }
            if queue.is_empty() {
                // Generate the next base program and its mutants.
                let gen_start = std::time::Instant::now();
                let source = self.generator.generate(&mut self.rng);
                base_counter += 1;
                self.metrics.stage_mut(Stage::Generation).record(
                    1,
                    source.len() as u64,
                    gen_start.elapsed().as_nanos() as u64,
                );
                let parse_start = std::time::Instant::now();
                let parsed = parse(&source);
                self.metrics.stage_mut(Stage::Validity).record(
                    1,
                    source.len() as u64,
                    parse_start.elapsed().as_nanos() as u64,
                );
                match parsed {
                    Ok(program) => {
                        let mutate_start = std::time::Instant::now();
                        let base = datagen.base_case(
                            &program,
                            base_counter,
                            &mut self.next_case_id,
                            &mut self.rng,
                        );
                        let mutants = datagen.mutate(
                            &base.program,
                            base_counter,
                            &mut self.next_case_id,
                            &mut self.rng,
                        );
                        self.metrics.stage_mut(Stage::Datagen).record(
                            1 + mutants.len() as u64,
                            mutants.len() as u64,
                            mutate_start.elapsed().as_nanos() as u64,
                        );
                        self.metrics.cases_generated += 1 + mutants.len() as u64;
                        for c in std::iter::once(&base).chain(mutants.iter()) {
                            self.recorder.emit(EventKind::CaseGenerated {
                                case_id: c.id,
                                base: c.base,
                                origin: origin_label(c.origin).to_string(),
                                mutant: c.origin == Origin::EcmaMutation,
                            });
                        }
                        // Remember the base program for mechanism attribution
                        // (bounded: drop entries once the queue has drained).
                        if self.base_programs.len() > 64 {
                            self.base_programs.clear();
                        }
                        self.base_programs.insert(base_counter, base.program.clone());
                        queue.push(base);
                        queue.extend(mutants);
                    }
                    Err(_) => {
                        // Keep a fraction of invalid programs as parser tests.
                        let kept = self.rng.random_bool(self.config.keep_invalid_fraction);
                        self.metrics.cases_rejected += 1;
                        self.recorder.emit(EventKind::CaseRejected { base: base_counter, kept });
                        if kept {
                            report.cases_run += 1;
                            report.parse_errors += 1;
                            report.sim_hours += self.config.sim_seconds_per_case / 3600.0;
                            self.metrics.cases_run += 1;
                            self.progress.case_done(self.shard as usize);
                        }
                        continue;
                    }
                }
            }
            let case = queue.remove(0);
            let diff_start = std::time::Instant::now();
            let obs = run_case_hardened_cancellable(
                &case.program,
                &self.testbeds,
                &self.case_options(),
                self.exec_threads,
                &self.config.exec,
                &mut tracker,
                Some(&self.config.cancel),
            );
            if obs.cancelled {
                // Cancelled between testbed slots: the case made no tracker
                // updates and must leave no trace in the report either — an
                // interrupted shard is discarded whole and re-run on resume.
                report.interrupted = true;
                break;
            }
            report.cases_run += 1;
            report.sim_hours += self.config.sim_seconds_per_case / 3600.0;
            self.metrics.cases_run += 1;
            self.metrics.stage_mut(Stage::Differential).record(
                obs.active_runs as u64,
                obs.active_runs as u64,
                diff_start.elapsed().as_nanos() as u64,
            );
            let outcome_label = match &obs.outcome {
                CaseOutcome::ParseError => "parse-error",
                CaseOutcome::AllTimeout => "all-timeout",
                CaseOutcome::Pass => "pass",
                CaseOutcome::Deviations(_) => "deviations",
                CaseOutcome::NoQuorum => "no-quorum",
            };
            self.recorder.emit(EventKind::DifferentialRun {
                case_id: case.id,
                testbeds: obs.active_runs as u64,
                outcome: outcome_label.to_string(),
            });
            if obs.active_runs > obs.physical_runs {
                let saved = (obs.active_runs - obs.physical_runs) as u64;
                self.metrics.executions_saved += saved;
                self.metrics.equivalence_classes += obs.classes as u64;
                self.recorder.emit(EventKind::ExecutionDeduped {
                    case_id: case.id,
                    classes: obs.classes as u64,
                    saved,
                });
            }
            self.metrics.faults_observed += obs.faults.len() as u64;
            self.metrics.runs_retried += obs.retried.len() as u64;
            self.metrics.runs_skipped += obs.skipped_runs as u64;
            for fault in &obs.faults {
                self.recorder.emit(EventKind::FaultInjected {
                    case_id: case.id,
                    testbed: fault.label.clone(),
                    kind: fault.fault.as_str().to_string(),
                });
            }
            for &(testbed, retries) in &obs.retried {
                self.recorder.emit(EventKind::RunRetried {
                    case_id: case.id,
                    testbed: self.testbeds[testbed].label(),
                    retries: u64::from(retries),
                });
            }
            for q in &obs.quarantined {
                self.metrics.testbeds_quarantined += 1;
                self.recorder.emit(EventKind::TestbedQuarantined {
                    case_id: case.id,
                    testbed: q.label.clone(),
                    hard_faults: q.hard_faults,
                });
            }
            for r in &obs.reinstated {
                self.metrics.testbeds_reinstated += 1;
                self.recorder.emit(EventKind::TestbedReinstated {
                    case_id: case.id,
                    testbed: r.label.clone(),
                    skipped: r.skipped,
                });
            }
            for group in &obs.groups {
                if group.degraded() {
                    self.metrics.quorum_degraded += 1;
                    self.recorder.emit(EventKind::QuorumDegraded {
                        case_id: case.id,
                        strict: group.strict,
                        healthy: group.present as u64,
                        total: group.total as u64,
                        voted: group.voted,
                    });
                }
            }
            match obs.outcome {
                CaseOutcome::ParseError | CaseOutcome::AllTimeout | CaseOutcome::NoQuorum => {}
                CaseOutcome::Pass => report.passes += 1,
                CaseOutcome::Deviations(devs) => {
                    report.deviations_observed += devs.len() as u64;
                    self.metrics.deviations_observed += devs.len() as u64;
                    for dev_rec in devs {
                        self.recorder.emit(EventKind::Deviation {
                            case_id: case.id,
                            engine: dev_rec.engine.as_str().to_string(),
                            kind: dev_rec.kind.to_string(),
                        });
                        self.process_deviation(&case, &dev_rec, &mut tree, &dev, &mut report);
                    }
                }
            }
            self.progress.case_done(self.shard as usize);
        }
        if report.interrupted {
            // No ShardFinished / StageTiming emissions: the executor discards
            // an interrupted shard's event buffer, and on resume the shard
            // re-runs from scratch — a half-emitted tail would desync the
            // replayed stream from an uninterrupted run's.
            report.metrics = self.metrics.clone();
            report.health = tracker.reports();
            return report;
        }
        report.duplicates_filtered = tree.duplicates_filtered();
        let filter_stats = tree.stats();
        self.metrics.stage_mut(Stage::Filter).record(
            filter_stats.observed,
            filter_stats.duplicates,
            0,
        );
        for stage in Stage::ALL {
            let s = *self.metrics.stage(stage);
            self.recorder.emit(EventKind::StageTiming {
                stage,
                invocations: s.invocations,
                items: s.items,
                logical_cost: s.logical_cost,
                wall_nanos: Some(s.wall_nanos),
            });
        }
        self.recorder.emit(EventKind::ShardFinished {
            cases_run: report.cases_run,
            bugs_reported: report.bugs.len() as u64,
            wall_nanos: Some(run_start.elapsed().as_nanos() as u64),
        });
        self.progress.shard_finished(self.shard as usize);
        report.metrics = self.metrics.clone();
        report.health = tracker.reports();
        report
    }

    fn process_deviation(
        &mut self,
        case: &TestCase,
        dev_rec: &DeviationRecord,
        tree: &mut BugTree,
        dev: &DeveloperModel,
        report: &mut CampaignReport,
    ) {
        let behavior = behavior_label(dev_rec);
        let provisional = BugKey {
            engine: dev_rec.engine,
            api: dominant_api(&case.program),
            behavior: behavior.clone(),
        };
        if tree.contains(&provisional) {
            tree.observe(&provisional); // count the duplicate
            self.metrics.bugs_deduped += 1;
            self.recorder.emit(EventKind::BugDeduped {
                engine: provisional.engine.as_str().to_string(),
                key: provisional.to_string(),
                cross_shard: false,
            });
            return;
        }

        // Reduce the exposing test case (§3.5) against this deviation. The
        // final bug identity uses the *reduced* program, whose remaining API
        // call is the one actually involved in the bug.
        let (reduced, reduced_program) = if self.config.reduce_cases {
            let beds = self.testbeds.clone();
            let engine = dev_rec.engine;
            let opts = self.case_options();
            let reduce_start = std::time::Instant::now();
            let (program, reduce_stats) = reduce_counted(&case.program, &mut |p: &Program| {
                matches!(
                    run_differential(p, &beds, &opts),
                    CaseOutcome::Deviations(d) if d.iter().any(|r| r.engine == engine)
                )
            });
            self.metrics.stage_mut(Stage::Reduction).record(
                reduce_stats.candidates_tried,
                reduce_stats.removals_kept,
                reduce_start.elapsed().as_nanos() as u64,
            );
            (print_program(&program), program)
        } else {
            (case.source.clone(), case.program.clone())
        };
        let api = dominant_api(&reduced_program);
        let key = BugKey { engine: dev_rec.engine, api: api.clone(), behavior };
        tree.observe(&provisional);
        if key != provisional && !tree.observe(&key) {
            // The reduced identity collides with a known bug.
            self.metrics.bugs_deduped += 1;
            self.recorder.emit(EventKind::BugDeduped {
                engine: key.engine.as_str().to_string(),
                key: key.to_string(),
                cross_shard: false,
            });
            return;
        }

        // Earliest-version attribution (Table 3).
        let earliest_version =
            earliest_affected_version(dev_rec, &case.program, &self.case_options());

        // Strict-only check: does the normal-mode group also deviate?
        let strict_only = dev_rec.strict && {
            let normal: Vec<Testbed> =
                self.testbeds.iter().filter(|t| !t.strict).cloned().collect();
            !matches!(
                run_differential(&case.program, &normal, &self.case_options()),
                CaseOutcome::Deviations(d) if d.iter().any(|r| r.engine == dev_rec.engine)
            )
        };

        let matched = match_seeded_bug(dev_rec, api.as_deref());
        let component = matched.map(|b| b.component).unwrap_or(match dev_rec.kind {
            DeviationKind::Timeout => Component::Optimizer,
            DeviationKind::Crash => Component::CodeGen,
            _ => Component::Implementation,
        });
        let api_type =
            matched.map(|b| b.api_type).unwrap_or_else(|| api_type_by_name(api.as_deref()));

        // Table 4 attribution: a bug first seen on a mutant still counts as
        // "test program generation" if the *unmutated* program already
        // triggers the same deviation — the ECMA-guided data was not needed.
        let mut origin = case.origin;
        if origin == Origin::EcmaMutation {
            if let Some(base_program) = self.base_programs.get(&case.base) {
                let base_deviates = matches!(
                    run_differential(base_program, &self.testbeds, &self.case_options()),
                    CaseOutcome::Deviations(d)
                        if d.iter().any(|r| r.engine == dev_rec.engine && r.kind == dev_rec.kind)
                );
                if base_deviates {
                    origin = Origin::ProgramGen;
                }
            }
        }

        let adjudication = dev.adjudicate(&key, origin, self.config.seed);
        self.metrics.bugs_reported += 1;
        self.progress.bug_found(self.shard as usize);
        report.bugs.push(BugReport {
            key,
            sim_hours: report.sim_hours,
            test_case: reduced,
            origin,
            earliest_version,
            kind: dev_rec.kind,
            strict_only,
            component,
            api_type,
            matched_bug: matched.map(|b| b.id),
            adjudication,
        });
    }
}

/// Finds the earliest version of the deviating engine that still deviates
/// from the expected signature (Table 3's attribution rule: "we only
/// attribute the discovered bugs to the earliest bug-exposing version").
fn earliest_affected_version(
    dev_rec: &DeviationRecord,
    program: &Program,
    options: &RunOptions,
) -> String {
    // One compile serves the whole version walk.
    let chunk = comfort_engines::compile(program);
    let options = options.to_builder().strict(dev_rec.strict).build();
    for version in versions_of(dev_rec.engine) {
        let engine = Engine::new(version);
        let r = engine.run_compiled(&chunk, &options);
        let sig = Signature::of(&r.status, &r.output);
        if sig == dev_rec.actual && sig != dev_rec.expected {
            return version.label();
        }
    }
    // Fall back to the version the deviation was seen on.
    dev_rec.version.clone()
}

/// Picks the API name to file the bug under: the first called API known to
/// the spec database, else the first standard-looking call, else `None`.
pub fn dominant_api(program: &Program) -> Option<String> {
    let names = comfort_syntax::visit::called_api_names(program);
    let db = comfort_ecma262::spec_db();
    names
        .iter()
        .find(|n| db.get_by_short_name(n).is_some())
        .or_else(|| {
            names.iter().find(|n| {
                shared_catalog()
                    .iter()
                    .any(|b| b.api.is_some_and(|api| api.rsplit('.').next() == Some(n.as_str())))
            })
        })
        .cloned()
}

/// Behaviour label for the filter tree's third layer.
fn behavior_label(dev_rec: &DeviationRecord) -> String {
    match dev_rec.kind {
        DeviationKind::UnexpectedError => dev_rec.actual.to_string(),
        DeviationKind::MissingError => format!("Missing{}", dev_rec.expected),
        DeviationKind::WrongOutput => "WrongOutput".to_string(),
        DeviationKind::Crash => "Crash".to_string(),
        DeviationKind::Timeout => "TimeOut".to_string(),
    }
}

/// Ground-truth linkage: the seeded catalog bug this deviation most likely
/// corresponds to (evaluation bookkeeping only).
fn match_seeded_bug(dev_rec: &DeviationRecord, api: Option<&str>) -> Option<&'static SeededBug> {
    let catalog = shared_catalog();
    // API-specific bugs first.
    if let Some(short) = api {
        if let Some(b) = catalog.iter().find(|b| {
            b.engine == dev_rec.engine && b.api.is_some_and(|a| a.rsplit('.').next() == Some(short))
        }) {
            return Some(b);
        }
    }
    // Special-hook bugs by behaviour.
    catalog.iter().find(|b| {
        b.engine == dev_rec.engine
            && b.api.is_none()
            && match dev_rec.kind {
                DeviationKind::Timeout => b.effect == comfort_engines::Effect::ArrayReverseFill,
                DeviationKind::Crash => b.effect == comfort_engines::Effect::Crash,
                _ => matches!(
                    b.effect,
                    comfort_engines::Effect::EvalHeadlessFor
                        | comfort_engines::Effect::SplitAnchor
                        | comfort_engines::Effect::ArrayBoolKeyAppend
                        | comfort_engines::Effect::DefinePropLengthSuppress
                ),
            }
    })
}

/// Table 5 classification when no catalog linkage exists.
fn api_type_by_name(api: Option<&str>) -> ApiType {
    let Some(name) = api else { return ApiType::NonApi };
    let db = comfort_ecma262::spec_db();
    let Some(spec) = db.get_by_short_name(name) else { return ApiType::NonApi };
    let full = &spec.name;
    if full.starts_with("String") {
        ApiType::String
    } else if full.starts_with("Array") {
        ApiType::Array
    } else if full.starts_with("Object") {
        ApiType::Object
    } else if full.starts_with("Number") || full == "parseInt" || full == "parseFloat" {
        ApiType::Number
    } else if full.contains("TypedArray") || full.ends_with("Array") && full.len() < 14 {
        ApiType::TypedArray
    } else if full.starts_with("DataView") {
        ApiType::DataView
    } else if full.starts_with("JSON") {
        ApiType::Json
    } else if full.starts_with("RegExp") {
        ApiType::RegExp
    } else if full.starts_with("Date") {
        ApiType::Date
    } else if full == "eval" {
        ApiType::Eval
    } else {
        ApiType::NonApi
    }
}

// ---------------------------------------------------------------------------
// Developer model
// ---------------------------------------------------------------------------

/// Stochastic stand-in for the human bug-triage process, calibrated to the
/// per-engine verify/fix ratios of Table 2 and the Table 4 Test262
/// acceptance split.
#[derive(Debug, Clone, Copy)]
pub struct DeveloperModel {
    /// Model seed (verdicts are a pure function of seed × bug identity).
    pub seed: u64,
}

impl DeveloperModel {
    /// Adjudicates one bug report.
    pub fn adjudicate(&self, key: &BugKey, origin: Origin, salt: u64) -> Adjudication {
        let mut hasher = DefaultHasher::new();
        (self.seed, salt, &key.api, &key.behavior, key.engine as u8).hash(&mut hasher);
        let mut rng = StdRng::seed_from_u64(hasher.finish());

        let (p_verify, p_fix) = engine_triage_rates(key.engine);
        let verified = rng.random_bool(p_verify);
        let fixed = verified && rng.random_bool(p_fix);
        let rejected = !verified && rng.random_bool(0.3); // 9 of 29 unverified
                                                          // Table 4: 16/61 ECMA-guided cases reached Test262 vs 5/97 generated.
        let p_262 = match origin {
            Origin::EcmaMutation => 0.26,
            Origin::ProgramGen => 0.05,
        };
        let accepted_test262 = verified && rng.random_bool(p_262);
        // 109 of 158 were newly discovered.
        let novel = rng.random_bool(109.0 / 158.0);
        Adjudication { verified, fixed, rejected, accepted_test262, novel }
    }
}

/// (P(verified | submitted), P(fixed | verified)) per engine, from Table 2.
fn engine_triage_rates(engine: EngineName) -> (f64, f64) {
    match engine {
        EngineName::V8 => (1.0, 0.75),
        EngineName::ChakraCore => (1.0, 0.71),
        EngineName::Jsc => (11.0 / 12.0, 1.0),
        EngineName::SpiderMonkey => (1.0, 1.0),
        EngineName::Rhino => (29.0 / 44.0, 1.0),
        EngineName::Nashorn => (12.0 / 18.0, 2.0 / 12.0), // EOL June 2020
        EngineName::Hermes => (1.0, 15.0 / 16.0),
        EngineName::JerryScript => (31.0 / 35.0, 1.0),
        EngineName::QuickJs => (14.0 / 17.0, 1.0),
        EngineName::GraalJs => (1.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CampaignConfig {
        // Seed chosen so the 120-case stream actually trips seeded engine
        // bugs; some seeds (e.g. 11, 13) happen to produce a bug-free stream
        // at this budget, which would make the discovery assertions vacuous.
        CampaignConfig::builder()
            .seed(2)
            .corpus_programs(80)
            .lm(GeneratorConfig { order: 8, bpe_merges: 200, top_k: 10, max_tokens: 800 })
            .datagen(DataGenConfig { max_mutants_per_program: 10, random_mutants: 2 })
            .max_cases(120)
            .fuel(200_000)
            .sim_seconds_per_case(2.88)
            .include_strict(false)
            .include_legacy(false)
            .reduce_cases(false)
            .keep_invalid_fraction(0.2)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn small_campaign_finds_bugs() {
        let mut campaign = Campaign::new(tiny_config());
        let report = campaign.run();
        assert_eq!(report.cases_run, 120);
        assert!(
            !report.bugs.is_empty(),
            "a 120-case campaign should surface at least one seeded bug"
        );
        // Unique keys only.
        let mut keys: Vec<String> = report.bugs.iter().map(|b| b.key.to_string()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "bug reports must be dedup'd");
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = Campaign::new(tiny_config()).run();
        let b = Campaign::new(tiny_config()).run();
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.bugs.len(), b.bugs.len());
        let ka: Vec<String> = a.bugs.iter().map(|x| x.key.to_string()).collect();
        let kb: Vec<String> = b.bugs.iter().map(|x| x.key.to_string()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn developer_model_is_deterministic_and_calibrated() {
        let dev = DeveloperModel { seed: 1 };
        let key = BugKey {
            engine: EngineName::Rhino,
            api: Some("substr".into()),
            behavior: "WrongOutput".into(),
        };
        assert_eq!(
            dev.adjudicate(&key, Origin::EcmaMutation, 0),
            dev.adjudicate(&key, Origin::EcmaMutation, 0)
        );
        // Aggregate rates over many synthetic bugs approximate Table 2.
        let mut verified = 0;
        let mut n = 0;
        for i in 0..400 {
            let k = BugKey {
                engine: EngineName::Rhino,
                api: Some(format!("api{i}")),
                behavior: "WrongOutput".into(),
            };
            if dev.adjudicate(&k, Origin::ProgramGen, 0).verified {
                verified += 1;
            }
            n += 1;
        }
        let rate = verified as f64 / n as f64;
        assert!((rate - 29.0 / 44.0).abs() < 0.1, "verify rate {rate}");
    }

    #[test]
    fn dominant_api_prefers_spec_known_calls() {
        let program = parse("var r = customThing(1); print('x'.substr(0));").expect("parses");
        assert_eq!(dominant_api(&program).as_deref(), Some("substr"));
        let none = parse("var x = 1 + 2; print(x);").expect("parses");
        assert_eq!(dominant_api(&none), None);
    }

    #[test]
    fn figure2_end_to_end_discovery() {
        // Feed the exact Figure 2 case through deviation processing.
        let mut campaign = Campaign::new(CampaignConfig {
            reduce_cases: true,
            include_strict: false,
            ..tiny_config()
        });
        let source = "var s = 'Name: Albert';\nvar junk = [1, 2, 3].join('-');\nprint(junk);\nvar len = undefined;\nprint(s.substr(6, len));";
        let program = parse(source).expect("parses");
        let case = TestCase::new(0, source.to_string(), program, Origin::EcmaMutation, 0);
        let mut tree = BugTree::new();
        let devmodel = DeveloperModel { seed: 3 };
        let mut report = CampaignReport::default();
        let outcome =
            run_differential(&case.program, &campaign.testbeds, &RunOptions::with_fuel(200_000));
        let CaseOutcome::Deviations(devs) = outcome else { panic!("expected deviation") };
        for d in devs {
            campaign.process_deviation(&case, &d, &mut tree, &devmodel, &mut report);
        }
        assert_eq!(report.bugs.len(), 1);
        let bug = &report.bugs[0];
        assert_eq!(bug.key.engine, EngineName::Rhino);
        assert_eq!(bug.key.api.as_deref(), Some("substr"));
        assert_eq!(bug.origin, Origin::EcmaMutation);
        // The reducer must have stripped the junk statements.
        assert!(!bug.test_case.contains("junk"), "{}", bug.test_case);
        // Ground truth: this is catalog bug B000 (the Figure 2 Rhino bug).
        assert_eq!(bug.matched_bug, Some(comfort_engines::BugId(0)));
        // The substr bug exists in every Rhino version; earliest is v1.7R3.
        assert!(bug.earliest_version.contains("1.7R3"), "{}", bug.earliest_version);
    }
}
