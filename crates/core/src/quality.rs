//! Test-case quality metrics (§5.3.3, Figure 9): syntax passing rate and
//! statement/function/branch coverage of generated test programs.

use comfort_interp::{compile, hooks::SpecProfile, run_chunk, RunOptions, Universe};
use comfort_syntax::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fuzzer::Fuzzer;

/// Figure 9 metrics for one fuzzer.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Fuzzer name.
    pub fuzzer: String,
    /// Programs generated for the validity measurement.
    pub generated: usize,
    /// Fraction accepted by the static parser (the JSHint check).
    pub syntax_pass_rate: f64,
    /// Fraction of *valid* programs that throw at runtime (the paper reports
    /// ~18% semantic-error rate for COMFORT).
    pub runtime_error_rate: f64,
    /// Mean statement coverage over programs that have statements.
    pub stmt_coverage: f64,
    /// Mean function coverage over programs that define functions (`NaN`
    /// when no sampled program does).
    pub func_coverage: f64,
    /// Mean branch coverage over programs that have branch points (`NaN`
    /// when no sampled program does).
    pub branch_coverage: f64,
}

/// Measures a fuzzer: generate `n` programs, compute the passing rate, then
/// run up to `coverage_sample` valid ones on the conforming reference engine
/// with coverage instrumentation.
pub fn measure(
    fuzzer: &mut dyn Fuzzer,
    seed: u64,
    n: usize,
    coverage_sample: usize,
) -> QualityReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut valid = Vec::new();
    let mut generated = 0;
    for _ in 0..n {
        let src = fuzzer.next_case(&mut rng);
        generated += 1;
        if let Ok(program) = parse(&src) {
            valid.push(program);
        }
    }
    let syntax_pass_rate = valid.len() as f64 / generated.max(1) as f64;

    // Coverage is averaged per metric over the programs that *have* that
    // metric's targets — a program with no branches says nothing about
    // branch coverage (Istanbul reports these as n/a too).
    let mut stmt = (0.0, 0usize);
    let mut func = (0.0, 0usize);
    let mut branch = (0.0, 0usize);
    let mut errors = 0usize;
    let sample = valid.iter().take(coverage_sample).collect::<Vec<_>>();
    for program in &sample {
        let universe = Universe::of(program);
        let result = run_chunk(
            &compile(program),
            &SpecProfile,
            &RunOptions { coverage: true, fuel: 300_000, ..RunOptions::default() },
        );
        if !result.status.is_completed() {
            errors += 1;
        }
        if let Some(cov) = result.coverage {
            if !universe.stmts.is_empty() {
                stmt = (stmt.0 + cov.stmt_ratio(&universe), stmt.1 + 1);
            }
            if !universe.funcs.is_empty() {
                func = (func.0 + cov.func_ratio(&universe), func.1 + 1);
            }
            if !universe.branches.is_empty() {
                branch = (branch.0 + cov.branch_ratio(&universe), branch.1 + 1);
            }
        }
    }
    let mean = |(sum, n): (f64, usize)| if n == 0 { f64::NAN } else { sum / n as f64 };
    QualityReport {
        fuzzer: fuzzer.name().to_string(),
        generated,
        syntax_pass_rate,
        runtime_error_rate: errors as f64 / sample.len().max(1) as f64,
        stmt_coverage: mean(stmt),
        func_coverage: mean(func),
        branch_coverage: mean(branch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(&'static str);
    impl Fuzzer for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn next_case(&mut self, _rng: &mut StdRng) -> String {
            self.0.to_string()
        }
    }

    #[test]
    fn valid_program_scores_full_pass_rate() {
        let mut f = Fixed("var x = 1; if (x) { print(x); } else { print(0); }");
        let q = measure(&mut f, 1, 10, 10);
        assert_eq!(q.syntax_pass_rate, 1.0);
        assert!(q.stmt_coverage > 0.5);
        assert!(q.branch_coverage > 0.0 && q.branch_coverage <= 1.0);
        assert_eq!(q.runtime_error_rate, 0.0);
    }

    #[test]
    fn invalid_program_scores_zero() {
        let mut f = Fixed("var x = ;");
        let q = measure(&mut f, 1, 10, 10);
        assert_eq!(q.syntax_pass_rate, 0.0);
    }

    #[test]
    fn runtime_errors_counted() {
        let mut f = Fixed("undefinedVariable.method();");
        let q = measure(&mut f, 1, 4, 4);
        assert_eq!(q.syntax_pass_rate, 1.0);
        assert_eq!(q.runtime_error_rate, 1.0);
    }
}
