//! Extensions the paper sketches as future work, implemented here:
//!
//! * [`InvalidSelector`] — §3.2: *"A better approach for choosing
//!   syntax-incorrect programs for testing would consider program
//!   characteristics like API coverage and code length."* Instead of keeping
//!   a random 20 % of invalid generations, score them by API mentions and
//!   length and keep the most promising.
//! * [`BugSeedMutator`] — §6 (vs AutoTest): *"extending COMFORT to mutate
//!   bug-exposing test cases could be valuable."* A LangFuzz-style feedback
//!   loop that re-mutates reduced bug-exposing cases to hunt for sibling
//!   bugs on the same or neighbouring APIs.

use comfort_syntax::parse;
use rand::rngs::StdRng;

use crate::campaign::BugReport;
use crate::datagen::{DataGen, DataGenConfig};
use crate::testcase::TestCase;

/// Scores syntactically invalid generations (§3.2 future work).
#[derive(Debug, Clone)]
pub struct InvalidSelector {
    /// Keep the top fraction by score (paper keeps 20 % at random).
    pub keep_fraction: f64,
}

impl Default for InvalidSelector {
    fn default() -> Self {
        InvalidSelector { keep_fraction: 0.2 }
    }
}

impl InvalidSelector {
    /// Score of an invalid program: API-name mentions (parser stress with
    /// realistic shape) weighted above raw length, with over-long garbage
    /// penalized.
    pub fn score(&self, source: &str) -> f64 {
        let db = comfort_ecma262::spec_db();
        let api_mentions =
            db.iter().filter(|spec| source.contains(spec.short_name())).count() as f64;
        let len = source.len() as f64;
        let length_term = if len > 4000.0 { -1.0 } else { (len / 400.0).min(2.0) };
        api_mentions * 3.0 + length_term
    }

    /// Selects the invalid programs worth running: the top
    /// `keep_fraction` of `candidates` by score.
    pub fn select<'a>(&self, candidates: &'a [String]) -> Vec<&'a String> {
        let mut scored: Vec<(f64, &String)> =
            candidates.iter().map(|c| (self.score(c), c)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let keep =
            ((candidates.len() as f64 * self.keep_fraction).ceil() as usize).min(candidates.len());
        scored.into_iter().take(keep).map(|(_, c)| c).collect()
    }
}

/// LangFuzz-style feedback: mutate reduced bug-exposing cases (§6).
#[derive(Debug)]
pub struct BugSeedMutator {
    datagen_config: DataGenConfig,
}

impl BugSeedMutator {
    /// Creates the mutator with the standard Algorithm-1 configuration.
    pub fn new(datagen_config: DataGenConfig) -> Self {
        BugSeedMutator { datagen_config }
    }

    /// Derives fresh test cases from the reduced test cases of already
    /// discovered bugs. The reduced cases are minimal bug triggers, so their
    /// mutants probe the *neighbourhood* of a confirmed defect — where
    /// sibling defects cluster.
    pub fn derive(&self, bugs: &[BugReport], rng: &mut StdRng) -> Vec<TestCase> {
        let datagen = DataGen::new(comfort_ecma262::spec_db(), self.datagen_config.clone());
        let mut out = Vec::new();
        let mut next_id = 1_000_000; // distinct id space from the main campaign
        for (i, bug) in bugs.iter().enumerate() {
            let Ok(program) = parse(&bug.test_case) else { continue };
            let mutants = datagen.mutate(&program, i as u64, &mut next_id, rng);
            out.extend(mutants);
        }
        out
    }
}

impl Default for BugSeedMutator {
    fn default() -> Self {
        BugSeedMutator::new(DataGenConfig { max_mutants_per_program: 8, random_mutants: 2 })
    }
}

/// Runs one feedback round on top of a finished campaign: mutate the
/// discovered bugs' reduced cases and count how many *new* unique deviations
/// the neighbourhood probing yields.
pub fn feedback_round(
    bugs: &[BugReport],
    testbeds: &[comfort_engines::Testbed],
    fuel: u64,
    seed: u64,
) -> Vec<crate::filter::BugKey> {
    use crate::differential::{run_differential, CaseOutcome};
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let mutator = BugSeedMutator::default();
    let mut tree = crate::filter::BugTree::new();
    // Pre-seed the tree with the known bugs so only *new* paths count.
    for bug in bugs {
        tree.observe(&bug.key);
    }
    let mut fresh = Vec::new();
    for case in mutator.derive(bugs, &mut rng) {
        if let CaseOutcome::Deviations(devs) =
            run_differential(&case.program, testbeds, &comfort_engines::RunOptions::with_fuel(fuel))
        {
            for d in devs {
                let key = crate::filter::BugKey {
                    engine: d.engine,
                    api: crate::campaign::dominant_api(&case.program),
                    behavior: match d.kind {
                        crate::differential::DeviationKind::UnexpectedError => d.actual.to_string(),
                        other => other.to_string(),
                    },
                };
                if tree.observe(&key) {
                    fresh.push(key);
                }
            }
        }
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn invalid_selector_prefers_api_rich_programs() {
        let sel = InvalidSelector::default();
        let garbage = "var var var {{{".to_string();
        let api_rich = "var x = s.substr(1, ; x.toFixed(".to_string();
        assert!(sel.score(&api_rich) > sel.score(&garbage));
        let candidates = vec![garbage.clone(), api_rich.clone()];
        let kept = sel.select(&candidates);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], &api_rich);
    }

    #[test]
    fn selector_keeps_requested_fraction() {
        let sel = InvalidSelector { keep_fraction: 0.5 };
        let candidates: Vec<String> =
            (0..10).map(|i| format!("broken program {i} substr(")).collect();
        assert_eq!(sel.select(&candidates).len(), 5);
    }

    #[test]
    fn bug_seed_mutants_parse_and_probe_the_same_api() {
        use crate::campaign::Adjudication;
        use crate::differential::DeviationKind;
        use crate::filter::BugKey;
        use comfort_engines::{ApiType, Component, EngineName};

        let bug = BugReport {
            key: BugKey {
                engine: EngineName::Rhino,
                api: Some("substr".into()),
                behavior: "WrongOutput".into(),
            },
            sim_hours: 0.0,
            test_case: "var s = 'Name: Albert';\nvar len = 3;\nprint(s.substr(6, len));".into(),
            origin: crate::testcase::Origin::EcmaMutation,
            earliest_version: "Rhino v1.7R3".into(),
            kind: DeviationKind::WrongOutput,
            strict_only: false,
            component: Component::Implementation,
            api_type: ApiType::String,
            matched_bug: None,
            adjudication: Adjudication {
                verified: true,
                fixed: false,
                rejected: false,
                accepted_test262: false,
                novel: true,
            },
        };
        let mutator = BugSeedMutator::default();
        let mut rng = StdRng::seed_from_u64(1);
        let derived = mutator.derive(&[bug], &mut rng);
        assert!(!derived.is_empty());
        for case in &derived {
            parse(&case.source).expect("feedback mutants are valid JS");
            assert!(case.source.contains("substr"));
        }
    }

    #[test]
    fn feedback_round_only_reports_new_keys() {
        use crate::campaign::{Campaign, CampaignConfig};
        use comfort_lm::GeneratorConfig;
        let mut campaign = Campaign::new(CampaignConfig {
            seed: 77,
            corpus_programs: 80,
            lm: GeneratorConfig { order: 8, bpe_merges: 200, top_k: 10, max_tokens: 700 },
            max_cases: 80,
            include_strict: false,
            include_legacy: false,
            reduce_cases: true,
            ..CampaignConfig::default()
        });
        let report = campaign.run();
        let beds = comfort_engines::latest_testbeds();
        let fresh = feedback_round(&report.bugs, &beds, 300_000, 9);
        // Every returned key must be genuinely new.
        for key in &fresh {
            assert!(
                !report.bugs.iter().any(|b| &b.key == key),
                "feedback returned a known bug: {key}"
            );
        }
    }
}
