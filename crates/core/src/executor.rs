//! Sharded, deterministic parallel campaign executor.
//!
//! The paper's evaluation runs 250k cases over 102 testbeds in a 200-hour
//! budget; a strictly serial loop cannot approach that. This module splits a
//! campaign's `max_cases` budget into **shards** — independent
//! sub-campaigns whose seeds are a pure function of `(master_seed,
//! shard_index)` — runs them on a `std::thread` worker pool, and merges the
//! shard reports into one [`CampaignReport`].
//!
//! # Determinism contract
//!
//! * The shard plan depends only on the configuration (`max_cases`,
//!   `shard_cases`, `seed`) — never on thread count or hardware.
//! * `threads` affects scheduling only: shard reports are collected by
//!   shard index and merged in shard order, so the merged report is
//!   **bit-identical** at `threads = 1`, `2`, `8`, or any other width.
//! * A single-shard plan (`shard_cases = 0`, the default) reproduces the
//!   legacy serial `Campaign::run` case stream exactly.
//!
//! Inside each shard, the per-case testbed matrix is fanned out across the
//! remaining thread budget too (see
//! [`run_differential_pooled`](crate::differential::run_differential_pooled)),
//! which keeps the pool busy even when a plan has fewer shards than workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use comfort_engines::Testbed;
use comfort_lm::Generator;
use comfort_telemetry::{EventKind, MemorySink, ProgressHandle, Recorder, SinkHandle, MERGE_SHARD};

use crate::campaign::{testbeds_for, Campaign, CampaignConfig, CampaignReport};
use crate::filter::BugTree;

// The executor shares programs, testbeds, and the trained generator across
// worker threads by reference; these assertions pin the Send/Sync audit of
// the engine substrate at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Testbed>();
    assert_send_sync::<comfort_engines::Engine>();
    assert_send_sync::<comfort_syntax::Program>();
    assert_send_sync::<Generator>();
    assert_send_sync::<CampaignReport>();
};

/// One shard's slice of the campaign budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position in the shard plan (merge order).
    pub index: usize,
    /// The shard's campaign seed, `mix(master_seed, index)`.
    pub seed: u64,
    /// The shard's share of `max_cases`.
    pub cases: usize,
}

/// Derives a shard's seed from the master seed (splitmix64-style mixing, so
/// neighbouring shard indices produce unrelated streams).
pub fn shard_seed(master_seed: u64, shard_index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(shard_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `config.max_cases` into the shard plan — a pure function of the
/// configuration. With `shard_cases = 0` (or one shard's worth of budget)
/// the plan is a single shard carrying the master seed, i.e. exactly the
/// legacy serial campaign.
pub fn plan_shards(config: &CampaignConfig) -> Vec<ShardSpec> {
    let per_shard = if config.shard_cases == 0 { config.max_cases } else { config.shard_cases };
    let count = config.max_cases.div_ceil(per_shard.max(1)).max(1);
    if count == 1 {
        return vec![ShardSpec { index: 0, seed: config.seed, cases: config.max_cases }];
    }
    // Even split: the first `max_cases % count` shards carry one extra case,
    // so the shares always sum to exactly `max_cases`.
    let base = config.max_cases / count;
    let extra = config.max_cases % count;
    (0..count)
        .map(|i| ShardSpec {
            index: i,
            seed: shard_seed(config.seed, i as u64),
            cases: base + usize::from(i < extra),
        })
        .collect()
}

/// Resolves a `threads` knob: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Merges per-shard reports (in shard order) into one campaign report.
///
/// Counters are summed; each bug's `sim_hours` is re-based by the simulated
/// time of the preceding shards (shards model consecutive slices of one
/// testing budget); bugs whose [`BugKey`](crate::filter::BugKey) was already
/// reported by an earlier shard are counted into `duplicates_filtered`
/// instead of being reported twice.
pub fn merge_shard_reports(shard_reports: &[CampaignReport]) -> CampaignReport {
    merge_shard_reports_with_sink(shard_reports, &SinkHandle::null())
}

/// [`merge_shard_reports`], additionally emitting a cross-shard
/// [`BugDeduped`](comfort_telemetry::EventKind::BugDeduped) event (stamped
/// with the [`MERGE_SHARD`] pseudo-shard) for every bug an earlier shard
/// already reported. Metrics merge conservation-exactly: every counter of
/// the merged value is the sum of the shard values, with cross-shard
/// duplicates moved from `bugs_reported` to `bugs_deduped`.
pub fn merge_shard_reports_with_sink(
    shard_reports: &[CampaignReport],
    sink: &SinkHandle,
) -> CampaignReport {
    let mut merged = CampaignReport::default();
    let mut tree = BugTree::new();
    let mut recorder = Recorder::new(sink.clone(), MERGE_SHARD);
    for report in shard_reports {
        merged.cases_run += report.cases_run;
        merged.parse_errors += report.parse_errors;
        merged.passes += report.passes;
        merged.deviations_observed += report.deviations_observed;
        merged.duplicates_filtered += report.duplicates_filtered;
        merged.metrics.merge_from(&report.metrics);
        if merged.health.is_empty() {
            merged.health = report.health.clone();
        } else {
            debug_assert_eq!(merged.health.len(), report.health.len());
            for (acc, shard) in merged.health.iter_mut().zip(&report.health) {
                acc.merge_from(shard);
            }
        }
        for bug in &report.bugs {
            if tree.observe(&bug.key) {
                let mut rebased = bug.clone();
                rebased.sim_hours += merged.sim_hours;
                merged.bugs.push(rebased);
            } else {
                merged.duplicates_filtered += 1;
                merged.metrics.dedup_reported_bug();
                recorder.emit(EventKind::BugDeduped {
                    engine: bug.key.engine.as_str().to_string(),
                    key: bug.key.to_string(),
                    cross_shard: true,
                });
            }
        }
        merged.sim_hours += report.sim_hours;
    }
    merged
}

/// The sharded campaign executor.
///
/// Trains the language model **once** (training is a pure function of the
/// master seed and LM config, which all shards share) and builds the
/// testbed matrix once; each shard then runs a [`Campaign`] over its slice
/// of the budget with its derived seed.
///
/// ```no_run
/// use comfort_core::campaign::CampaignConfig;
/// use comfort_core::executor::ShardedCampaign;
///
/// let config = CampaignConfig::builder()
///     .max_cases(240)
///     .shard_cases(40) // 6 shards
///     .threads(0)      // all cores
///     .build()
///     .expect("valid config");
/// let report = ShardedCampaign::new(config).run();
/// println!("{} bugs", report.bugs.len());
/// ```
pub struct ShardedCampaign {
    config: CampaignConfig,
    generator: Arc<Generator>,
    testbeds: Vec<Testbed>,
    progress: ProgressHandle,
}

impl ShardedCampaign {
    /// Trains the generator and prepares the shared testbed matrix.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = comfort_corpus::training_corpus(config.seed, config.corpus_programs);
        let generator = Arc::new(Generator::train(&corpus, config.lm.clone()));
        let testbeds = testbeds_for(&config);
        ShardedCampaign { config, generator, testbeds, progress: ProgressHandle::new() }
    }

    /// The live progress handle for this executor. Poll it from another
    /// thread while [`run`](Self::run) executes: completed-case counts are
    /// monotonically increasing, and per-shard snapshots carry throughput.
    pub fn progress(&self) -> ProgressHandle {
        self.progress.clone()
    }

    /// Replaces the progress handle with a caller-owned one (the `Comfort`
    /// facade shares a single handle across budgeted runs).
    pub fn attach_progress(&mut self, progress: ProgressHandle) {
        self.progress = progress;
    }

    /// The shard plan this executor will run.
    pub fn plan(&self) -> Vec<ShardSpec> {
        plan_shards(&self.config)
    }

    /// Runs the campaign with the configured thread count.
    pub fn run(&self) -> CampaignReport {
        self.run_with_threads(resolve_threads(self.config.threads))
    }

    /// Runs the campaign on exactly `threads` workers (`0` = available
    /// parallelism). The report is bit-identical for every `threads` value.
    ///
    /// Telemetry keeps the same contract: each shard's event stream is
    /// buffered and flushed to the configured sink as soon as every earlier
    /// shard has flushed, so the sink observes events in logical `(shard,
    /// seq)` order — byte-identical (modulo wall-clock fields) at every
    /// thread count — while shard 0's events still arrive as soon as shard 0
    /// finishes, not at the end of the whole run.
    pub fn run_with_threads(&self, threads: usize) -> CampaignReport {
        let threads = resolve_threads(threads);
        let shards = self.plan();
        // Shard-level workers; whatever parallelism is left over goes to the
        // per-case testbed fan-out inside each shard.
        let workers = threads.clamp(1, shards.len());
        let per_shard_threads = (threads / workers).max(1);

        self.progress.reset(&shards.iter().map(|s| s.cases as u64).collect::<Vec<u64>>());
        let buffers: Vec<MemorySink> = shards.iter().map(|_| MemorySink::new()).collect();
        let flush = FlushState::new(shards.len());

        let slots: Vec<Mutex<Option<CampaignReport>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= shards.len() {
                        break;
                    }
                    let report = self.run_shard(&shards[i], per_shard_threads, &buffers[i]);
                    *slots[i].lock().expect("shard slot poisoned") = Some(report);
                    flush.shard_done(i, &buffers, &self.config.sink);
                });
            }
        });
        let shard_reports: Vec<CampaignReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("shard slot poisoned").expect("every shard was claimed")
            })
            .collect();
        merge_shard_reports_with_sink(&shard_reports, &self.config.sink)
    }

    /// Runs one shard as a plain serial campaign over its budget slice,
    /// buffering its event stream in `buffer` for in-order flushing.
    fn run_shard(
        &self,
        spec: &ShardSpec,
        exec_threads: usize,
        buffer: &MemorySink,
    ) -> CampaignReport {
        let mut config = self.config.clone();
        config.seed = spec.seed;
        config.max_cases = spec.cases;
        config.sink = SinkHandle::new(buffer.clone());
        let mut campaign =
            Campaign::with_shared(config, Arc::clone(&self.generator), self.testbeds.clone());
        campaign.set_exec_threads(exec_threads);
        campaign.set_shard(spec.index as u64);
        campaign.set_progress(self.progress.clone());
        campaign.run()
    }
}

/// Tracks which shard streams have completed and flushes them to the user's
/// sink in shard order: shard `i` flushes once shards `0..i` have flushed.
/// Completion out of order is fine — a completed shard's buffer just waits
/// until it becomes the frontier.
struct FlushState {
    inner: Mutex<FlushInner>,
}

struct FlushInner {
    /// Next shard index to flush.
    next: usize,
    /// Completion flags per shard.
    done: Vec<bool>,
}

impl FlushState {
    fn new(shards: usize) -> Self {
        FlushState { inner: Mutex::new(FlushInner { next: 0, done: vec![false; shards] }) }
    }

    /// Marks shard `index` complete and flushes every buffered stream at the
    /// in-order frontier.
    fn shard_done(&self, index: usize, buffers: &[MemorySink], sink: &SinkHandle) {
        let mut inner = self.inner.lock().expect("flush state poisoned");
        inner.done[index] = true;
        while inner.next < inner.done.len() && inner.done[inner.next] {
            for event in buffers[inner.next].take() {
                sink.emit(&event);
            }
            inner.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded_config() -> CampaignConfig {
        CampaignConfig::builder()
            .seed(11)
            .corpus_programs(80)
            .lm(comfort_lm::GeneratorConfig {
                order: 8,
                bpe_merges: 200,
                top_k: 10,
                max_tokens: 800,
            })
            .datagen(crate::datagen::DataGenConfig {
                max_mutants_per_program: 10,
                random_mutants: 2,
            })
            .max_cases(90)
            .fuel(200_000)
            .include_strict(false)
            .include_legacy(false)
            .reduce_cases(false)
            .shard_cases(30)
            .build()
            .expect("valid config")
    }

    #[test]
    fn shard_plan_is_even_and_exact() {
        // ceil(100/30) = 4 shards of 25
        let config =
            CampaignConfig { max_cases: 100, shard_cases: 30, ..CampaignConfig::default() };
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.iter().map(|s| s.cases).sum::<usize>(), 100);
        assert!(plan.iter().all(|s| s.cases == 25));
        // Distinct seeds per shard, all derived from the master seed.
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn single_shard_plan_keeps_the_master_seed() {
        let config = CampaignConfig::default();
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].seed, config.seed);
        assert_eq!(plan[0].cases, config.max_cases);
    }

    #[test]
    fn uneven_budgets_still_sum_exactly() {
        // 5 shards: 21,21,21,20,20
        let config =
            CampaignConfig { max_cases: 103, shard_cases: 25, ..CampaignConfig::default() };
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.iter().map(|s| s.cases).sum::<usize>(), 103);
        let max = plan.iter().map(|s| s.cases).max().unwrap();
        let min = plan.iter().map(|s| s.cases).min().unwrap();
        assert!(max - min <= 1, "shares must differ by at most one case");
    }

    #[test]
    fn sharded_run_matches_across_thread_counts() {
        let executor = ShardedCampaign::new(sharded_config());
        let serial = executor.run_with_threads(1);
        let parallel = executor.run_with_threads(4);
        assert_eq!(serial.cases_run, parallel.cases_run);
        assert_eq!(serial.sim_hours, parallel.sim_hours);
        let ka: Vec<String> = serial.bugs.iter().map(|b| b.key.to_string()).collect();
        let kb: Vec<String> = parallel.bugs.iter().map(|b| b.key.to_string()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn merge_preserves_counts_and_dedups_keys() {
        let executor = ShardedCampaign::new(sharded_config());
        let plan = executor.plan();
        assert_eq!(plan.len(), 3);
        let shard_reports: Vec<CampaignReport> =
            plan.iter().map(|s| executor.run_shard(s, 1, &MemorySink::new())).collect();
        let merged = merge_shard_reports(&shard_reports);
        assert_eq!(merged.cases_run, shard_reports.iter().map(|r| r.cases_run).sum::<u64>());
        let total_bugs: usize = shard_reports.iter().map(|r| r.bugs.len()).sum();
        let cross_shard_dups: u64 = merged.duplicates_filtered
            - shard_reports.iter().map(|r| r.duplicates_filtered).sum::<u64>();
        assert_eq!(merged.bugs.len() + cross_shard_dups as usize, total_bugs);
        // Every surviving key is unique.
        let mut keys: Vec<String> = merged.bugs.iter().map(|b| b.key.to_string()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }
}
