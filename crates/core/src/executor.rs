//! Sharded, deterministic parallel campaign executor.
//!
//! The paper's evaluation runs 250k cases over 102 testbeds in a 200-hour
//! budget; a strictly serial loop cannot approach that. This module splits a
//! campaign's `max_cases` budget into **shards** — independent
//! sub-campaigns whose seeds are a pure function of `(master_seed,
//! shard_index)` — runs them on a `std::thread` worker pool, and merges the
//! shard reports into one [`CampaignReport`].
//!
//! # Determinism contract
//!
//! * The shard plan depends only on the configuration (`max_cases`,
//!   `shard_cases`, `seed`) — never on thread count or hardware.
//! * `threads` affects scheduling only: shard reports are collected by
//!   shard index and merged in shard order, so the merged report is
//!   **bit-identical** at `threads = 1`, `2`, `8`, or any other width.
//! * A single-shard plan (`shard_cases = 0`, the default) reproduces the
//!   legacy serial `Campaign::run` case stream exactly.
//!
//! Inside each shard, the per-case testbed matrix is fanned out across the
//! remaining thread budget too (see
//! [`run_differential_pooled`](crate::differential::run_differential_pooled)),
//! which keeps the pool busy even when a plan has fewer shards than workers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use comfort_engines::Testbed;
use comfort_lm::Generator;
use comfort_telemetry::{
    EventKind, MemorySink, ProgressHandle, Recorder, Sink, SinkHandle, CONTROL_SHARD, MERGE_SHARD,
};

use crate::campaign::{testbeds_for, Campaign, CampaignConfig, CampaignReport};
use crate::checkpoint::{
    config_fingerprint, CampaignCheckpoint, CheckpointError, CheckpointJournal, RecoveryReport,
    ResumeInfo, ShardRecord,
};
use crate::filter::BugTree;

// The executor shares programs, testbeds, and the trained generator across
// worker threads by reference; these assertions pin the Send/Sync audit of
// the engine substrate at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Testbed>();
    assert_send_sync::<comfort_engines::Engine>();
    assert_send_sync::<comfort_syntax::Program>();
    assert_send_sync::<Generator>();
    assert_send_sync::<CampaignReport>();
};

/// One shard's slice of the campaign budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position in the shard plan (merge order).
    pub index: usize,
    /// The shard's campaign seed, `mix(master_seed, index)`.
    pub seed: u64,
    /// The shard's share of `max_cases`.
    pub cases: usize,
}

/// Derives a shard's seed from the master seed (splitmix64-style mixing, so
/// neighbouring shard indices produce unrelated streams).
pub fn shard_seed(master_seed: u64, shard_index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(shard_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `config.max_cases` into the shard plan — a pure function of the
/// configuration. With `shard_cases = 0` (or one shard's worth of budget)
/// the plan is a single shard carrying the master seed, i.e. exactly the
/// legacy serial campaign.
pub fn plan_shards(config: &CampaignConfig) -> Vec<ShardSpec> {
    let per_shard = if config.shard_cases == 0 { config.max_cases } else { config.shard_cases };
    let count = config.max_cases.div_ceil(per_shard.max(1)).max(1);
    if count == 1 {
        return vec![ShardSpec { index: 0, seed: config.seed, cases: config.max_cases }];
    }
    // Even split: the first `max_cases % count` shards carry one extra case,
    // so the shares always sum to exactly `max_cases`.
    let base = config.max_cases / count;
    let extra = config.max_cases % count;
    (0..count)
        .map(|i| ShardSpec {
            index: i,
            seed: shard_seed(config.seed, i as u64),
            cases: base + usize::from(i < extra),
        })
        .collect()
}

/// Resolves a `threads` knob: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Merges per-shard reports (in shard order) into one campaign report.
///
/// Counters are summed; each bug's `sim_hours` is re-based by the simulated
/// time of the preceding shards (shards model consecutive slices of one
/// testing budget); bugs whose [`BugKey`](crate::filter::BugKey) was already
/// reported by an earlier shard are counted into `duplicates_filtered`
/// instead of being reported twice.
pub fn merge_shard_reports(shard_reports: &[CampaignReport]) -> CampaignReport {
    merge_shard_reports_with_sink(shard_reports, &SinkHandle::null())
}

/// [`merge_shard_reports`], additionally emitting a cross-shard
/// [`BugDeduped`](comfort_telemetry::EventKind::BugDeduped) event (stamped
/// with the [`MERGE_SHARD`] pseudo-shard) for every bug an earlier shard
/// already reported. Metrics merge conservation-exactly: every counter of
/// the merged value is the sum of the shard values, with cross-shard
/// duplicates moved from `bugs_reported` to `bugs_deduped`.
pub fn merge_shard_reports_with_sink(
    shard_reports: &[CampaignReport],
    sink: &SinkHandle,
) -> CampaignReport {
    let mut merged = CampaignReport::default();
    let mut tree = BugTree::new();
    let mut recorder = Recorder::new(sink.clone(), MERGE_SHARD);
    for report in shard_reports {
        merged.cases_run += report.cases_run;
        merged.parse_errors += report.parse_errors;
        merged.passes += report.passes;
        merged.deviations_observed += report.deviations_observed;
        merged.duplicates_filtered += report.duplicates_filtered;
        merged.metrics.merge_from(&report.metrics);
        if merged.health.is_empty() {
            merged.health = report.health.clone();
        } else {
            debug_assert_eq!(merged.health.len(), report.health.len());
            for (acc, shard) in merged.health.iter_mut().zip(&report.health) {
                acc.merge_from(shard);
            }
        }
        for bug in &report.bugs {
            if tree.observe(&bug.key) {
                let mut rebased = bug.clone();
                rebased.sim_hours += merged.sim_hours;
                merged.bugs.push(rebased);
            } else {
                merged.duplicates_filtered += 1;
                merged.metrics.dedup_reported_bug();
                recorder.emit(EventKind::BugDeduped {
                    engine: bug.key.engine.as_str().to_string(),
                    key: bug.key.to_string(),
                    cross_shard: true,
                });
            }
        }
        merged.sim_hours += report.sim_hours;
    }
    merged
}

/// The sharded campaign executor.
///
/// Trains the language model **once** (training is a pure function of the
/// master seed and LM config, which all shards share) and builds the
/// testbed matrix once; each shard then runs a [`Campaign`] over its slice
/// of the budget with its derived seed.
///
/// ```no_run
/// use comfort_core::campaign::CampaignConfig;
/// use comfort_core::executor::ShardedCampaign;
///
/// let config = CampaignConfig::builder()
///     .max_cases(240)
///     .shard_cases(40) // 6 shards
///     .threads(0)      // all cores
///     .build()
///     .expect("valid config");
/// let report = ShardedCampaign::new(config).run_with_threads(0);
/// println!("{} bugs", report.bugs.len());
/// ```
///
/// Most callers should drive it through
/// [`CampaignSession`](crate::session::CampaignSession), which adds
/// resume-awareness and chainable scheduling overrides on top.
pub struct ShardedCampaign {
    config: CampaignConfig,
    generator: Arc<Generator>,
    testbeds: Vec<Testbed>,
    progress: ProgressHandle,
}

impl ShardedCampaign {
    /// Trains the generator and prepares the shared testbed matrix.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = comfort_corpus::training_corpus(config.seed, config.corpus_programs);
        let generator = Arc::new(Generator::train(&corpus, config.lm.clone()));
        let testbeds = testbeds_for(&config);
        ShardedCampaign { config, generator, testbeds, progress: ProgressHandle::new() }
    }

    /// The live progress handle for this executor. Poll it from another
    /// thread while [`run`](Self::run) executes: completed-case counts are
    /// monotonically increasing, and per-shard snapshots carry throughput.
    pub fn progress(&self) -> ProgressHandle {
        self.progress.clone()
    }

    /// Replaces the progress handle with a caller-owned one (the `Comfort`
    /// facade shares a single handle across budgeted runs).
    pub fn attach_progress(&mut self, progress: ProgressHandle) {
        self.progress = progress;
    }

    /// The shard plan this executor will run.
    pub fn plan(&self) -> Vec<ShardSpec> {
        plan_shards(&self.config)
    }

    /// Runs the campaign with the configured thread count.
    ///
    /// Deprecated: build a [`CampaignSession`](crate::session::CampaignSession)
    /// instead (`CampaignSession::new(config).run()`), the unified entry
    /// point for fresh and resumable runs. This wrapper delegates to the
    /// same machinery and is proven bit-identical to the session path by
    /// test.
    #[deprecated(note = "use CampaignSession::new(config).run() instead")]
    pub fn run(&self) -> CampaignReport {
        self.run_with_threads(resolve_threads(self.config.threads))
    }

    /// Runs the campaign on exactly `threads` workers (`0` = available
    /// parallelism). The report is bit-identical for every `threads` value.
    ///
    /// Telemetry keeps the same contract: each shard's event stream is
    /// buffered and flushed to the configured sink as soon as every earlier
    /// shard has flushed, so the sink observes events in logical `(shard,
    /// seq)` order — byte-identical (modulo wall-clock fields) at every
    /// thread count — while shard 0's events still arrive as soon as shard 0
    /// finishes, not at the end of the whole run.
    pub fn run_with_threads(&self, threads: usize) -> CampaignReport {
        self.run_internal(threads, None)
    }

    /// Runs the campaign with crash-safe resume: if the configured
    /// checkpoint journal already exists on disk, its intact shard records
    /// are salvaged and fed straight into the order-preserving merge, and
    /// only the missing shards re-run — yielding a report **bit-identical**
    /// to an uninterrupted run (in every deterministic field; see
    /// [`report_to_json_deterministic`](crate::checkpoint::report_to_json_deterministic)).
    ///
    /// Fails if the config has no checkpoint path, the journal on disk was
    /// written under a different config fingerprint, or its shard plan
    /// disagrees with this config's plan.
    ///
    /// Deprecated: build a [`CampaignSession`](crate::session::CampaignSession)
    /// instead (`CampaignSession::new(config).checkpoint(path).run()`). This
    /// wrapper delegates to the same machinery and is proven bit-identical
    /// to the session path by test.
    #[deprecated(note = "use CampaignSession::new(config).checkpoint(path).run() instead")]
    pub fn run_resumable(&self) -> Result<CampaignReport, CheckpointError> {
        self.run_resumable_with_threads(self.config.threads)
    }

    /// [`run_resumable`](Self::run_resumable) on exactly `threads` workers.
    pub fn run_resumable_with_threads(
        &self,
        threads: usize,
    ) -> Result<CampaignReport, CheckpointError> {
        let path = self.config.checkpoint.clone().ok_or(CheckpointError::NoCheckpointPath)?;
        if !path.exists() {
            // Nothing to resume: run fresh (journaling as we go).
            return Ok(self.run_internal(threads, None));
        }
        let (checkpoint, recovery) = CampaignCheckpoint::load(&path)?;
        let expected = config_fingerprint(&self.config);
        if checkpoint.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected,
                found: checkpoint.fingerprint,
            });
        }
        let plan = self.plan();
        if checkpoint.shards_total != plan.len() as u64 {
            return Err(CheckpointError::PlanMismatch(format!(
                "journal plans {} shards, config plans {}",
                checkpoint.shards_total,
                plan.len()
            )));
        }
        for record in &checkpoint.shards {
            let spec = plan.get(record.index as usize).ok_or_else(|| {
                CheckpointError::PlanMismatch(format!(
                    "record for out-of-plan shard {}",
                    record.index
                ))
            })?;
            if record.seed != spec.seed || record.cases != spec.cases as u64 {
                return Err(CheckpointError::PlanMismatch(format!(
                    "shard {}: journal has (seed {}, cases {}), plan derives (seed {}, cases {})",
                    record.index, record.seed, record.cases, spec.seed, spec.cases
                )));
            }
        }
        let resume = ResumeState { salvage: checkpoint.shards, recovery, path };
        Ok(self.run_internal(threads, Some(resume)))
    }

    /// The executor core: claims pending shards onto workers, checkpoints
    /// each completed shard, replays salvaged shards, honours cooperative
    /// shutdown, and merges in shard order.
    fn run_internal(&self, threads: usize, resume: Option<ResumeState>) -> CampaignReport {
        let threads = resolve_threads(threads);
        let shards = self.plan();
        // Shard-level workers; whatever parallelism is left over goes to the
        // per-case testbed fan-out inside each shard.
        let workers = threads.clamp(1, shards.len());
        let per_shard_threads = (threads / workers).max(1);

        // Arm the wall-clock deadline exactly once, at campaign start; the
        // token is shared with every shard config clone, so shard-level
        // re-arming is a no-op and per-case checks see the same instant.
        if let Some(deadline) = self.config.deadline {
            self.config.cancel.arm_deadline(std::time::Instant::now() + deadline);
        }

        self.progress.reset(&shards.iter().map(|s| s.cases as u64).collect::<Vec<u64>>());
        let buffers: Vec<MemorySink> = shards.iter().map(|_| MemorySink::new()).collect();
        let flush = FlushState::new(shards.len());
        let slots: Vec<Mutex<Option<CampaignReport>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();

        // The write-ahead journal: fresh runs start a new one, resumed runs
        // append past the salvaged prefix (with any torn tail truncated).
        // Journaling is best-effort — a read-only filesystem degrades to an
        // unjournaled run rather than failing the campaign.
        let journal: Option<CheckpointJournal> = match (&self.config.checkpoint, &resume) {
            (Some(path), None) => CheckpointJournal::create(
                path,
                config_fingerprint(&self.config),
                shards.len() as u64,
            )
            .ok(),
            (Some(_), Some(state)) => {
                CheckpointJournal::open_append(&state.path, &state.recovery).ok()
            }
            (None, _) => None,
        };
        // Control-plane recorder: checkpoint/resume/interrupt events are
        // operational facts about *this* execution, stamped with the
        // CONTROL_SHARD pseudo-shard and excluded from determinism
        // comparisons (`Event::is_control`).
        let control = Mutex::new(Recorder::new(self.config.sink.clone(), CONTROL_SHARD));
        let checkpoints_written = AtomicU64::new(0);

        // Replay salvaged shards: results into their merge slots, event
        // streams into their flush buffers, progress marked complete. The
        // flush frontier advances through them exactly as if they had just
        // run, so the sink still observes logical (shard, seq) order.
        let mut salvaged = vec![false; shards.len()];
        if let Some(state) = &resume {
            control.lock().expect("control recorder poisoned").emit(EventKind::CampaignResumed {
                shards_salvaged: state.salvage.len() as u64,
                shards_total: shards.len() as u64,
                dropped_bytes: state.recovery.dropped_tail_bytes,
            });
            for record in &state.salvage {
                let i = record.index as usize;
                salvaged[i] = true;
                *slots[i].lock().expect("shard slot poisoned") = Some(record.report.clone());
                for event in &record.events {
                    buffers[i].emit(event);
                }
                self.progress.shard_started(i);
                for _ in 0..record.report.cases_run {
                    self.progress.case_done(i);
                }
                for _ in 0..record.report.bugs.len() {
                    self.progress.bug_found(i);
                }
                self.progress.shard_finished(i);
                flush.shard_done(i, &buffers, &self.config.sink);
            }
        }
        let pending: Vec<usize> = (0..shards.len()).filter(|&i| !salvaged[i]).collect();

        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Cooperative shutdown at the shard boundary: claimed
                    // shards drain at their next cancellation point; nothing
                    // new is claimed.
                    if self.config.cancel.is_cancelled() {
                        break;
                    }
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= pending.len() {
                        break;
                    }
                    let i = pending[p];
                    let report = self.run_shard(&shards[i], per_shard_threads, &buffers[i]);
                    if report.interrupted {
                        // A partially-run shard is discarded whole: its
                        // buffered events would desync the replayed stream,
                        // and resume re-runs the shard from scratch.
                        buffers[i].take();
                        break;
                    }
                    if let Some(journal) = &journal {
                        let record = ShardRecord {
                            index: i as u64,
                            seed: shards[i].seed,
                            cases: shards[i].cases as u64,
                            report: report.clone(),
                            events: buffers[i].events(),
                        };
                        if let Ok(journal_bytes) = journal.append_shard(&record) {
                            checkpoints_written.fetch_add(1, Ordering::Relaxed);
                            control.lock().expect("control recorder poisoned").emit(
                                EventKind::CheckpointWritten {
                                    checkpointed_shard: i as u64,
                                    cases_run: record.report.cases_run,
                                    journal_bytes,
                                },
                            );
                        }
                    }
                    *slots[i].lock().expect("shard slot poisoned") = Some(report);
                    flush.shard_done(i, &buffers, &self.config.sink);
                });
            }
        });

        // Merge whatever completed, in shard order. An uninterrupted run has
        // every slot filled; an interrupted one merges completed shards only
        // and flags the report.
        let shard_reports: Vec<CampaignReport> = slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().expect("shard slot poisoned"))
            .collect();
        let completed = shard_reports.len();
        let mut merged = merge_shard_reports_with_sink(&shard_reports, &self.config.sink);
        if completed < shards.len() {
            merged.interrupted = true;
            let reason =
                if self.config.cancel.deadline_passed() { "deadline" } else { "cancelled" };
            control.lock().expect("control recorder poisoned").emit(
                EventKind::CampaignInterrupted {
                    shards_completed: completed as u64,
                    shards_total: shards.len() as u64,
                    reason: reason.to_string(),
                },
            );
        }
        if let Some(state) = resume {
            merged.resume = Some(ResumeInfo {
                resumed_from: state.path.display().to_string(),
                shards_salvaged: state.salvage.len() as u64,
                shards_rerun: pending.len() as u64,
                shards_total: shards.len() as u64,
                dropped_tail_bytes: state.recovery.dropped_tail_bytes,
                checkpoints_written: checkpoints_written.load(Ordering::Relaxed),
            });
        }
        merged
    }

    /// Runs one shard as a plain serial campaign over its budget slice,
    /// buffering its event stream in `buffer` for in-order flushing.
    ///
    /// Public so external supervisors (the `comfort-service` daemon, its
    /// single-shot worker mode) can execute individual leased shards with
    /// exactly the machinery `run` uses internally — same derived seed,
    /// same buffered stream — and therefore merge to bit-identical reports.
    pub fn run_shard(
        &self,
        spec: &ShardSpec,
        exec_threads: usize,
        buffer: &MemorySink,
    ) -> CampaignReport {
        let mut config = self.config.clone();
        config.seed = spec.seed;
        config.max_cases = spec.cases;
        config.sink = SinkHandle::new(buffer.clone());
        let mut campaign =
            Campaign::with_shared(config, Arc::clone(&self.generator), self.testbeds.clone());
        campaign.set_exec_threads(exec_threads);
        campaign.set_shard(spec.index as u64);
        campaign.set_progress(self.progress.clone());
        campaign.run()
    }
}

/// Convenience wrapper: builds the executor and resumes (or starts) the
/// campaign against its configured checkpoint journal.
///
/// Deprecated: build a [`CampaignSession`](crate::session::CampaignSession)
/// instead —
///
/// ```no_run
/// use comfort_core::campaign::CampaignConfig;
/// use comfort_core::session::CampaignSession;
///
/// let config = CampaignConfig::builder()
///     .max_cases(240)
///     .shard_cases(40)
///     .build()
///     .expect("valid config");
/// // First invocation runs fresh and journals; re-running the same binary
/// // after a crash salvages the journal and finishes the remaining shards.
/// let report = CampaignSession::new(config)
///     .checkpoint("campaign.ckpt")
///     .run()
///     .expect("resumable run");
/// println!("{} bugs ({} shards salvaged)", report.bugs.len(),
///          report.resume.map_or(0, |r| r.shards_salvaged));
/// ```
#[deprecated(note = "use CampaignSession::new(config).checkpoint(path).run() instead")]
pub fn run_campaign_resumable(config: CampaignConfig) -> Result<CampaignReport, CheckpointError> {
    if config.checkpoint.is_none() {
        // The session treats a checkpoint-less run as fresh; this legacy
        // entry point always required a journal path.
        return Err(CheckpointError::NoCheckpointPath);
    }
    crate::session::CampaignSession::new(config).run()
}

/// Everything `run_internal` needs to pick a campaign up from its journal.
struct ResumeState {
    salvage: Vec<ShardRecord>,
    recovery: RecoveryReport,
    path: PathBuf,
}

/// Tracks which shard streams have completed and flushes them to the user's
/// sink in shard order: shard `i` flushes once shards `0..i` have flushed.
/// Completion out of order is fine — a completed shard's buffer just waits
/// until it becomes the frontier.
struct FlushState {
    inner: Mutex<FlushInner>,
}

struct FlushInner {
    /// Next shard index to flush.
    next: usize,
    /// Completion flags per shard.
    done: Vec<bool>,
}

impl FlushState {
    fn new(shards: usize) -> Self {
        FlushState { inner: Mutex::new(FlushInner { next: 0, done: vec![false; shards] }) }
    }

    /// Marks shard `index` complete and flushes every buffered stream at the
    /// in-order frontier.
    fn shard_done(&self, index: usize, buffers: &[MemorySink], sink: &SinkHandle) {
        let mut inner = self.inner.lock().expect("flush state poisoned");
        inner.done[index] = true;
        while inner.next < inner.done.len() && inner.done[inner.next] {
            for event in buffers[inner.next].take() {
                sink.emit(&event);
            }
            inner.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded_config() -> CampaignConfig {
        CampaignConfig::builder()
            .seed(11)
            .corpus_programs(80)
            .lm(comfort_lm::GeneratorConfig {
                order: 8,
                bpe_merges: 200,
                top_k: 10,
                max_tokens: 800,
            })
            .datagen(crate::datagen::DataGenConfig {
                max_mutants_per_program: 10,
                random_mutants: 2,
            })
            .max_cases(90)
            .fuel(200_000)
            .include_strict(false)
            .include_legacy(false)
            .reduce_cases(false)
            .shard_cases(30)
            .build()
            .expect("valid config")
    }

    #[test]
    fn shard_plan_is_even_and_exact() {
        // ceil(100/30) = 4 shards of 25
        let config =
            CampaignConfig { max_cases: 100, shard_cases: 30, ..CampaignConfig::default() };
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.iter().map(|s| s.cases).sum::<usize>(), 100);
        assert!(plan.iter().all(|s| s.cases == 25));
        // Distinct seeds per shard, all derived from the master seed.
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn single_shard_plan_keeps_the_master_seed() {
        let config = CampaignConfig::default();
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].seed, config.seed);
        assert_eq!(plan[0].cases, config.max_cases);
    }

    #[test]
    fn uneven_budgets_still_sum_exactly() {
        // 5 shards: 21,21,21,20,20
        let config =
            CampaignConfig { max_cases: 103, shard_cases: 25, ..CampaignConfig::default() };
        let plan = plan_shards(&config);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.iter().map(|s| s.cases).sum::<usize>(), 103);
        let max = plan.iter().map(|s| s.cases).max().unwrap();
        let min = plan.iter().map(|s| s.cases).min().unwrap();
        assert!(max - min <= 1, "shares must differ by at most one case");
    }

    #[test]
    fn sharded_run_matches_across_thread_counts() {
        let executor = ShardedCampaign::new(sharded_config());
        let serial = executor.run_with_threads(1);
        let parallel = executor.run_with_threads(4);
        assert_eq!(serial.cases_run, parallel.cases_run);
        assert_eq!(serial.sim_hours, parallel.sim_hours);
        let ka: Vec<String> = serial.bugs.iter().map(|b| b.key.to_string()).collect();
        let kb: Vec<String> = parallel.bugs.iter().map(|b| b.key.to_string()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn merge_preserves_counts_and_dedups_keys() {
        let executor = ShardedCampaign::new(sharded_config());
        let plan = executor.plan();
        assert_eq!(plan.len(), 3);
        let shard_reports: Vec<CampaignReport> =
            plan.iter().map(|s| executor.run_shard(s, 1, &MemorySink::new())).collect();
        let merged = merge_shard_reports(&shard_reports);
        assert_eq!(merged.cases_run, shard_reports.iter().map(|r| r.cases_run).sum::<u64>());
        let total_bugs: usize = shard_reports.iter().map(|r| r.bugs.len()).sum();
        let cross_shard_dups: u64 = merged.duplicates_filtered
            - shard_reports.iter().map(|r| r.duplicates_filtered).sum::<u64>();
        assert_eq!(merged.bugs.len() + cross_shard_dups as usize, total_bugs);
        // Every surviving key is unique.
        let mut keys: Vec<String> = merged.bugs.iter().map(|b| b.key.to_string()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }
}
