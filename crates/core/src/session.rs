//! One unified entry point for campaign execution.
//!
//! PRs 1–4 accreted four ways to run a campaign — `ShardedCampaign::run`,
//! `ShardedCampaign::run_resumable`, the `run_campaign_resumable` free
//! function, and `Comfort::run_budgeted_resumable` — each a different
//! slice of the same machinery. [`CampaignSession`] collapses them: build
//! it from a [`CampaignConfig`], override the scheduling knobs with the
//! chainable setters, and call [`run`](CampaignSession::run). The session
//! is resume-aware — with a checkpoint path configured it salvages an
//! existing journal exactly like the old resumable entry points; without
//! one it runs fresh and always returns `Ok`.
//!
//! The session owns the trained generator and testbed matrix (built
//! lazily, once), so sweeping thread counts with
//! [`run_with_threads`](CampaignSession::run_with_threads) — as the
//! `comfort-bench` harness does — trains the language model a single time
//! and re-runs the identical workload at each width. The determinism
//! contract carries over unchanged: reports are **bit-identical** in every
//! deterministic field at any thread count.

use std::sync::OnceLock;
use std::time::Duration;

use comfort_telemetry::{ProgressHandle, SinkHandle};

use crate::campaign::{CampaignConfig, CampaignReport};
use crate::checkpoint::CheckpointError;
use crate::executor::{plan_shards, ShardSpec, ShardedCampaign};
use crate::resilience::CancelToken;

/// A configured, reusable campaign run: the one front door to the sharded
/// executor, replacing the four legacy entry points (now `#[deprecated]`
/// wrappers over this type).
///
/// ```no_run
/// use comfort_core::campaign::CampaignConfig;
/// use comfort_core::session::CampaignSession;
///
/// let config = CampaignConfig::builder()
///     .max_cases(240)
///     .shard_cases(40) // 6 shards
///     .build()
///     .expect("valid config");
/// let report = CampaignSession::new(config)
///     .threads(4)
///     .checkpoint("campaign.ckpt") // crash-safe: re-running resumes
///     .run()
///     .expect("campaign run");
/// println!("{} bugs", report.bugs.len());
/// ```
pub struct CampaignSession {
    config: CampaignConfig,
    progress: ProgressHandle,
    executor: OnceLock<ShardedCampaign>,
}

impl CampaignSession {
    /// Creates a session over `config`. Nothing runs (or trains) until the
    /// first [`run`](Self::run) call.
    pub fn new(config: CampaignConfig) -> Self {
        CampaignSession { config, progress: ProgressHandle::new(), executor: OnceLock::new() }
    }

    /// Overrides the worker-thread count (`0` = available parallelism).
    /// Scheduling only: the report is bit-identical at every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self.invalidate();
        self
    }

    /// Sets the write-ahead checkpoint journal path. With a path set,
    /// [`run`](Self::run) becomes crash-safe: it salvages an intact journal
    /// left by a previous interrupted run and re-runs only the missing
    /// shards.
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint = Some(path.into());
        self.invalidate();
        self
    }

    /// Installs a cooperative-shutdown token (cancel it from any thread to
    /// drain in-flight shards, checkpoint, and return an interrupted
    /// report).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.config.cancel = token;
        self.invalidate();
        self
    }

    /// Sets a wall-clock budget for the run.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self.invalidate();
        self
    }

    /// Sets the telemetry sink receiving the run's typed event stream.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.config.sink = sink;
        self.invalidate();
        self
    }

    /// Shares a caller-owned progress handle (the `Comfort` facade passes
    /// one handle across budgeted runs).
    pub fn share_progress(mut self, progress: ProgressHandle) -> Self {
        self.progress = progress;
        self.invalidate();
        self
    }

    /// The session's effective configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The shard plan this session will run (a pure function of the
    /// configuration).
    pub fn plan(&self) -> Vec<ShardSpec> {
        plan_shards(&self.config)
    }

    /// The live progress handle: poll it from another thread while
    /// [`run`](Self::run) executes.
    pub fn progress(&self) -> ProgressHandle {
        self.progress.clone()
    }

    /// Runs the campaign with the configured thread count.
    ///
    /// With a checkpoint path configured this is the crash-safe path: an
    /// intact journal on disk is salvaged (error if it was written under a
    /// different config fingerprint or shard plan) and only missing shards
    /// re-run. Without one the run is fresh and the result is always `Ok`.
    pub fn run(&self) -> Result<CampaignReport, CheckpointError> {
        self.run_with_threads(self.config.threads)
    }

    /// [`run`](Self::run) on exactly `threads` workers (`0` = available
    /// parallelism), reusing the session's trained generator and testbed
    /// matrix. Sweeping widths re-runs the identical workload; the report
    /// is bit-identical in every deterministic field at each width.
    pub fn run_with_threads(&self, threads: usize) -> Result<CampaignReport, CheckpointError> {
        let executor = self.executor();
        if self.config.checkpoint.is_some() {
            executor.run_resumable_with_threads(threads)
        } else {
            Ok(executor.run_with_threads(threads))
        }
    }

    /// The lazily-built executor (trains the LM on first use).
    ///
    /// Public so external supervisors (the `comfort-service` daemon) can
    /// drive shard execution directly — leasing shards one at a time via
    /// [`ShardedCampaign::run_shard`] — while reusing the session's trained
    /// generator and testbed matrix.
    pub fn executor(&self) -> &ShardedCampaign {
        self.executor.get_or_init(|| {
            let mut executor = ShardedCampaign::new(self.config.clone());
            executor.attach_progress(self.progress.clone());
            executor
        })
    }

    /// Drops the cached executor after a config override; the next run
    /// rebuilds it from the updated config.
    fn invalidate(&mut self) {
        self.executor = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::report_to_json_deterministic;

    fn small_config() -> CampaignConfig {
        CampaignConfig::builder()
            .seed(11)
            .corpus_programs(80)
            .lm(comfort_lm::GeneratorConfig {
                order: 8,
                bpe_merges: 200,
                top_k: 10,
                max_tokens: 800,
            })
            .max_cases(40)
            .fuel(200_000)
            .include_strict(false)
            .include_legacy(false)
            .reduce_cases(false)
            .shard_cases(20)
            .build()
            .expect("valid config")
    }

    #[test]
    fn fresh_sessions_always_succeed_and_sweeps_are_bit_identical() {
        let session = CampaignSession::new(small_config());
        let one = session.run_with_threads(1).expect("fresh run is infallible");
        let two = session.run_with_threads(2).expect("fresh run is infallible");
        assert_eq!(one.cases_run, 40);
        assert_eq!(report_to_json_deterministic(&one), report_to_json_deterministic(&two));
    }

    #[test]
    fn setters_override_the_config() {
        let session = CampaignSession::new(small_config())
            .threads(3)
            .checkpoint("x.ckpt")
            .deadline(Duration::from_secs(5));
        assert_eq!(session.config().threads, 3);
        assert_eq!(session.config().checkpoint.as_deref(), Some(std::path::Path::new("x.ckpt")));
        assert_eq!(session.config().deadline, Some(Duration::from_secs(5)));
        assert_eq!(session.plan().len(), 2);
    }

    #[test]
    fn checkpointed_session_resumes_its_own_journal() {
        let dir = std::env::temp_dir().join(format!("comfort-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("session.ckpt");
        let _ = std::fs::remove_file(&path);
        let session = CampaignSession::new(small_config()).checkpoint(&path);
        let fresh = session.run().expect("fresh checkpointed run");
        assert!(fresh.resume.is_none());
        // Re-running the same session salvages every shard from the journal.
        let resumed = session.run().expect("resumed run");
        let info = resumed.resume.as_ref().expect("resume provenance");
        assert_eq!(info.shards_salvaged, 2);
        assert_eq!(info.shards_rerun, 0);
        assert_eq!(report_to_json_deterministic(&fresh), report_to_json_deterministic(&resumed));
        let _ = std::fs::remove_file(&path);
    }
}
