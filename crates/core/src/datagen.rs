//! ECMA-262-guided test-data generation — **Algorithm 1** of the paper.
//!
//! Given a generated test program, this module
//!
//! 1. synthesizes *driver code* if the program only defines functions (§3.3:
//!    "we also generate code to call functions with supplied parameters and
//!    print out the results" — lines 5–9 of Figure 2 are produced here);
//! 2. finds every standard-API call site, looks the API up in the ECMA-262
//!    spec database, and emits mutated copies of the program in which the
//!    arguments take the **boundary values** the spec rules identify
//!    (`undefined`, `NaN`, negative, out-of-range, …), following the data
//!    flow from the argument back to the `var` that defines it;
//! 3. also emits a few *random-value* mutants (the paper's "normal
//!    conditions") so the pool is not boundary-only.

use comfort_ecma262::{BoundaryValue, SpecDb};
use comfort_syntax::ast::*;
use comfort_syntax::{parse, print_program, Program};
use rand::Rng;

use crate::testcase::{Origin, TestCase};

/// Configuration for the mutator.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Maximum mutants derived from one base program.
    pub max_mutants_per_program: usize,
    /// Random (non-boundary) mutants per base program.
    pub random_mutants: usize,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig { max_mutants_per_program: 24, random_mutants: 4 }
    }
}

/// One discovered API call site.
#[derive(Debug, Clone)]
struct CallSite {
    /// Short API name at the call (`substr`).
    method: String,
    /// Node id of the call expression.
    call_id: NodeId,
    /// Number of arguments at the site.
    argc: usize,
    /// For each argument: the variable name if the argument is a simple
    /// identifier reference (enables definition-site mutation).
    arg_vars: Vec<Option<String>>,
}

/// The Algorithm-1 generator.
#[derive(Debug)]
pub struct DataGen<'d> {
    db: &'d SpecDb,
    config: DataGenConfig,
}

impl<'d> DataGen<'d> {
    /// Creates a generator over the spec database.
    pub fn new(db: &'d SpecDb, config: DataGenConfig) -> Self {
        DataGen { db, config }
    }

    /// Algorithm 1: takes a test program, returns mutated test cases.
    ///
    /// `next_id` supplies fresh test-case ids; `base` is the originating
    /// program's id.
    pub fn mutate<R: Rng>(
        &self,
        base_program: &Program,
        base: u64,
        next_id: &mut u64,
        rng: &mut R,
    ) -> Vec<TestCase> {
        let mut out = Vec::new();
        // Driver synthesis first: the program must *call* its functions and
        // print results, or nothing is observable.
        let driven = ensure_driver(base_program, rng);

        let sites = find_call_sites(&driven);
        for site in &sites {
            let Some(spec) = self.db.get_by_short_name(&site.method) else {
                continue; // API not extracted from ECMA-262 (§3.1 limits)
            };
            // Boundary values per parameter (Algorithm 1 line 8: mutate).
            for (pi, param) in spec.params.iter().enumerate() {
                for value in &param.values {
                    if out.len() >= self.config.max_mutants_per_program {
                        return out;
                    }
                    if let Some(mutant) = mutate_argument(&driven, site, pi, &boundary_expr(value))
                    {
                        push_case(&mut out, mutant, Origin::EcmaMutation, base, next_id);
                    }
                }
            }
            // Argument-count variants: drop the last argument / add one.
            if out.len() >= self.config.max_mutants_per_program {
                return out;
            }
            if site.argc > 0 {
                if let Some(mutant) = set_arg_count(&driven, site, site.argc - 1) {
                    push_case(&mut out, mutant, Origin::EcmaMutation, base, next_id);
                }
            }
            if out.len() >= self.config.max_mutants_per_program {
                return out;
            }
            if site.argc < spec.params.len() + 1 {
                if let Some(mutant) = set_arg_count(&driven, site, site.argc + 1) {
                    push_case(&mut out, mutant, Origin::EcmaMutation, base, next_id);
                }
            }
        }
        // Random mutants ("normal conditions") on spec-known call sites.
        let known: Vec<&CallSite> = sites
            .iter()
            .filter(|s| s.argc > 0 && self.db.get_by_short_name(&s.method).is_some())
            .collect();
        for _ in 0..self.config.random_mutants {
            if known.is_empty() || out.len() >= self.config.max_mutants_per_program {
                break;
            }
            let site = known[rng.random_range(0..known.len())];
            let pi = rng.random_range(0..site.argc);
            let value = random_value_expr(rng);
            if let Some(mutant) = mutate_argument(&driven, site, pi, &value) {
                push_case(&mut out, mutant, Origin::EcmaMutation, base, next_id);
            }
        }
        out
    }

    /// Wraps the *unmutated* (but driver-completed) program as a test case.
    pub fn base_case<R: Rng>(
        &self,
        base_program: &Program,
        base: u64,
        next_id: &mut u64,
        rng: &mut R,
    ) -> TestCase {
        let driven = ensure_driver(base_program, rng);
        let source = print_program(&driven);
        let id = *next_id;
        *next_id += 1;
        TestCase::new(id, source, driven, Origin::ProgramGen, base)
    }
}

fn push_case(
    out: &mut Vec<TestCase>,
    program: Program,
    origin: Origin,
    base: u64,
    next_id: &mut u64,
) {
    let source = print_program(&program);
    // Mutants must stay parseable; the printer guarantees it, but guard
    // against printer gaps rather than poisoning the pool.
    if parse(&source).is_err() {
        return;
    }
    let id = *next_id;
    *next_id += 1;
    out.push(TestCase::new(id, source, program, origin, base));
}

/// Renders a boundary value as an expression.
fn boundary_expr(v: &BoundaryValue) -> Expr {
    match v {
        BoundaryValue::Undefined => build::undefined(),
        BoundaryValue::Null => build::null(),
        BoundaryValue::NaN => build::ident("NaN"),
        BoundaryValue::Number(n) => build::num(*n),
        BoundaryValue::Infinity(pos) => {
            if *pos {
                build::ident("Infinity")
            } else {
                Expr::synthesized(ExprKind::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(build::ident("Infinity")),
                })
            }
        }
        BoundaryValue::Str(s) => build::str(s),
        BoundaryValue::Bool(b) => build::bool(*b),
    }
}

/// A "normal-condition" random value (§3.3).
fn random_value_expr<R: Rng>(rng: &mut R) -> Expr {
    match rng.random_range(0..5) {
        0 => build::num(rng.random_range(-100..1000) as f64),
        1 => build::str(["a", "test", "0", "xyz"][rng.random_range(0..4)]),
        2 => build::bool(rng.random_bool(0.5)),
        3 => build::num(rng.random_range(0..10) as f64 + 0.5),
        _ => build::num(0.0),
    }
}

// ---------------------------------------------------------------------------
// Call-site discovery
// ---------------------------------------------------------------------------

fn find_call_sites(program: &Program) -> Vec<CallSite> {
    struct Finder {
        sites: Vec<CallSite>,
    }
    impl comfort_syntax::visit::Visitor for Finder {
        fn visit_expr(&mut self, expr: &Expr) {
            let (callee, args) = match &expr.kind {
                ExprKind::Call { callee, args } => (callee, args),
                ExprKind::New { callee, args } => (callee, args),
                _ => return,
            };
            let method = match &callee.kind {
                ExprKind::Member { prop, .. } => prop.clone(),
                ExprKind::Ident(name) => name.clone(),
                _ => return,
            };
            let arg_vars = args
                .iter()
                .map(|a| match &a.kind {
                    ExprKind::Ident(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            self.sites.push(CallSite { method, call_id: expr.id, argc: args.len(), arg_vars });
        }
    }
    let mut f = Finder { sites: Vec::new() };
    comfort_syntax::visit::walk_program(program, &mut f);
    f.sites
}

// ---------------------------------------------------------------------------
// Mutation (clone-and-edit on the AST)
// ---------------------------------------------------------------------------

/// Produces a copy of `program` where argument `arg_index` of the call site
/// takes `value`. If the argument is a plain variable reference, its
/// *definition* is rewritten instead (the Figure 2 pattern: `var len =
/// undefined;`), following the program's data flow as Algorithm 1 line 8
/// describes; otherwise the argument expression itself is replaced.
fn mutate_argument(
    program: &Program,
    site: &CallSite,
    arg_index: usize,
    value: &Expr,
) -> Option<Program> {
    let mut clone = program.clone();
    let changed = match site.arg_vars.get(arg_index).cloned().flatten() {
        Some(var_name) => {
            rewrite_var_init(&mut clone.body, &var_name, value)
                || rewrite_call_arg(&mut clone.body, site.call_id, arg_index, value)
        }
        None => rewrite_call_arg(&mut clone.body, site.call_id, arg_index, value),
    };
    if !changed {
        return None;
    }
    clone.renumber();
    Some(clone)
}

/// Produces a copy with the call site's argument list truncated/extended to
/// `new_argc` (extension pads with `undefined`... no: with `0`, a neutral
/// ordinary value, so `ArgCountAtLeast` bugs are reachable).
fn set_arg_count(program: &Program, site: &CallSite, new_argc: usize) -> Option<Program> {
    let mut clone = program.clone();
    let mut changed = false;
    visit_calls_mut(&mut clone.body, &mut |expr| {
        if expr.id != site.call_id {
            return;
        }
        if let ExprKind::Call { args, .. } | ExprKind::New { args, .. } = &mut expr.kind {
            while args.len() > new_argc {
                args.pop();
            }
            while args.len() < new_argc {
                args.push(build::num(0.0));
            }
            changed = true;
        }
    });
    if !changed {
        return None;
    }
    clone.renumber();
    Some(clone)
}

/// Rewrites `var NAME = …;` initializers (first match wins).
fn rewrite_var_init(body: &mut [Stmt], name: &str, value: &Expr) -> bool {
    fn in_stmt(stmt: &mut Stmt, name: &str, value: &Expr) -> bool {
        match &mut stmt.kind {
            StmtKind::Decl { decls, .. } => {
                for d in decls {
                    if d.name == name {
                        d.init = Some(value.clone());
                        return true;
                    }
                }
                false
            }
            StmtKind::Block(b) => b.iter_mut().any(|s| in_stmt(s, name, value)),
            StmtKind::If { cons, alt, .. } => {
                in_stmt(cons, name, value)
                    || alt.as_deref_mut().is_some_and(|a| in_stmt(a, name, value))
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                in_stmt(body, name, value)
            }
            StmtKind::For { body, .. } | StmtKind::ForInOf { body, .. } => {
                in_stmt(body, name, value)
            }
            StmtKind::FunctionDecl(f) => f.body.iter_mut().any(|s| in_stmt(s, name, value)),
            StmtKind::Try { block, catch, finally } => {
                block.iter_mut().any(|s| in_stmt(s, name, value))
                    || catch
                        .as_mut()
                        .is_some_and(|c| c.body.iter_mut().any(|s| in_stmt(s, name, value)))
                    || finally
                        .as_mut()
                        .is_some_and(|f| f.iter_mut().any(|s| in_stmt(s, name, value)))
            }
            _ => false,
        }
    }
    body.iter_mut().any(|s| in_stmt(s, name, value))
}

/// Rewrites the argument expression of the call with id `call_id`.
fn rewrite_call_arg(body: &mut [Stmt], call_id: NodeId, arg_index: usize, value: &Expr) -> bool {
    let mut changed = false;
    visit_calls_mut(body, &mut |expr| {
        if expr.id != call_id || changed {
            return;
        }
        if let ExprKind::Call { args, .. } | ExprKind::New { args, .. } = &mut expr.kind {
            if let Some(slot) = args.get_mut(arg_index) {
                *slot = value.clone();
                changed = true;
            }
        }
    });
    changed
}

/// Applies `f` to every call/new expression (mutable traversal).
fn visit_calls_mut(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    fn expr_walk(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        if matches!(e.kind, ExprKind::Call { .. } | ExprKind::New { .. }) {
            f(e);
        }
        match &mut e.kind {
            ExprKind::Array(items) => {
                items.iter_mut().flatten().for_each(|e| expr_walk(e, f));
            }
            ExprKind::Object(props) => {
                for p in props {
                    if let PropKey::Computed(k) = &mut p.key {
                        expr_walk(k, f);
                    }
                    if let Some(v) = &mut p.value {
                        expr_walk(v, f);
                    }
                }
            }
            ExprKind::Function(func) => stmt_walk(&mut func.body, f),
            ExprKind::Arrow { func, expr_body } => {
                stmt_walk(&mut func.body, f);
                if let Some(e) = expr_body {
                    expr_walk(e, f);
                }
            }
            ExprKind::Unary { operand, .. } => expr_walk(operand, f),
            ExprKind::Update { target, .. } => expr_walk(target, f),
            ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
                expr_walk(left, f);
                expr_walk(right, f);
            }
            ExprKind::Cond { cond, cons, alt } => {
                expr_walk(cond, f);
                expr_walk(cons, f);
                expr_walk(alt, f);
            }
            ExprKind::Assign { target, value, .. } => {
                expr_walk(target, f);
                expr_walk(value, f);
            }
            ExprKind::Seq(items) => items.iter_mut().for_each(|e| expr_walk(e, f)),
            ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
                expr_walk(callee, f);
                args.iter_mut().for_each(|e| expr_walk(e, f));
            }
            ExprKind::Member { object, .. } => expr_walk(object, f),
            ExprKind::Index { object, index } => {
                expr_walk(object, f);
                expr_walk(index, f);
            }
            ExprKind::Template { exprs, .. } => exprs.iter_mut().for_each(|e| expr_walk(e, f)),
            ExprKind::Paren(inner) => expr_walk(inner, f),
            ExprKind::Ident(_) | ExprKind::Lit(_) | ExprKind::This => {}
        }
    }
    fn stmt_walk(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
        for stmt in body {
            match &mut stmt.kind {
                StmtKind::Expr(e) | StmtKind::Throw(e) => expr_walk(e, f),
                StmtKind::Decl { decls, .. } => {
                    for d in decls {
                        if let Some(init) = &mut d.init {
                            expr_walk(init, f);
                        }
                    }
                }
                StmtKind::FunctionDecl(func) => stmt_walk(&mut func.body, f),
                StmtKind::Block(b) => stmt_walk(b, f),
                StmtKind::If { cond, cons, alt } => {
                    expr_walk(cond, f);
                    stmt_walk(std::slice::from_mut(cons), f);
                    if let Some(alt) = alt {
                        stmt_walk(std::slice::from_mut(alt), f);
                    }
                }
                StmtKind::While { cond, body } => {
                    expr_walk(cond, f);
                    stmt_walk(std::slice::from_mut(body), f);
                }
                StmtKind::DoWhile { body, cond } => {
                    stmt_walk(std::slice::from_mut(body), f);
                    expr_walk(cond, f);
                }
                StmtKind::For { init, test, update, body } => {
                    match init.as_deref_mut() {
                        Some(ForInit::Decl { decls, .. }) => {
                            for d in decls {
                                if let Some(e) = &mut d.init {
                                    expr_walk(e, f);
                                }
                            }
                        }
                        Some(ForInit::Expr(e)) => expr_walk(e, f),
                        None => {}
                    }
                    if let Some(t) = test {
                        expr_walk(t, f);
                    }
                    if let Some(u) = update {
                        expr_walk(u, f);
                    }
                    stmt_walk(std::slice::from_mut(body), f);
                }
                StmtKind::ForInOf { object, body, .. } => {
                    expr_walk(object, f);
                    stmt_walk(std::slice::from_mut(body), f);
                }
                StmtKind::Return(Some(e)) => expr_walk(e, f),
                StmtKind::Try { block, catch, finally } => {
                    stmt_walk(block, f);
                    if let Some(c) = catch {
                        stmt_walk(&mut c.body, f);
                    }
                    if let Some(fin) = finally {
                        stmt_walk(fin, f);
                    }
                }
                StmtKind::Switch { disc, cases } => {
                    expr_walk(disc, f);
                    for c in cases {
                        if let Some(t) = &mut c.test {
                            expr_walk(t, f);
                        }
                        stmt_walk(&mut c.body, f);
                    }
                }
                _ => {}
            }
        }
    }
    stmt_walk(body, f);
}

// ---------------------------------------------------------------------------
// Driver synthesis
// ---------------------------------------------------------------------------

/// If the program defines functions but never calls them at the top level,
/// append driver code (`var parameter = …; print(f(parameter));` — the
/// Figure 2 lines 5–9 pattern). Programs that already have top-level calls
/// are returned unchanged.
pub fn ensure_driver<R: Rng>(program: &Program, rng: &mut R) -> Program {
    let mut clone = program.clone();
    let funcs: Vec<(String, usize)> = clone
        .body
        .iter()
        .filter_map(|s| match &s.kind {
            StmtKind::FunctionDecl(f) => {
                Some((f.name.clone().expect("function declarations are named"), f.params.len()))
            }
            StmtKind::Decl { decls, .. } => decls.iter().find_map(|d| match &d.init {
                Some(Expr { kind: ExprKind::Function(f), .. }) => {
                    Some((d.name.clone(), f.params.len()))
                }
                Some(Expr { kind: ExprKind::Arrow { func, .. }, .. }) => {
                    Some((d.name.clone(), func.params.len()))
                }
                _ => None,
            }),
            _ => None,
        })
        .collect();

    let has_toplevel_call = clone.body.iter().any(|s| {
        matches!(
            &s.kind,
            StmtKind::Expr(Expr { kind: ExprKind::Call { .. }, .. })
        ) || matches!(
            &s.kind,
            StmtKind::Decl { decls, .. }
                if decls.iter().any(|d| matches!(&d.init, Some(Expr { kind: ExprKind::Call { .. }, .. })))
        )
    });
    if funcs.is_empty() || has_toplevel_call {
        return clone;
    }
    for (i, (name, argc)) in funcs.iter().enumerate() {
        let mut args = Vec::new();
        for j in 0..*argc {
            let pname = format!("parameter{i}_{j}");
            clone.body.push(build::var_decl(&pname, random_value_expr(rng)));
            args.push(build::ident(&pname));
        }
        let call = build::call(build::ident(name), args);
        clone.body.push(build::var_decl(&format!("result{i}"), call));
        clone.body.push(build::expr_stmt(build::call(
            build::ident("print"),
            vec![build::ident(&format!("result{i}"))],
        )));
    }
    clone.renumber();
    clone
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> &'static SpecDb {
        comfort_ecma262::spec_db()
    }

    #[test]
    fn figure2_mutation_is_produced() {
        // The generated program calls substr through a variable; the mutator
        // must produce the `var len = undefined;` variant of Figure 2.
        let src = r#"
function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var s = "Name: Albert";
var pre = 6;
var len = 5;
var name = foo(s, pre, len);
print(name);
"#;
        let program = parse(src).expect("parses");
        let gen = DataGen::new(db(), DataGenConfig::default());
        let mut next = 0;
        let mut rng = StdRng::seed_from_u64(1);
        let mutants = gen.mutate(&program, 0, &mut next, &mut rng);
        assert!(!mutants.is_empty());
        assert!(
            mutants.iter().any(|m| m.source.contains("var len = undefined;")),
            "expected a Figure-2-style undefined mutation;\nfirst mutant:\n{}",
            mutants[0].source
        );
        for m in &mutants {
            assert_eq!(m.origin, Origin::EcmaMutation);
            parse(&m.source).expect("mutants are valid JS");
        }
    }

    #[test]
    fn inline_argument_mutation() {
        let src = "print(\"hello\".substr(1, 2));";
        let program = parse(src).expect("parses");
        let gen = DataGen::new(db(), DataGenConfig::default());
        let mut next = 0;
        let mut rng = StdRng::seed_from_u64(2);
        let mutants = gen.mutate(&program, 0, &mut next, &mut rng);
        assert!(mutants.iter().any(|m| m.source.contains("substr(1, undefined)")
            || m.source.contains("substr(undefined, 2)")));
    }

    #[test]
    fn arg_count_variants() {
        let src = "print(\"abc\".substr(1, 2));";
        let program = parse(src).expect("parses");
        let gen = DataGen::new(
            db(),
            DataGenConfig { max_mutants_per_program: 64, ..DataGenConfig::default() },
        );
        let mut next = 0;
        let mut rng = StdRng::seed_from_u64(3);
        let mutants = gen.mutate(&program, 0, &mut next, &mut rng);
        assert!(mutants.iter().any(|m| m.source.contains("substr(1)")), "drop-arg variant");
    }

    #[test]
    fn unknown_apis_are_skipped() {
        let src = "print(somethingCustom(1));";
        let program = parse(src).expect("parses");
        let gen = DataGen::new(db(), DataGenConfig::default());
        let mut next = 0;
        let mut rng = StdRng::seed_from_u64(4);
        let mutants = gen.mutate(&program, 0, &mut next, &mut rng);
        assert!(mutants.is_empty());
    }

    #[test]
    fn driver_synthesis_adds_call_and_print() {
        let src = "var foo = function(size) { return size + 1; };";
        let program = parse(src).expect("parses");
        let mut rng = StdRng::seed_from_u64(5);
        let driven = ensure_driver(&program, &mut rng);
        let text = print_program(&driven);
        assert!(text.contains("foo(parameter0_0)"), "{text}");
        assert!(text.contains("print(result0)"), "{text}");
        parse(&text).expect("driver output is valid JS");
    }

    #[test]
    fn driver_not_duplicated() {
        let src = "function f(x) { return x; }\nvar r = f(1);\nprint(r);";
        let program = parse(src).expect("parses");
        let mut rng = StdRng::seed_from_u64(6);
        let driven = ensure_driver(&program, &mut rng);
        assert_eq!(print_program(&driven), print_program(&program));
    }

    #[test]
    fn mutant_cap_respected() {
        let src = "print(\"x\".substr(0, 1)); print(\"y\".slice(0)); print([1].join(\",\"));";
        let program = parse(src).expect("parses");
        let gen =
            DataGen::new(db(), DataGenConfig { max_mutants_per_program: 5, random_mutants: 5 });
        let mut next = 0;
        let mut rng = StdRng::seed_from_u64(7);
        let mutants = gen.mutate(&program, 0, &mut next, &mut rng);
        assert!(mutants.len() <= 5, "{}", mutants.len());
    }
}
