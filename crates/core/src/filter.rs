//! The tree-based identical-miscompilation filter (§3.6, Figure 6).
//!
//! Three layers: **engine** → **API function** (or `None`) → **behaviour**
//! (TypeError, TimeOut, Crash, WrongOutput, …). A test case whose path
//! already exists in the tree is considered a duplicate of a known bug; a
//! new path adds a leaf and reports a new bug.

use std::collections::{BTreeMap, BTreeSet};

use comfort_engines::EngineName;

/// Key of one leaf: the (engine, API, behaviour) path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BugKey {
    /// Layer 1: the deviating engine.
    pub engine: EngineName,
    /// Layer 2: the JS API involved, if the test case calls one.
    pub api: Option<String>,
    /// Layer 3: the miscompilation behaviour label.
    pub behavior: String,
}

impl std::fmt::Display for BugKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {} / {}", self.engine, self.api.as_deref().unwrap_or("None"), self.behavior)
    }
}

/// A point-in-time summary of the filter tree, for campaign metrics and
/// telemetry (dedup pressure = `duplicates / observed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Distinct bugs (leaf decision nodes).
    pub leaves: usize,
    /// Total observations classified.
    pub observed: u64,
    /// Observations rejected as duplicates.
    pub duplicates: u64,
}

/// The knowledge-base tree.
#[derive(Debug, Clone, Default)]
pub struct BugTree {
    layers: BTreeMap<EngineName, BTreeMap<Option<String>, BTreeSet<String>>>,
    observed: u64,
    duplicates: u64,
}

impl BugTree {
    /// An empty knowledge base.
    pub fn new() -> Self {
        BugTree::default()
    }

    /// Classifies an observation. Returns `true` when the path is **new**
    /// (a new leaf is added); `false` for a duplicate of a known bug.
    pub fn observe(&mut self, key: &BugKey) -> bool {
        self.observed += 1;
        let fresh = self
            .layers
            .entry(key.engine)
            .or_default()
            .entry(key.api.clone())
            .or_default()
            .insert(key.behavior.clone());
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// `true` if the path is already known (no mutation).
    pub fn contains(&self, key: &BugKey) -> bool {
        self.layers
            .get(&key.engine)
            .and_then(|apis| apis.get(&key.api))
            .is_some_and(|set| set.contains(&key.behavior))
    }

    /// Number of leaf decision nodes (distinct bugs).
    pub fn leaf_count(&self) -> usize {
        self.layers.values().flat_map(|apis| apis.values()).map(BTreeSet::len).sum()
    }

    /// Leaves under one engine.
    pub fn leaves_for(&self, engine: EngineName) -> usize {
        self.layers.get(&engine).map(|apis| apis.values().map(BTreeSet::len).sum()).unwrap_or(0)
    }

    /// Total observations fed to the filter.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observations rejected as duplicates (the paper reports tens of
    /// thousands filtered).
    pub fn duplicates_filtered(&self) -> u64 {
        self.duplicates
    }

    /// Snapshot of the tree's classification counters.
    pub fn stats(&self) -> FilterStats {
        FilterStats {
            leaves: self.leaf_count(),
            observed: self.observed,
            duplicates: self.duplicates,
        }
    }

    /// Iterates all leaves as [`BugKey`]s.
    pub fn keys(&self) -> impl Iterator<Item = BugKey> + '_ {
        self.layers.iter().flat_map(|(engine, apis)| {
            apis.iter().flat_map(move |(api, behaviors)| {
                behaviors.iter().map(move |b| BugKey {
                    engine: *engine,
                    api: api.clone(),
                    behavior: b.clone(),
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(engine: EngineName, api: Option<&str>, behavior: &str) -> BugKey {
        BugKey { engine, api: api.map(str::to_string), behavior: behavior.to_string() }
    }

    #[test]
    fn first_observation_is_new_second_is_duplicate() {
        let mut tree = BugTree::new();
        let k = key(EngineName::Rhino, Some("substr"), "WrongOutput");
        assert!(tree.observe(&k));
        assert!(!tree.observe(&k));
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.observed(), 2);
        assert_eq!(tree.duplicates_filtered(), 1);
        assert_eq!(tree.stats(), FilterStats { leaves: 1, observed: 2, duplicates: 1 });
    }

    #[test]
    fn layers_distinguish_engine_api_behavior() {
        let mut tree = BugTree::new();
        assert!(tree.observe(&key(EngineName::Rhino, Some("substr"), "WrongOutput")));
        assert!(tree.observe(&key(EngineName::V8, Some("substr"), "WrongOutput")));
        assert!(tree.observe(&key(EngineName::Rhino, Some("toFixed"), "WrongOutput")));
        assert!(tree.observe(&key(EngineName::Rhino, Some("substr"), "TypeError")));
        assert!(tree.observe(&key(EngineName::Rhino, None, "TimeOut")));
        assert_eq!(tree.leaf_count(), 5);
        assert_eq!(tree.leaves_for(EngineName::Rhino), 4);
        assert_eq!(tree.leaves_for(EngineName::Jsc), 0);
    }

    #[test]
    fn contains_does_not_mutate() {
        let mut tree = BugTree::new();
        let k = key(EngineName::Hermes, None, "TimeOut");
        assert!(!tree.contains(&k));
        tree.observe(&k);
        assert!(tree.contains(&k));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn keys_roundtrip() {
        let mut tree = BugTree::new();
        let k1 = key(EngineName::QuickJs, Some("normalize"), "Crash");
        let k2 = key(EngineName::QuickJs, None, "WrongOutput");
        tree.observe(&k1);
        tree.observe(&k2);
        let all: Vec<BugKey> = tree.keys().collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&k1));
        assert!(all.contains(&k2));
    }
}
