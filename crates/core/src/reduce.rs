//! Test-case reduction (§3.5).
//!
//! "Traverse the abstract syntax tree of the input test program to
//! iteratively remove code structures and test if the resulting program can
//! still trigger the same compilation or execution outcome … repeat until a
//! fixpoint."
//!
//! The reducer tries removing each statement (at the top level, then inside
//! every function/block body), keeping a removal whenever the caller's
//! `still_fails` oracle accepts the smaller program. It runs to a fixpoint.

use comfort_syntax::ast::{Function, Stmt, StmtKind};
use comfort_syntax::Program;

/// Reduction effort counters, for per-stage telemetry: each oracle call is
/// one candidate differential run, which dominates reduction cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Candidate programs offered to the oracle.
    pub candidates_tried: u64,
    /// Candidates the oracle accepted (statements actually removed).
    pub removals_kept: u64,
}

/// Reduces `program`, keeping only removals the oracle accepts.
///
/// `still_fails(candidate)` must return `true` iff the candidate still
/// reproduces the original anomalous behaviour. The input program itself is
/// assumed to satisfy the oracle.
pub fn reduce(program: &Program, still_fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    reduce_counted(program, still_fails).0
}

/// Like [`reduce`], but also reports how much work the reduction did (for
/// the campaign's per-stage metrics).
pub fn reduce_counted(
    program: &Program,
    still_fails: &mut dyn FnMut(&Program) -> bool,
) -> (Program, ReduceStats) {
    let mut stats = ReduceStats::default();
    let mut counting_oracle = |candidate: &Program| {
        stats.candidates_tried += 1;
        let accepted = still_fails(candidate);
        if accepted {
            stats.removals_kept += 1;
        }
        accepted
    };
    let reduced = fixpoint_reduce(program, &mut counting_oracle);
    (reduced, stats)
}

/// The §3.5 fixpoint loop.
fn fixpoint_reduce(program: &Program, still_fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    let mut current = program.clone();
    loop {
        let mut changed = false;

        // Pass 1: drop whole top-level statements.
        let mut i = 0;
        while i < current.body.len() {
            if current.body.len() == 1 {
                break; // never reduce to an empty program
            }
            let mut candidate = current.clone();
            candidate.body.remove(i);
            candidate.renumber();
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: drop statements inside nested bodies.
        if reduce_nested(&mut current, still_fails) {
            changed = true;
        }

        if !changed {
            return current;
        }
    }
}

/// Attempts removals inside nested statement lists; returns `true` if any
/// removal was kept.
fn reduce_nested(current: &mut Program, still_fails: &mut dyn FnMut(&Program) -> bool) -> bool {
    // Collect candidate paths: (index path to the nested list, position).
    // To keep this simple and allocation-friendly, we retry whole-program
    // clones guided by a path enumeration.
    let paths = enumerate_paths(&current.body, &mut Vec::new());
    let mut changed = false;
    for path in paths.iter().rev() {
        let mut candidate = current.clone();
        if !remove_at(&mut candidate.body, path) {
            continue;
        }
        candidate.renumber();
        if still_fails(&candidate) {
            *current = candidate;
            changed = true;
        }
    }
    changed
}

/// A path into nested statement lists: indices alternate between "statement
/// position" and an implicit descent into that statement's primary body.
type Path = Vec<usize>;

fn enumerate_paths(body: &[Stmt], prefix: &mut Vec<usize>) -> Vec<Path> {
    let mut out = Vec::new();
    for (i, stmt) in body.iter().enumerate() {
        prefix.push(i);
        if let Some(inner) = primary_body(stmt) {
            for (j, _) in inner.iter().enumerate() {
                let mut p = prefix.clone();
                p.push(j);
                out.push(p);
            }
            // Recurse one more level (two levels cover generated programs).
            prefix.push(usize::MAX); // marker: descend
            for (j, s2) in inner.iter().enumerate() {
                if let Some(inner2) = primary_body(s2) {
                    for (k, _) in inner2.iter().enumerate() {
                        let mut p = prefix.clone();
                        let m = p.len() - 1;
                        p[m] = j;
                        p.push(k);
                        out.push(p);
                    }
                }
            }
            prefix.pop();
        }
        prefix.pop();
    }
    out
}

/// The statement's primary nested statement list, if it has one.
fn primary_body(stmt: &Stmt) -> Option<&[Stmt]> {
    match &stmt.kind {
        StmtKind::FunctionDecl(f) => Some(&f.body),
        StmtKind::Block(b) => Some(b),
        StmtKind::Decl { decls, .. } => decls.iter().find_map(|d| match &d.init {
            Some(e) => match &e.kind {
                comfort_syntax::ExprKind::Function(f) => Some(f.body.as_slice()),
                _ => None,
            },
            None => None,
        }),
        _ => None,
    }
}

fn primary_body_mut(stmt: &mut Stmt) -> Option<&mut Vec<Stmt>> {
    match &mut stmt.kind {
        StmtKind::FunctionDecl(f) => Some(&mut f.body),
        StmtKind::Block(b) => Some(b),
        StmtKind::Decl { decls, .. } => decls.iter_mut().find_map(|d| match &mut d.init {
            Some(e) => match &mut e.kind {
                comfort_syntax::ExprKind::Function(Function { body, .. }) => Some(body),
                _ => None,
            },
            None => None,
        }),
        _ => None,
    }
}

/// Removes the statement addressed by `path`; `true` on success.
fn remove_at(body: &mut Vec<Stmt>, path: &[usize]) -> bool {
    match path {
        [] => false,
        [i] => {
            if *i < body.len() && body.len() > 1 {
                body.remove(*i);
                true
            } else {
                false
            }
        }
        [i, rest @ ..] => {
            let Some(stmt) = body.get_mut(*i) else { return false };
            let Some(inner) = primary_body_mut(stmt) else { return false };
            remove_at(inner, rest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_syntax::{parse, print_program};

    #[test]
    fn removes_irrelevant_statements() {
        let program =
            parse("var junk1 = 1; var keep = 'MARKER'; var junk2 = [1,2,3]; print(keep);")
                .expect("parses");
        let reduced = reduce(&program, &mut |p| print_program(p).contains("MARKER"));
        let text = print_program(&reduced);
        assert!(text.contains("MARKER"));
        assert!(!text.contains("junk1"));
        assert!(!text.contains("junk2"));
    }

    #[test]
    fn reduces_inside_function_bodies() {
        let program =
            parse("function f() { var a = 1; var b = 'MARKER'; var c = 3; return b; } print(f());")
                .expect("parses");
        let reduced = reduce(&program, &mut |p| print_program(p).contains("MARKER"));
        let text = print_program(&reduced);
        assert!(text.contains("MARKER"));
        assert!(!text.contains("var a"), "{text}");
        assert!(!text.contains("var c"), "{text}");
    }

    #[test]
    fn fixpoint_is_reached() {
        // Removing `x` only becomes possible after `y` is gone — requires a
        // second outer iteration.
        let program = parse("var x = 1; var y = x + 'MARKER'; print('MARKER');").expect("parses");
        let reduced = reduce(&program, &mut |p| {
            let t = print_program(p);
            t.contains("print('MARKER')") || t.contains("print(\"MARKER\")")
        });
        assert_eq!(reduced.body.len(), 1);
    }

    #[test]
    fn counted_reduction_reports_effort() {
        let program = parse("var junk = 1; var junk2 = 2; print('MARKER');").expect("parses");
        let (reduced, stats) =
            reduce_counted(&program, &mut |p| print_program(p).contains("MARKER"));
        assert!(stats.removals_kept >= 2, "{stats:?}");
        assert!(stats.candidates_tried >= stats.removals_kept, "{stats:?}");
        assert!(print_program(&reduced).contains("MARKER"));
        // The uncounted wrapper reduces identically.
        let plain = reduce(&program, &mut |p| print_program(p).contains("MARKER"));
        assert_eq!(print_program(&plain), print_program(&reduced));
    }

    #[test]
    fn never_empties_the_program() {
        let program = parse("print(1);").expect("parses");
        let reduced = reduce(&program, &mut |_| true);
        assert_eq!(reduced.body.len(), 1);
    }

    #[test]
    fn oracle_rejection_keeps_statements() {
        let program = parse("var a = 1; print(a);").expect("parses");
        let reduced = reduce(&program, &mut |p| {
            // Only the full program "fails": any removal is rejected.
            p.body.len() == 2
        });
        assert_eq!(reduced.body.len(), 2);
    }

    #[test]
    fn reduction_against_a_real_engine_deviation() {
        use crate::differential::{run_differential, CaseOutcome};
        use comfort_engines::latest_testbeds;
        let program = parse(
            "var noise = [9, 8, 7].join('-');\nprint(noise.length);\nvar s = 'Name: Albert';\nvar len = undefined;\nprint(s.substr(6, len));",
        )
        .expect("parses");
        let beds = latest_testbeds();
        let mut oracle = |p: &Program| {
            matches!(run_differential(p, &beds, &comfort_engines::RunOptions::with_fuel(100_000)), CaseOutcome::Deviations(d)
                if d.iter().any(|r| r.engine == comfort_engines::EngineName::Rhino))
        };
        assert!(oracle(&program), "base case must deviate");
        let reduced = reduce(&program, &mut oracle);
        let text = print_program(&reduced);
        assert!(text.contains("substr"));
        assert!(!text.contains("noise"), "noise statements must be gone:\n{text}");
    }
}
