//! Differential testing with majority voting (§3.4, Figure 5).
//!
//! A test case runs on every testbed; per *mode group* (normal testbeds are
//! compared with normal testbeds, strict with strict — the two groups have
//! different legal semantics), results collapse to a signature and the
//! majority signature defines expected behaviour. Engines whose signature
//! deviates from a strict majority are flagged.

use comfort_engines::{compile, BugBehavior, CompiledChunk, EngineName, RunOptions, Testbed};
use comfort_interp::{ErrorKind, RunStatus};
use comfort_syntax::Program;
use std::sync::Arc;

/// Canonicalized result of one run: the comparison key for voting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Signature {
    /// Completed with this output.
    Completed(String),
    /// Threw an error of this kind (message excluded: engines word their
    /// diagnostics differently even when conforming).
    Threw(Option<ErrorKind>),
    /// Deterministic timeout (fuel exhaustion).
    Timeout,
    /// Engine crash.
    Crash,
}

impl Signature {
    /// Builds the signature of a run result.
    pub fn of(status: &RunStatus, output: &str) -> Signature {
        match status {
            RunStatus::Completed => Signature::Completed(output.to_string()),
            RunStatus::Threw { kind, .. } => Signature::Threw(*kind),
            RunStatus::OutOfFuel => Signature::Timeout,
            RunStatus::Crashed(_) => Signature::Crash,
        }
    }

    /// Short human-readable rendering (for reports and the bug filter).
    #[deprecated(since = "0.1.0", note = "use the `Display` impl (`to_string()` / `{}`)")]
    pub fn describe(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for Signature {
    /// Short human-readable rendering, used by reports and as the
    /// behaviour layer of the bug-filter tree.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Signature::Completed(out) => {
                let trimmed: String = out.chars().take(80).collect();
                write!(f, "output {trimmed:?}")
            }
            Signature::Threw(Some(kind)) => f.write_str(kind.name()),
            Signature::Threw(None) => f.write_str("throw"),
            Signature::Timeout => f.write_str("Timeout"),
            Signature::Crash => f.write_str("Crash"),
        }
    }
}

/// How an engine deviated from the majority (the Figure 5 buggy outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviationKind {
    /// Completed but with different output.
    WrongOutput,
    /// Threw where the majority completed (or threw a different kind).
    UnexpectedError,
    /// Completed where the majority threw.
    MissingError,
    /// Crashed.
    Crash,
    /// Timed out while the majority terminated.
    Timeout,
}

impl DeviationKind {
    /// Classifies a deviating signature against the majority's.
    pub fn classify(deviant: &Signature, majority: &Signature) -> DeviationKind {
        match (deviant, majority) {
            (Signature::Crash, _) => DeviationKind::Crash,
            (Signature::Timeout, _) => DeviationKind::Timeout,
            (Signature::Threw(_), Signature::Threw(_)) => DeviationKind::UnexpectedError,
            (Signature::Threw(_), _) => DeviationKind::UnexpectedError,
            (_, Signature::Threw(_)) => DeviationKind::MissingError,
            _ => DeviationKind::WrongOutput,
        }
    }

    /// Label used in reports and the bug-filter tree.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviationKind::WrongOutput => "WrongOutput",
            DeviationKind::UnexpectedError => "UnexpectedError",
            DeviationKind::MissingError => "MissingError",
            DeviationKind::Crash => "Crash",
            DeviationKind::Timeout => "TimeOut",
        }
    }

    /// Parses the label produced by [`DeviationKind::as_str`].
    pub fn parse_label(s: &str) -> Option<DeviationKind> {
        [
            DeviationKind::WrongOutput,
            DeviationKind::UnexpectedError,
            DeviationKind::MissingError,
            DeviationKind::Crash,
            DeviationKind::Timeout,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for DeviationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One engine's deviation on one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviationRecord {
    /// Deviating engine.
    pub engine: EngineName,
    /// Version label (`"Rhino v1.7.12"`).
    pub version: String,
    /// `true` when observed on the strict testbed group.
    pub strict: bool,
    /// Classification.
    pub kind: DeviationKind,
    /// The deviating signature.
    pub actual: Signature,
    /// The majority signature.
    pub expected: Signature,
}

/// Outcome of running one test case across the testbeds (Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// All testbeds rejected the program (consistent parsing error).
    ParseError,
    /// Every engine timed out (ignored per §3.4 — a huge/infinite loop).
    AllTimeout,
    /// All testbeds agreed.
    Pass,
    /// At least one engine deviates from a strict majority.
    Deviations(Vec<DeviationRecord>),
    /// No mode group had enough healthy voters to meet the quorum
    /// threshold (degraded execution; see [`QuorumPolicy`]). The case is
    /// recorded but cannot vote.
    NoQuorum,
}

impl CaseOutcome {
    /// `true` for [`CaseOutcome::Deviations`].
    pub fn is_deviating(&self) -> bool {
        matches!(self, CaseOutcome::Deviations(_))
    }
}

/// Runs `program` on `testbeds` and applies majority voting per mode group.
///
/// The program must already have parsed (a shared front end means a parse
/// error is consistent across engines; the caller classifies those as
/// [`CaseOutcome::ParseError`] without spending engine time).
///
/// `options` configures every per-testbed run; each testbed still overrides
/// the strict flag with its own mode (see [`Testbed::run`]).
pub fn run_differential(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
) -> CaseOutcome {
    let chunk = compile(program);
    let signatures = testbed_signatures(&chunk, testbeds, options);
    vote_on_signatures(testbeds, &signatures)
}

/// Like [`run_differential`], but fans the per-testbed runs out across up
/// to `threads` workers. Signatures are collected by testbed index before
/// voting, so the outcome is **bit-identical at every thread count**
/// (`threads <= 1` is exactly the serial path).
pub fn run_differential_pooled(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
) -> CaseOutcome {
    // One compile per case; workers share the chunk read-only.
    let chunk = compile(program);
    let signatures = if threads <= 1 || testbeds.len() < 2 {
        testbed_signatures(&chunk, testbeds, options)
    } else {
        parallel_signatures(&chunk, testbeds, options, threads)
    };
    vote_on_signatures(testbeds, &signatures)
}

/// Computes the per-testbed signatures on a scoped worker pool. Workers
/// claim testbed indices from a shared atomic counter; each index is
/// claimed exactly once, so its slot is written exactly once — a per-slot
/// `OnceLock` gives lock-free writes with no per-case mutex pool.
fn parallel_signatures(
    chunk: &Arc<CompiledChunk>,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
) -> Vec<Signature> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    let slots: Vec<OnceLock<Signature>> = testbeds.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(testbeds.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= testbeds.len() {
                    break;
                }
                let r = testbeds[i].run_compiled(chunk, options);
                let set = slots[i].set(Signature::of(&r.status, &r.output));
                debug_assert!(set.is_ok(), "slot {i} claimed twice");
            });
        }
    });
    slots.into_iter().map(|slot| slot.into_inner().expect("every slot was claimed")).collect()
}

/// Partition of a testbed matrix into behaviour-equivalence classes for one
/// chunk: `rep[i]` is the slot whose execution testbed `i` reuses
/// (`rep[i] == i` for class representatives and singletons).
///
/// Two testbeds fall in the same class when they have the same mode
/// (normal/strict vote separately and may differ semantically) and the same
/// sequence of bug *behaviours* the chunk's
/// [`comfort_interp::ApiFootprint`] cannot rule out
/// ([`comfort_engines::BugBehavior`]). Behaviours compare by hook site,
/// trigger, and deviation rather than by engine-specific bug id, so
/// testbeds of *different engines* merge when their relevant bugs are
/// semantically identical — the hook layer is the only behavioural
/// difference between profiles, and equal empty sequences mean both behave
/// as the clean reference. Either way the runs are bit-identical and one
/// execution can serve the whole class.
///
/// Forced singletons keep the partition composable with the rest of the
/// harness: a slot with a pending chaos fault or a half-open quarantine
/// probe must observe its *own* run (`shareable[i] = false`). A poisoned
/// footprint disables classing entirely (full matrix).
#[derive(Debug, Clone)]
pub struct ExecutionClasses {
    rep: Vec<usize>,
    classes: usize,
}

impl ExecutionClasses {
    /// The trivial partition (every masked-in slot its own class) — the
    /// dedup-off path, identical to historical execution.
    pub fn identity(mask: &[bool]) -> ExecutionClasses {
        ExecutionClasses {
            rep: (0..mask.len()).collect(),
            classes: mask.iter().filter(|m| **m).count(),
        }
    }

    /// Computes the partition for `chunk`. `mask[i] = false` excludes slot
    /// `i` (quarantined — it neither runs nor joins a class);
    /// `shareable[i] = false` forces a masked-in slot into a singleton
    /// class. Representatives are chosen deterministically as the lowest
    /// masked-in index of each class, independent of thread count.
    pub fn compute(
        chunk: &CompiledChunk,
        testbeds: &[Testbed],
        mask: &[bool],
        shareable: &[bool],
    ) -> ExecutionClasses {
        debug_assert_eq!(testbeds.len(), mask.len());
        debug_assert_eq!(testbeds.len(), shareable.len());
        let mut out = ExecutionClasses::identity(mask);
        if chunk.footprint.is_poisoned() {
            return out; // analysis gave up: full matrix
        }
        out.classes = 0;
        let mut seen: Vec<(bool, Vec<BugBehavior<'_>>, usize)> = Vec::new();
        for (i, bed) in testbeds.iter().enumerate() {
            if !mask[i] {
                continue;
            }
            if !shareable[i] {
                out.classes += 1; // forced singleton, rep[i] stays i
                continue;
            }
            let key = bed.engine.relevant_behavior(
                &chunk.footprint,
                bed.strict || chunk.footprint.has_strict_sites(),
            );
            match seen.iter().find(|(strict, k, _)| *strict == bed.strict && *k == key) {
                Some((_, _, leader)) => out.rep[i] = *leader,
                None => {
                    seen.push((bed.strict, key, i));
                    out.classes += 1;
                }
            }
        }
        out
    }

    /// The slot whose execution slot `i` reuses.
    pub fn rep(&self, i: usize) -> usize {
        self.rep[i]
    }

    /// `true` when slot `i` executes its own run.
    pub fn is_representative(&self, i: usize) -> bool {
        self.rep[i] == i
    }

    /// Number of classes over the masked-in slots (= physical executions).
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Size of each class, keyed by representative index in ascending
    /// order (bench histograms).
    pub fn class_sizes(&self, mask: &[bool]) -> Vec<usize> {
        let mut sizes: Vec<(usize, usize)> = Vec::new();
        for (&r, &masked_in) in self.rep.iter().zip(mask) {
            if !masked_in {
                continue;
            }
            match sizes.iter_mut().find(|(leader, _)| *leader == r) {
                Some((_, n)) => *n += 1,
                None => sizes.push((r, 1)),
            }
        }
        sizes.sort_unstable_by_key(|(leader, _)| *leader);
        sizes.into_iter().map(|(_, n)| n).collect()
    }
}

/// Computes the per-testbed signatures serially, in testbed order.
pub(crate) fn testbed_signatures(
    chunk: &Arc<CompiledChunk>,
    testbeds: &[Testbed],
    options: &RunOptions,
) -> Vec<Signature> {
    testbeds
        .iter()
        .map(|t| {
            let r = t.run_compiled(chunk, options);
            Signature::of(&r.status, &r.output)
        })
        .collect()
}

/// Quorum threshold for degraded voting: how many healthy voters a mode
/// group needs before its majority vote counts. Groups below the threshold
/// are observed (for telemetry) but cast no vote, and a case where *no*
/// group reaches quorum resolves to [`CaseOutcome::NoQuorum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumPolicy {
    /// Minimum healthy voters per mode group.
    pub min_voters: usize,
}

impl Default for QuorumPolicy {
    /// Two voters: a single surviving engine has nothing to differ from,
    /// so its lone "majority" is not evidence.
    fn default() -> Self {
        QuorumPolicy { min_voters: 2 }
    }
}

impl QuorumPolicy {
    /// The legacy threshold (1): every non-empty group votes, which is
    /// exactly the pre-quorum behaviour of the harness.
    pub const LEGACY: QuorumPolicy = QuorumPolicy { min_voters: 1 };
}

/// Per-mode-group voting summary produced by
/// [`vote_on_signatures_quorum`] — the raw material for `QuorumDegraded`
/// telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupQuorum {
    /// `true` for the strict group.
    pub strict: bool,
    /// Healthy voters that cast a signature.
    pub present: usize,
    /// Full group membership (healthy + quarantined).
    pub total: usize,
    /// Whether the group met the quorum threshold and voted.
    pub voted: bool,
}

impl GroupQuorum {
    /// `true` when the group voted short-handed or was skipped entirely.
    pub fn degraded(&self) -> bool {
        self.present < self.total || !self.voted
    }
}

/// Majority voting over precomputed signatures (`signatures[i]` must belong
/// to `testbeds[i]`). Split from [`run_differential`] so the parallel
/// executor can compute signatures on a worker pool and vote identically.
pub(crate) fn vote_on_signatures(testbeds: &[Testbed], signatures: &[Signature]) -> CaseOutcome {
    debug_assert_eq!(testbeds.len(), signatures.len());
    let present: Vec<Option<Signature>> = signatures.iter().cloned().map(Some).collect();
    vote_on_signatures_quorum(testbeds, &present, &QuorumPolicy::LEGACY).0
}

/// Degraded-quorum majority voting: `signatures[i]` is `None` when
/// `testbeds[i]` did not run (quarantined). Each mode group votes over its
/// *present* signatures only, and only when at least
/// [`QuorumPolicy::min_voters`] of them are present. Returns the outcome
/// plus one [`GroupQuorum`] per non-empty group.
///
/// With every signature present and the [`QuorumPolicy::LEGACY`] threshold
/// this is exactly the historical voting function.
pub fn vote_on_signatures_quorum(
    testbeds: &[Testbed],
    signatures: &[Option<Signature>],
    quorum: &QuorumPolicy,
) -> (CaseOutcome, Vec<GroupQuorum>) {
    debug_assert_eq!(testbeds.len(), signatures.len());
    let mut deviations = Vec::new();
    let mut groups = Vec::new();
    let mut all_timeout = true;
    let mut any_group = false;
    let mut any_present = false;
    let mut any_voted = false;

    for strict in [false, true] {
        let members: Vec<(&Testbed, &Option<Signature>)> =
            testbeds.iter().zip(signatures).filter(|(t, _)| t.strict == strict).collect();
        if members.is_empty() {
            continue;
        }
        any_group = true;
        let group: Vec<(&Testbed, &Signature)> =
            members.iter().filter_map(|(t, s)| s.as_ref().map(|sig| (*t, sig))).collect();
        let voted = group.len() >= quorum.min_voters.max(1);
        groups.push(GroupQuorum { strict, present: group.len(), total: members.len(), voted });
        if group.is_empty() {
            continue;
        }
        any_present = true;
        let results: Vec<Signature> = group.iter().map(|(_, s)| (*s).clone()).collect();
        if results.iter().any(|s| !matches!(s, Signature::Timeout)) {
            all_timeout = false;
        }
        if !voted {
            continue; // below quorum: observe, don't vote
        }
        any_voted = true;
        // With one or two voters, `majority_signature` can never flag a
        // deviation (a strict majority requires agreement), so small groups
        // degrade gracefully rather than producing false positives.
        let Some(majority) = majority_signature(&results) else {
            continue; // no strict majority: ambiguous, skip (paper does too)
        };
        for (bed, sig) in &group {
            if **sig != majority {
                deviations.push(DeviationRecord {
                    engine: bed.engine.name(),
                    version: bed.engine.version().label(),
                    strict,
                    kind: DeviationKind::classify(sig, &majority),
                    actual: (*sig).clone(),
                    expected: majority.clone(),
                });
            }
        }
    }

    let outcome = if !any_group {
        CaseOutcome::Pass
    } else if !any_present {
        CaseOutcome::NoQuorum
    } else if all_timeout {
        CaseOutcome::AllTimeout
    } else if !any_voted {
        CaseOutcome::NoQuorum
    } else if deviations.is_empty() {
        CaseOutcome::Pass
    } else {
        CaseOutcome::Deviations(deviations)
    };
    (outcome, groups)
}

/// The signature shared by more than half the voters, if any.
pub fn majority_signature(results: &[Signature]) -> Option<Signature> {
    let mut counts: Vec<(usize, &Signature)> = Vec::new();
    for sig in results {
        match counts.iter_mut().find(|(_, s)| *s == sig) {
            Some((n, _)) => *n += 1,
            None => counts.push((1, sig)),
        }
    }
    counts
        .into_iter()
        .max_by_key(|(n, _)| *n)
        .filter(|(n, _)| *n * 2 > results.len())
        .map(|(_, s)| s.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_engines::latest_testbeds;
    use comfort_syntax::parse;

    #[test]
    fn conforming_program_passes() {
        let program = parse("print(1 + 1);").expect("parses");
        let outcome =
            run_differential(&program, &latest_testbeds(), &RunOptions::with_fuel(100_000));
        assert!(matches!(outcome, CaseOutcome::Pass));
    }

    #[test]
    fn figure2_case_flags_rhino_only() {
        let program =
            parse("var s = 'Name: Albert'; var len = undefined; print(s.substr(6, len));")
                .expect("parses");
        let outcome =
            run_differential(&program, &latest_testbeds(), &RunOptions::with_fuel(100_000));
        let CaseOutcome::Deviations(devs) = outcome else {
            panic!("expected deviations, got {outcome:?}");
        };
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].engine, EngineName::Rhino);
        assert_eq!(devs[0].kind, DeviationKind::WrongOutput);
    }

    #[test]
    fn listing9_crash_is_classified() {
        let program = parse("''.normalize(true);").expect("parses");
        let outcome =
            run_differential(&program, &latest_testbeds(), &RunOptions::with_fuel(100_000));
        let CaseOutcome::Deviations(devs) = outcome else {
            panic!("expected deviations, got {outcome:?}");
        };
        assert!(devs
            .iter()
            .any(|d| d.engine == EngineName::QuickJs && d.kind == DeviationKind::Crash));
    }

    #[test]
    fn all_engines_looping_is_ignored() {
        let program = parse("while (true) {}").expect("parses");
        let outcome = run_differential(&program, &latest_testbeds(), &RunOptions::with_fuel(5_000));
        assert!(matches!(outcome, CaseOutcome::AllTimeout));
    }

    #[test]
    fn majority_requires_strict_majority() {
        use Signature::*;
        let even = vec![
            Completed("a".into()),
            Completed("a".into()),
            Completed("b".into()),
            Completed("b".into()),
        ];
        assert_eq!(majority_signature(&even), None);
        let clear = vec![
            Completed("a".into()),
            Completed("a".into()),
            Completed("a".into()),
            Completed("b".into()),
        ];
        assert_eq!(majority_signature(&clear), Some(Completed("a".into())));
    }

    #[test]
    fn display_renders_filter_labels() {
        assert_eq!(Signature::Timeout.to_string(), "Timeout");
        assert_eq!(Signature::Crash.to_string(), "Crash");
        assert_eq!(Signature::Threw(None).to_string(), "throw");
        assert_eq!(Signature::Threw(Some(ErrorKind::Type)).to_string(), "TypeError");
        assert_eq!(Signature::Completed("hi\n".into()).to_string(), "output \"hi\\n\"");
        assert_eq!(DeviationKind::Timeout.to_string(), "TimeOut");
        assert_eq!(DeviationKind::WrongOutput.to_string(), "WrongOutput");
        // The deprecated helper stays behaviour-compatible.
        #[allow(deprecated)]
        {
            assert_eq!(Signature::Timeout.describe(), Signature::Timeout.to_string());
        }
    }

    #[test]
    fn quorum_voting_ignores_quarantined_slots() {
        // 4 normal testbeds; slot 0 quarantined, remaining three agree.
        let beds = latest_testbeds().into_iter().take(4).collect::<Vec<_>>();
        let sig = |s: &str| Signature::Completed(s.into());
        let sigs = vec![None, Some(sig("a")), Some(sig("a")), Some(sig("a"))];
        let (outcome, groups) = vote_on_signatures_quorum(&beds, &sigs, &QuorumPolicy::default());
        assert!(matches!(outcome, CaseOutcome::Pass), "{outcome:?}");
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].present, 3);
        assert_eq!(groups[0].total, 4);
        assert!(groups[0].voted && groups[0].degraded());
    }

    #[test]
    fn quorum_voting_flags_deviant_among_survivors() {
        let beds = latest_testbeds().into_iter().take(4).collect::<Vec<_>>();
        let sig = |s: &str| Signature::Completed(s.into());
        let sigs = vec![None, Some(sig("a")), Some(sig("a")), Some(sig("b"))];
        let (outcome, _) = vote_on_signatures_quorum(&beds, &sigs, &QuorumPolicy::default());
        let CaseOutcome::Deviations(devs) = outcome else {
            panic!("expected deviations");
        };
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].engine, beds[3].engine.name());
    }

    #[test]
    fn below_quorum_group_does_not_vote() {
        let beds = latest_testbeds().into_iter().take(3).collect::<Vec<_>>();
        let sigs = vec![None, None, Some(Signature::Completed("a".into()))];
        let (outcome, groups) =
            vote_on_signatures_quorum(&beds, &sigs, &QuorumPolicy { min_voters: 2 });
        assert!(matches!(outcome, CaseOutcome::NoQuorum), "{outcome:?}");
        assert!(!groups[0].voted);
        // With every voter quarantined the outcome is also NoQuorum.
        let none = vec![None, None, None];
        let (outcome, _) = vote_on_signatures_quorum(&beds, &none, &QuorumPolicy::default());
        assert!(matches!(outcome, CaseOutcome::NoQuorum));
    }

    #[test]
    fn legacy_threshold_matches_historical_voting() {
        let beds = latest_testbeds();
        let chunk = compile(&parse("print(1 + 1);").expect("parses"));
        let sigs: Vec<Option<Signature>> = beds
            .iter()
            .map(|t| {
                let r = t.run_compiled(&chunk, &RunOptions::with_fuel(100_000));
                Some(Signature::of(&r.status, &r.output))
            })
            .collect();
        let (outcome, groups) = vote_on_signatures_quorum(&beds, &sigs, &QuorumPolicy::LEGACY);
        assert!(matches!(outcome, CaseOutcome::Pass));
        assert!(groups.iter().all(|g| g.voted && !g.degraded()));
    }

    #[test]
    fn classification_matrix() {
        use DeviationKind as K;
        use Signature as S;
        let done = S::Completed("x".into());
        let threw = S::Threw(Some(ErrorKind::Type));
        assert_eq!(K::classify(&S::Crash, &done), K::Crash);
        assert_eq!(K::classify(&S::Timeout, &done), K::Timeout);
        assert_eq!(K::classify(&threw, &done), K::UnexpectedError);
        assert_eq!(K::classify(&done, &threw), K::MissingError);
        assert_eq!(K::classify(&S::Completed("y".into()), &done), K::WrongOutput);
    }
}
