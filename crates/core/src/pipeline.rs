//! The user-facing COMFORT facade.
//!
//! [`Comfort`] wires the whole pipeline of Figure 3 together: GPT-2-style
//! program generation → ECMA-262-guided test data → differential testing →
//! reduction → identical-bug filtering, behind one small API. Budgets are
//! executed by the sharded parallel executor
//! ([`ShardedCampaign`](crate::executor::ShardedCampaign)); with the default
//! `shard_cases = 0` the plan is a single shard, so reports are bit-identical
//! to the legacy serial pipeline at every `threads` setting.

use comfort_lm::GeneratorConfig;
use comfort_telemetry::{CampaignMetrics, ProgressHandle, SinkHandle};

use crate::campaign::{BugReport, CampaignConfig, ConfigError};
use crate::checkpoint::{CheckpointError, ResumeInfo};
use crate::datagen::DataGenConfig;
use crate::executor::ShardedCampaign;
use crate::resilience::{CancelToken, ChaosConfig, ExecPolicy, TestbedHealth};
use crate::session::CampaignSession;

/// Facade configuration (a curated subset of [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct ComfortConfig {
    /// Master seed.
    pub seed: u64,
    /// LM training-corpus size.
    pub corpus_programs: usize,
    /// Language-model configuration.
    pub lm: GeneratorConfig,
    /// Fuel per engine run.
    pub fuel: u64,
    /// Run the strict testbed group too.
    pub strict_testbeds: bool,
    /// Reduce bug-exposing cases before reporting.
    pub reduce: bool,
    /// Worker threads for campaign execution. `0` (the default) uses all
    /// available parallelism; `1` is the legacy serial executor. Reports are
    /// bit-identical at every thread count.
    pub threads: usize,
    /// Cases per shard. `0` (the default) runs the whole budget as a single
    /// shard, which reproduces the legacy serial case stream exactly.
    pub shard_cases: usize,
    /// Telemetry sink receiving the run's typed event stream (JSONL-ready;
    /// see `comfort_telemetry`). Defaults to the discarding `NullSink`.
    pub sink: SinkHandle,
    /// Execution-hardening policy (isolation, retry, quarantine, quorum).
    pub exec: ExecPolicy,
    /// Optional seeded fault injection over selected testbeds.
    pub chaos: Option<ChaosConfig>,
    /// Cooperative-shutdown token, shared with every shard the run spawns.
    pub cancel: CancelToken,
    /// Optional wall-clock budget per budgeted run.
    pub deadline: Option<std::time::Duration>,
    /// Write-ahead checkpoint journal path; enables crash-safe resume via
    /// [`Comfort::run_budgeted_resumable`].
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for ComfortConfig {
    fn default() -> Self {
        ComfortConfig {
            seed: 42,
            corpus_programs: 120,
            lm: GeneratorConfig { order: 8, bpe_merges: 250, top_k: 10, max_tokens: 1000 },
            fuel: 300_000,
            strict_testbeds: false,
            reduce: true,
            threads: 0,
            shard_cases: 0,
            sink: SinkHandle::null(),
            exec: ExecPolicy::default(),
            chaos: None,
            cancel: CancelToken::new(),
            deadline: None,
            checkpoint: None,
        }
    }
}

impl ComfortConfig {
    /// Starts a validated builder over the facade configuration.
    ///
    /// ```
    /// use comfort_core::pipeline::ComfortConfig;
    ///
    /// let config = ComfortConfig::builder()
    ///     .seed(7)
    ///     .threads(4)
    ///     .shard_cases(50)
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(config.seed, 7);
    /// ```
    pub fn builder() -> ComfortConfigBuilder {
        ComfortConfigBuilder { config: ComfortConfig::default() }
    }
}

/// Chainable builder for [`ComfortConfig`]; `build` validates the result.
#[derive(Debug, Clone)]
pub struct ComfortConfigBuilder {
    config: ComfortConfig,
}

impl ComfortConfigBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the LM training-corpus size.
    pub fn corpus_programs(mut self, n: usize) -> Self {
        self.config.corpus_programs = n;
        self
    }

    /// Sets the language-model configuration.
    pub fn lm(mut self, lm: GeneratorConfig) -> Self {
        self.config.lm = lm;
        self
    }

    /// Sets the fuel budget per engine run.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.config.fuel = fuel;
        self
    }

    /// Enables or disables the strict testbed group.
    pub fn strict_testbeds(mut self, on: bool) -> Self {
        self.config.strict_testbeds = on;
        self
    }

    /// Enables or disables test-case reduction.
    pub fn reduce(mut self, on: bool) -> Self {
        self.config.reduce = on;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the per-shard case budget (`0` = single shard).
    pub fn shard_cases(mut self, cases: usize) -> Self {
        self.config.shard_cases = cases;
        self
    }

    /// Sets the telemetry sink for the run's event stream.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.config.sink = sink;
        self
    }

    /// Sets the execution-hardening policy.
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.config.exec = exec;
        self
    }

    /// Enables seeded fault injection over selected testbeds.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Installs a cooperative-shutdown token (cancel it from any thread to
    /// drain in-flight shards, checkpoint, and return an interrupted report).
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Sets a wall-clock budget per budgeted run.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Sets the write-ahead checkpoint journal path (crash-safe resume).
    pub fn checkpoint_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint = Some(path.into());
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ComfortConfig, ConfigError> {
        if self.config.fuel == 0 {
            return Err(ConfigError::ZeroFuel);
        }
        if self.config.corpus_programs == 0 {
            return Err(ConfigError::EmptyCorpus);
        }
        if self.config.chaos.as_ref().is_some_and(|chaos| !chaos.plan.rates_valid()) {
            return Err(ConfigError::InvalidFaultPlan);
        }
        Ok(self.config)
    }
}

/// Result of a budgeted run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Test cases executed.
    pub cases_run: u64,
    /// Unique deviations reported (post-reduction, post-dedup).
    pub deviations: Vec<BugReport>,
    /// Simulated testing hours consumed.
    pub sim_hours: f64,
    /// Observations discarded as duplicates of known bugs.
    pub duplicates_filtered: u64,
    /// Per-stage counters and histograms for the run (merged across shards).
    pub metrics: CampaignMetrics,
    /// Per-testbed health ledger (fault counts, quarantine state).
    pub health: Vec<TestbedHealth>,
    /// The run was interrupted (cancel token or deadline) before finishing
    /// its budget.
    pub interrupted: bool,
    /// Resume provenance when the run picked up a checkpoint journal.
    pub resume: Option<ResumeInfo>,
}

/// The COMFORT pipeline, ready to fuzz.
pub struct Comfort {
    config: ComfortConfig,
    runs: u64,
    progress: ProgressHandle,
}

impl Comfort {
    /// Builds the pipeline (does not train yet; training happens per run so
    /// each budgeted run is a pure function of the seed and budget).
    pub fn new(config: ComfortConfig) -> Self {
        Comfort { config, runs: 0, progress: ProgressHandle::new() }
    }

    /// Live progress for the run in flight: poll it from another thread for
    /// cases done, bugs found, and per-shard throughput. The handle stays
    /// valid across `run_budgeted` calls (each run resets its counters).
    pub fn progress(&self) -> ProgressHandle {
        self.progress.clone()
    }

    /// Runs a `cases`-sized fuzzing budget and reports unique deviations.
    ///
    /// The budget is split into shards per `shard_cases` and executed on a
    /// `threads`-wide worker pool; the report is bit-identical regardless of
    /// thread count.
    pub fn run_budgeted(&mut self, cases: usize) -> PipelineReport {
        let mut executor = self.executor_for(cases);
        executor.attach_progress(self.progress.clone());
        Self::pipeline_report(executor.run_with_threads(self.config.threads))
    }

    /// Like [`Comfort::run_budgeted`], but resumes from the configured
    /// checkpoint journal when one exists: salvaged shards are fed straight
    /// into the merge and only missing shards re-run, yielding a report
    /// bit-identical to an uninterrupted run.
    ///
    /// Fails if the config has no checkpoint path, or if the journal on disk
    /// belongs to a different configuration (fingerprint mismatch).
    ///
    /// Deprecated: build a
    /// [`CampaignSession`](crate::session::CampaignSession) over a full
    /// [`CampaignConfig`] instead
    /// (`CampaignSession::new(config).checkpoint(path).run()`). This
    /// wrapper delegates to the same machinery and is proven bit-identical
    /// to the session path by test.
    #[deprecated(note = "use CampaignSession::new(config).checkpoint(path).run() instead")]
    pub fn run_budgeted_resumable(
        &mut self,
        cases: usize,
    ) -> Result<PipelineReport, CheckpointError> {
        let session = self.session_for(cases);
        if session.config().checkpoint.is_none() {
            // The session treats a checkpoint-less run as fresh; this
            // legacy entry point always required a journal path.
            return Err(CheckpointError::NoCheckpointPath);
        }
        session.run().map(Self::pipeline_report)
    }

    fn executor_for(&mut self, cases: usize) -> ShardedCampaign {
        ShardedCampaign::new(self.campaign_config_for(cases))
    }

    fn session_for(&mut self, cases: usize) -> CampaignSession {
        let config = self.campaign_config_for(cases);
        CampaignSession::new(config).share_progress(self.progress.clone())
    }

    /// Lowers the facade config into a full [`CampaignConfig`] for one
    /// budgeted run (each run advances the seed so runs stay independent).
    fn campaign_config_for(&mut self, cases: usize) -> CampaignConfig {
        let campaign_config = CampaignConfig {
            seed: self.config.seed.wrapping_add(self.runs),
            corpus_programs: self.config.corpus_programs,
            lm: self.config.lm.clone(),
            datagen: DataGenConfig::default(),
            max_cases: cases,
            fuel: self.config.fuel,
            backend: comfort_engines::Backend::default(),
            sim_seconds_per_case: 2.88,
            include_strict: self.config.strict_testbeds,
            include_legacy: false,
            reduce_cases: self.config.reduce,
            keep_invalid_fraction: 0.2,
            threads: self.config.threads,
            shard_cases: self.config.shard_cases,
            sink: self.config.sink.clone(),
            exec: self.config.exec.clone(),
            chaos: self.config.chaos.clone(),
            cancel: self.config.cancel.clone(),
            deadline: self.config.deadline,
            checkpoint: self.config.checkpoint.clone(),
        };
        self.runs += 1;
        campaign_config
    }

    fn pipeline_report(report: crate::campaign::CampaignReport) -> PipelineReport {
        PipelineReport {
            cases_run: report.cases_run,
            deviations: report.bugs,
            sim_hours: report.sim_hours,
            duplicates_filtered: report.duplicates_filtered,
            metrics: report.metrics,
            health: report.health,
            interrupted: report.interrupted,
            resume: report.resume,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_a_small_budget() {
        let mut comfort = Comfort::new(ComfortConfig {
            corpus_programs: 80,
            lm: GeneratorConfig { order: 8, bpe_merges: 150, top_k: 10, max_tokens: 600 },
            reduce: false,
            ..ComfortConfig::default()
        });
        let report = comfort.run_budgeted(60);
        assert_eq!(report.cases_run, 60);
        assert!(report.sim_hours > 0.0);
    }

    #[test]
    fn facade_builder_validates() {
        assert!(matches!(ComfortConfig::builder().fuel(0).build(), Err(ConfigError::ZeroFuel)));
        assert!(matches!(
            ComfortConfig::builder().corpus_programs(0).build(),
            Err(ConfigError::EmptyCorpus)
        ));
        let config = ComfortConfig::builder().threads(2).build().expect("valid");
        assert_eq!(config.threads, 2);
    }
}
