//! The user-facing COMFORT facade.
//!
//! [`Comfort`] wires the whole pipeline of Figure 3 together: GPT-2-style
//! program generation → ECMA-262-guided test data → differential testing →
//! reduction → identical-bug filtering, behind one small API.

use comfort_lm::GeneratorConfig;

use crate::campaign::{BugReport, Campaign, CampaignConfig};
use crate::datagen::DataGenConfig;

/// Facade configuration (a curated subset of [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct ComfortConfig {
    /// Master seed.
    pub seed: u64,
    /// LM training-corpus size.
    pub corpus_programs: usize,
    /// Language-model configuration.
    pub lm: GeneratorConfig,
    /// Fuel per engine run.
    pub fuel: u64,
    /// Run the strict testbed group too.
    pub strict_testbeds: bool,
    /// Reduce bug-exposing cases before reporting.
    pub reduce: bool,
}

impl Default for ComfortConfig {
    fn default() -> Self {
        ComfortConfig {
            seed: 42,
            corpus_programs: 120,
            lm: GeneratorConfig { order: 8, bpe_merges: 250, top_k: 10, max_tokens: 1000 },
            fuel: 300_000,
            strict_testbeds: false,
            reduce: true,
        }
    }
}

/// Result of a budgeted run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Test cases executed.
    pub cases_run: u64,
    /// Unique deviations reported (post-reduction, post-dedup).
    pub deviations: Vec<BugReport>,
    /// Simulated testing hours consumed.
    pub sim_hours: f64,
    /// Observations discarded as duplicates of known bugs.
    pub duplicates_filtered: u64,
}

/// The COMFORT pipeline, ready to fuzz.
pub struct Comfort {
    config: ComfortConfig,
    runs: u64,
}

impl Comfort {
    /// Builds the pipeline (does not train yet; training happens per run so
    /// each budgeted run is a pure function of the seed and budget).
    pub fn new(config: ComfortConfig) -> Self {
        Comfort { config, runs: 0 }
    }

    /// Runs a `cases`-sized fuzzing budget and reports unique deviations.
    pub fn run_budgeted(&mut self, cases: usize) -> PipelineReport {
        let campaign_config = CampaignConfig {
            seed: self.config.seed.wrapping_add(self.runs),
            corpus_programs: self.config.corpus_programs,
            lm: self.config.lm.clone(),
            datagen: DataGenConfig::default(),
            max_cases: cases,
            fuel: self.config.fuel,
            sim_seconds_per_case: 2.88,
            include_strict: self.config.strict_testbeds,
            include_legacy: false,
            reduce_cases: self.config.reduce,
            keep_invalid_fraction: 0.2,
        };
        self.runs += 1;
        let report = Campaign::new(campaign_config).run();
        PipelineReport {
            cases_run: report.cases_run,
            deviations: report.bugs,
            sim_hours: report.sim_hours,
            duplicates_filtered: report.duplicates_filtered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_a_small_budget() {
        let mut comfort = Comfort::new(ComfortConfig {
            corpus_programs: 80,
            lm: GeneratorConfig { order: 8, bpe_merges: 150, top_k: 10, max_tokens: 600 },
            reduce: false,
            ..ComfortConfig::default()
        });
        let report = comfort.run_budgeted(60);
        assert_eq!(report.cases_run, 60);
        assert!(report.sim_hours > 0.0);
    }
}
