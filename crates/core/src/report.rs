//! Table/figure rendering: regenerates every table and figure of the
//! paper's evaluation section from campaign data (see DESIGN.md §3 for the
//! experiment index).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use comfort_engines::{all_versions, quota, ApiType, Component, EngineName};

use crate::campaign::CampaignReport;
use crate::compare::FuzzerSeries;
use crate::quality::QualityReport;
use crate::testcase::Origin;

fn row(out: &mut String, cells: &[&str], widths: &[usize]) {
    for (cell, w) in cells.iter().zip(widths) {
        let _ = write!(out, "{cell:<w$}  ");
    }
    out.push('\n');
}

/// **Table 1** — the engine/version inventory.
pub fn table1() -> String {
    let mut out = String::from("Table 1: JS engines under test\n");
    let widths = [14, 24, 16, 12, 10];
    row(&mut out, &["Engine", "Version", "Build", "Released", "ES spec"], &widths);
    for v in all_versions() {
        row(
            &mut out,
            &[v.engine.as_str(), v.version, v.build, v.release, v.edition.as_str()],
            &widths,
        );
    }
    let _ = writeln!(out, "total configurations: {}", all_versions().len());
    out
}

/// **Table 2** — per-engine bug statistics.
pub fn table2(report: &CampaignReport) -> String {
    let mut out = String::from("Table 2: bug statistics per tested JS engine\n");
    let widths = [14, 10, 10, 8, 16, 14];
    row(
        &mut out,
        &["Engine", "#Submitted", "#Verified", "#Fixed", "#Acc. by Test262", "(paper #Subm.)"],
        &widths,
    );
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for engine in EngineName::ALL {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.key.engine == engine).collect();
        let submitted = bugs.len();
        let verified = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        let t262 = bugs.iter().filter(|b| b.adjudication.accepted_test262).count();
        totals.0 += submitted;
        totals.1 += verified;
        totals.2 += fixed;
        totals.3 += t262;
        row(
            &mut out,
            &[
                engine.as_str(),
                &submitted.to_string(),
                &verified.to_string(),
                &fixed.to_string(),
                &t262.to_string(),
                &quota(engine).to_string(),
            ],
            &widths,
        );
    }
    row(
        &mut out,
        &[
            "Total",
            &totals.0.to_string(),
            &totals.1.to_string(),
            &totals.2.to_string(),
            &totals.3.to_string(),
            "158",
        ],
        &widths,
    );
    out
}

/// **Table 3** — bugs per engine *version* (earliest-version attribution).
pub fn table3(report: &CampaignReport) -> String {
    let mut out = String::from("Table 3: bugs found per JS engine version\n");
    let widths = [14, 28, 10, 10, 8, 6];
    row(&mut out, &["Engine", "Version", "#Submitted", "#Verified", "#Fixed", "#New"], &widths);
    let mut by_version: BTreeMap<(EngineName, String), Vec<&crate::campaign::BugReport>> =
        BTreeMap::new();
    for b in &report.bugs {
        by_version.entry((b.key.engine, b.earliest_version.clone())).or_default().push(b);
    }
    let mut total = 0;
    for engine in EngineName::ALL {
        for ((_, version), bugs) in by_version.iter().filter(|((e, _), _)| *e == engine) {
            let verified = bugs.iter().filter(|b| b.adjudication.verified).count();
            let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
            let new = bugs.iter().filter(|b| b.adjudication.novel).count();
            total += bugs.len();
            let version_label = version.strip_prefix(&format!("{engine} ")).unwrap_or(version);
            row(
                &mut out,
                &[
                    engine.as_str(),
                    version_label,
                    &bugs.len().to_string(),
                    &verified.to_string(),
                    &fixed.to_string(),
                    &new.to_string(),
                ],
                &widths,
            );
        }
    }
    let _ = writeln!(out, "total: {total}");
    out
}

/// **Table 4** — bugs by discovery mechanism.
pub fn table4(report: &CampaignReport) -> String {
    let mut out = String::from("Table 4: bug statistics per generation mechanism\n");
    let widths = [28, 10, 10, 8, 16];
    row(&mut out, &["Category", "#Submitted", "#Confirmed", "#Fixed", "#Acc. by Test262"], &widths);
    for origin in [Origin::ProgramGen, Origin::EcmaMutation] {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.origin == origin).collect();
        let confirmed = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        let t262 = bugs.iter().filter(|b| b.adjudication.accepted_test262).count();
        row(
            &mut out,
            &[
                origin.as_str(),
                &bugs.len().to_string(),
                &confirmed.to_string(),
                &fixed.to_string(),
                &t262.to_string(),
            ],
            &widths,
        );
    }
    out
}

/// **Table 5** — top buggy object types.
pub fn table5(report: &CampaignReport) -> String {
    let mut out = String::from("Table 5: statistics on buggy object types\n");
    let widths = [14, 10, 10, 8];
    row(&mut out, &["API Type", "#Submitted", "#Confirmed", "#Fixed"], &widths);
    let mut counts: BTreeMap<&'static str, (usize, usize, usize)> = BTreeMap::new();
    for b in &report.bugs {
        if b.api_type == ApiType::NonApi {
            continue;
        }
        let slot = counts.entry(b.api_type.as_str()).or_default();
        slot.0 += 1;
        if b.adjudication.verified {
            slot.1 += 1;
        }
        if b.adjudication.fixed {
            slot.2 += 1;
        }
    }
    let mut rows: Vec<_> = counts.into_iter().collect();
    rows.sort_by_key(|(_, (s, _, _))| std::cmp::Reverse(*s));
    let mut totals = (0, 0, 0);
    for (ty, (s, c, f)) in rows.iter().take(10) {
        totals.0 += s;
        totals.1 += c;
        totals.2 += f;
        row(&mut out, &[ty, &s.to_string(), &c.to_string(), &f.to_string()], &widths);
    }
    row(
        &mut out,
        &["Total", &totals.0.to_string(), &totals.1.to_string(), &totals.2.to_string()],
        &widths,
    );
    out
}

/// **Figure 7** — bugs per affected compiler component (plus strict-only).
pub fn figure7(report: &CampaignReport) -> String {
    let mut out = String::from("Figure 7: bugs per compiler component\n");
    let widths = [16, 10, 10, 8];
    row(&mut out, &["Component", "#Submitted", "#Confirmed", "#Fixed"], &widths);
    for component in Component::ALL {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.component == component).collect();
        let confirmed = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        row(
            &mut out,
            &[
                component.as_str(),
                &bugs.len().to_string(),
                &confirmed.to_string(),
                &fixed.to_string(),
            ],
            &widths,
        );
    }
    let strict_only = report.bugs.iter().filter(|b| b.strict_only).count();
    let _ = writeln!(out, "Strict-mode-only bugs: {strict_only}");
    out
}

/// **Stage metrics** — the per-stage counter table from the campaign's
/// embedded telemetry (`CampaignMetrics`): invocations, items, logical
/// cost, and wall-clock time per pipeline stage, plus the funnel counters.
pub fn stage_metrics(report: &CampaignReport) -> String {
    use comfort_telemetry::Stage;
    let m = &report.metrics;
    let mut out = String::from("Stage metrics: pipeline counters per stage\n");
    let widths = [14, 12, 10, 14, 12];
    row(&mut out, &["Stage", "Invocations", "Items", "Logical cost", "Wall (ms)"], &widths);
    for stage in Stage::ALL {
        let s = m.stage(stage);
        row(
            &mut out,
            &[
                stage.as_str(),
                &s.invocations.to_string(),
                &s.items.to_string(),
                &s.logical_cost.to_string(),
                &format!("{:.1}", s.wall_nanos as f64 / 1e6),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "funnel: {} generated, {} rejected, {} run → {} deviations → {} bugs (+{} deduped) \
         across {} shard(s)",
        m.cases_generated,
        m.cases_rejected,
        m.cases_run,
        m.deviations_observed,
        m.bugs_reported,
        m.bugs_deduped,
        m.shards
    );
    out
}

/// **Health report** — the per-testbed fault ledger from the hardened
/// execution layer: successful runs, fault counts by kind, retries, and
/// quarantine state (see DESIGN.md §9).
pub fn health_report(report: &CampaignReport) -> String {
    let mut out = String::from("Testbed health: faults, retries, and quarantine per testbed\n");
    let widths = [30, 8, 7, 6, 10, 6, 8, 8, 7, 12];
    row(
        &mut out,
        &[
            "Testbed",
            "Runs OK",
            "Panics",
            "Hangs",
            "Transient",
            "Trunc",
            "Retries",
            "Skipped",
            "Reinst",
            "State",
        ],
        &widths,
    );
    let mut total_faults = 0u64;
    let mut quarantined = 0usize;
    for h in &report.health {
        total_faults += h.faults();
        let state = if h.quarantined { "QUARANTINED" } else { "healthy" };
        if h.quarantined {
            quarantined += 1;
        }
        row(
            &mut out,
            &[
                &h.label,
                &h.runs_ok.to_string(),
                &h.panics.to_string(),
                &h.hangs.to_string(),
                &h.transients_exhausted.to_string(),
                &h.outputs_truncated.to_string(),
                &h.retries.to_string(),
                &h.runs_skipped.to_string(),
                &h.reinstatements.to_string(),
                state,
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "total: {} fault(s) observed across {} testbed(s), {} quarantined",
        total_faults,
        report.health.len(),
        quarantined
    );
    out
}

/// **Resume report** — how a checkpointed campaign recovered: shards
/// salvaged from the journal vs. re-run, bytes dropped from a torn tail,
/// and fresh checkpoints written (see DESIGN.md §10).
pub fn resume_report(report: &CampaignReport) -> String {
    let mut out = String::from("Campaign durability: checkpoint & resume\n");
    let Some(resume) = &report.resume else {
        out.push_str("(fresh run: no journal was resumed)\n");
        if report.interrupted {
            out.push_str("status: INTERRUPTED before the case budget completed\n");
        }
        return out;
    };
    let widths = [26, 44];
    row(&mut out, &["Resumed from", &resume.resumed_from], &widths);
    row(
        &mut out,
        &["Shards salvaged", &format!("{} of {}", resume.shards_salvaged, resume.shards_total)],
        &widths,
    );
    row(&mut out, &["Shards re-run", &resume.shards_rerun.to_string()], &widths);
    row(&mut out, &["Dropped tail bytes", &resume.dropped_tail_bytes.to_string()], &widths);
    row(&mut out, &["Checkpoints written", &resume.checkpoints_written.to_string()], &widths);
    let status = if report.interrupted { "INTERRUPTED" } else { "complete" };
    row(&mut out, &["Status", status], &widths);
    out
}

/// **Figure 8** — fuzzer comparison over the testing budget.
pub fn figure8(series: &[FuzzerSeries]) -> String {
    let mut out = String::from(
        "Figure 8: unique bugs per fuzzer (equal budgets; confirm/fix window applied)\n",
    );
    let widths = [16, 8, 10, 8, 10];
    row(&mut out, &["Fuzzer", "#Bugs", "#Confirmed", "#Fixed", "#Exclusive"], &widths);
    for s in series {
        row(
            &mut out,
            &[
                &s.name,
                &s.unique_bugs.to_string(),
                &s.confirmed.to_string(),
                &s.fixed.to_string(),
                &s.exclusive.to_string(),
            ],
            &widths,
        );
    }
    out.push_str("\nDiscovery timeline (hours → cumulative unique bugs):\n");
    for s in series {
        let pts: Vec<String> = s.discoveries.iter().map(|(h, n)| format!("{h:.1}h:{n}")).collect();
        let _ = writeln!(out, "  {:<16} {}", s.name, pts.join(" "));
    }
    out
}

/// **Figure 9** — syntax validity + coverage per fuzzer.
pub fn figure9(reports: &[QualityReport]) -> String {
    let mut out = String::from("Figure 9: test-case quality per fuzzer\n");
    let widths = [16, 12, 12, 10, 10, 10];
    row(
        &mut out,
        &["Fuzzer", "#Generated", "Syntax pass", "Stmt cov", "Func cov", "Branch cov"],
        &widths,
    );
    let pct = |v: f64| if v.is_nan() { "n/a".to_string() } else { format!("{:.1}%", v * 100.0) };
    for q in reports {
        row(
            &mut out,
            &[
                &q.fuzzer,
                &q.generated.to_string(),
                &pct(q.syntax_pass_rate),
                &pct(q.stmt_coverage),
                &pct(q.func_coverage),
                &pct(q.branch_coverage),
            ],
            &widths,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Adjudication, BugReport};
    use crate::differential::DeviationKind;
    use crate::filter::BugKey;

    fn fake_report() -> CampaignReport {
        let mk = |engine: EngineName, api: &str, origin: Origin| BugReport {
            key: BugKey { engine, api: Some(api.to_string()), behavior: "WrongOutput".into() },
            sim_hours: 1.0,
            test_case: "print(1);".into(),
            origin,
            earliest_version: "v1".into(),
            kind: DeviationKind::WrongOutput,
            strict_only: false,
            component: Component::Implementation,
            api_type: ApiType::String,
            matched_bug: None,
            adjudication: Adjudication {
                verified: true,
                fixed: true,
                rejected: false,
                accepted_test262: false,
                novel: true,
            },
        };
        CampaignReport {
            cases_run: 10,
            bugs: vec![
                mk(EngineName::Rhino, "substr", Origin::EcmaMutation),
                mk(EngineName::V8, "slice", Origin::ProgramGen),
            ],
            ..CampaignReport::default()
        }
    }

    #[test]
    fn table1_lists_51_rows() {
        let t = table1();
        assert!(t.contains("total configurations: 51"));
        assert!(t.contains("Rhino"));
        assert!(t.contains("ES2015"));
    }

    #[test]
    fn table2_has_all_engines_and_totals() {
        let t = table2(&fake_report());
        for e in EngineName::ALL {
            assert!(t.contains(e.as_str()), "missing {e}");
        }
        assert!(t.contains("Total"));
    }

    #[test]
    fn tables_render_without_panicking() {
        let r = fake_report();
        assert!(table3(&r).contains("Rhino"));
        assert!(table4(&r).contains("ECMA-262"));
        assert!(table5(&r).contains("String"));
        assert!(figure7(&r).contains("Implementation"));
    }

    #[test]
    fn stage_metrics_renders_every_stage_and_the_funnel() {
        let mut r = fake_report();
        r.metrics.cases_run = 10;
        r.metrics.bugs_reported = 2;
        r.metrics.stage_mut(comfort_telemetry::Stage::Differential).record(100, 100, 2_000_000);
        let t = stage_metrics(&r);
        for stage in comfort_telemetry::Stage::ALL {
            assert!(t.contains(stage.as_str()), "missing {stage}");
        }
        assert!(t.contains("funnel: "));
        assert!(t.contains("2 bugs"));
    }
}
