//! Table/figure rendering: regenerates every table and figure of the
//! paper's evaluation section from campaign data (see DESIGN.md §3 for the
//! experiment index).
//!
//! All renderers go through one [`Table`] builder so every plain-text
//! report in the workspace (paper tables, stage metrics, testbed health,
//! resume, and the `comfort-bench` bench/diff reports) shares one layout.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use comfort_engines::{all_versions, quota, ApiType, Component, EngineName};

use crate::campaign::CampaignReport;
use crate::compare::FuzzerSeries;
use crate::quality::QualityReport;
use crate::testcase::Origin;

/// Fixed-width plain-text table: the one table-builder every report
/// renderer in the workspace goes through.
///
/// Each cell is left-aligned, padded to its column width, and followed by
/// two spaces; free-form [`text`] lines carry footers and annotations.
///
/// [`text`]: Table::text
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    widths: Vec<usize>,
    lines: Vec<Line>,
}

#[derive(Debug, Clone)]
enum Line {
    Row(Vec<String>),
    Text(String),
}

impl Table {
    /// Creates a table with a title line and fixed column widths.
    pub fn new(title: impl Into<String>, widths: &[usize]) -> Self {
        Table { title: title.into(), widths: widths.to_vec(), lines: Vec::new() }
    }

    /// Appends one row of cells. Cells beyond the configured column count
    /// render unpadded.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.lines.push(Line::Row(cells.iter().map(|c| c.to_string()).collect()));
        self
    }

    /// Appends a free-form text line (totals, footers, annotations).
    pub fn text(&mut self, line: impl Into<String>) -> &mut Self {
        self.lines.push(Line::Text(line.into()));
        self
    }

    /// Renders the table as plain text (title first, one line per row).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&self.title);
        out.push('\n');
        for line in &self.lines {
            match line {
                Line::Row(cells) => {
                    for (i, cell) in cells.iter().enumerate() {
                        let w = self.widths.get(i).copied().unwrap_or(0);
                        let _ = write!(out, "{cell:<w$}  ");
                    }
                    out.push('\n');
                }
                Line::Text(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// **Table 1** — the engine/version inventory.
pub fn table1() -> String {
    let mut t = Table::new("Table 1: JS engines under test", &[14, 24, 16, 12, 10]);
    t.row(&["Engine", "Version", "Build", "Released", "ES spec"]);
    for v in all_versions() {
        t.row(&[v.engine.as_str(), v.version, v.build, v.release, v.edition.as_str()]);
    }
    t.text(format!("total configurations: {}", all_versions().len()));
    t.render()
}

/// **Table 2** — per-engine bug statistics.
pub fn table2(report: &CampaignReport) -> String {
    let mut t =
        Table::new("Table 2: bug statistics per tested JS engine", &[14, 10, 10, 8, 16, 14]);
    t.row(&["Engine", "#Submitted", "#Verified", "#Fixed", "#Acc. by Test262", "(paper #Subm.)"]);
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for engine in EngineName::ALL {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.key.engine == engine).collect();
        let submitted = bugs.len();
        let verified = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        let t262 = bugs.iter().filter(|b| b.adjudication.accepted_test262).count();
        totals.0 += submitted;
        totals.1 += verified;
        totals.2 += fixed;
        totals.3 += t262;
        t.row(&[
            engine.as_str(),
            &submitted.to_string(),
            &verified.to_string(),
            &fixed.to_string(),
            &t262.to_string(),
            &quota(engine).to_string(),
        ]);
    }
    t.row(&[
        "Total",
        &totals.0.to_string(),
        &totals.1.to_string(),
        &totals.2.to_string(),
        &totals.3.to_string(),
        "158",
    ]);
    t.render()
}

/// **Table 3** — bugs per engine *version* (earliest-version attribution).
pub fn table3(report: &CampaignReport) -> String {
    let mut t = Table::new("Table 3: bugs found per JS engine version", &[14, 28, 10, 10, 8, 6]);
    t.row(&["Engine", "Version", "#Submitted", "#Verified", "#Fixed", "#New"]);
    let mut by_version: BTreeMap<(EngineName, String), Vec<&crate::campaign::BugReport>> =
        BTreeMap::new();
    for b in &report.bugs {
        by_version.entry((b.key.engine, b.earliest_version.clone())).or_default().push(b);
    }
    let mut total = 0;
    for engine in EngineName::ALL {
        for ((_, version), bugs) in by_version.iter().filter(|((e, _), _)| *e == engine) {
            let verified = bugs.iter().filter(|b| b.adjudication.verified).count();
            let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
            let new = bugs.iter().filter(|b| b.adjudication.novel).count();
            total += bugs.len();
            let version_label = version.strip_prefix(&format!("{engine} ")).unwrap_or(version);
            t.row(&[
                engine.as_str(),
                version_label,
                &bugs.len().to_string(),
                &verified.to_string(),
                &fixed.to_string(),
                &new.to_string(),
            ]);
        }
    }
    t.text(format!("total: {total}"));
    t.render()
}

/// **Table 4** — bugs by discovery mechanism.
pub fn table4(report: &CampaignReport) -> String {
    let mut t =
        Table::new("Table 4: bug statistics per generation mechanism", &[28, 10, 10, 8, 16]);
    t.row(&["Category", "#Submitted", "#Confirmed", "#Fixed", "#Acc. by Test262"]);
    for origin in [Origin::ProgramGen, Origin::EcmaMutation] {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.origin == origin).collect();
        let confirmed = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        let t262 = bugs.iter().filter(|b| b.adjudication.accepted_test262).count();
        t.row(&[
            origin.as_str(),
            &bugs.len().to_string(),
            &confirmed.to_string(),
            &fixed.to_string(),
            &t262.to_string(),
        ]);
    }
    t.render()
}

/// **Table 5** — top buggy object types.
pub fn table5(report: &CampaignReport) -> String {
    let mut t = Table::new("Table 5: statistics on buggy object types", &[14, 10, 10, 8]);
    t.row(&["API Type", "#Submitted", "#Confirmed", "#Fixed"]);
    let mut counts: BTreeMap<&'static str, (usize, usize, usize)> = BTreeMap::new();
    for b in &report.bugs {
        if b.api_type == ApiType::NonApi {
            continue;
        }
        let slot = counts.entry(b.api_type.as_str()).or_default();
        slot.0 += 1;
        if b.adjudication.verified {
            slot.1 += 1;
        }
        if b.adjudication.fixed {
            slot.2 += 1;
        }
    }
    let mut rows: Vec<_> = counts.into_iter().collect();
    rows.sort_by_key(|(_, (s, _, _))| std::cmp::Reverse(*s));
    let mut totals = (0, 0, 0);
    for (ty, (s, c, f)) in rows.iter().take(10) {
        totals.0 += s;
        totals.1 += c;
        totals.2 += f;
        t.row(&[ty, &s.to_string(), &c.to_string(), &f.to_string()]);
    }
    t.row(&["Total", &totals.0.to_string(), &totals.1.to_string(), &totals.2.to_string()]);
    t.render()
}

/// **Figure 7** — bugs per affected compiler component (plus strict-only).
pub fn figure7(report: &CampaignReport) -> String {
    let mut t = Table::new("Figure 7: bugs per compiler component", &[16, 10, 10, 8]);
    t.row(&["Component", "#Submitted", "#Confirmed", "#Fixed"]);
    for component in Component::ALL {
        let bugs: Vec<_> = report.bugs.iter().filter(|b| b.component == component).collect();
        let confirmed = bugs.iter().filter(|b| b.adjudication.verified).count();
        let fixed = bugs.iter().filter(|b| b.adjudication.fixed).count();
        t.row(&[
            component.as_str(),
            &bugs.len().to_string(),
            &confirmed.to_string(),
            &fixed.to_string(),
        ]);
    }
    let strict_only = report.bugs.iter().filter(|b| b.strict_only).count();
    t.text(format!("Strict-mode-only bugs: {strict_only}"));
    t.render()
}

/// **Stage metrics** — the per-stage counter table from the campaign's
/// embedded telemetry (`CampaignMetrics`): invocations, items, logical
/// cost, and wall-clock time per pipeline stage, plus the funnel counters.
pub fn stage_metrics(report: &CampaignReport) -> String {
    use comfort_telemetry::Stage;
    let m = &report.metrics;
    let mut t = Table::new("Stage metrics: pipeline counters per stage", &[14, 12, 10, 14, 12]);
    t.row(&["Stage", "Invocations", "Items", "Logical cost", "Wall (ms)"]);
    for stage in Stage::ALL {
        let s = m.stage(stage);
        t.row(&[
            stage.as_str(),
            &s.invocations.to_string(),
            &s.items.to_string(),
            &s.logical_cost.to_string(),
            &format!("{:.1}", s.wall_nanos as f64 / 1e6),
        ]);
    }
    t.text(format!(
        "funnel: {} generated, {} rejected, {} run → {} deviations → {} bugs (+{} deduped) \
         across {} shard(s)",
        m.cases_generated,
        m.cases_rejected,
        m.cases_run,
        m.deviations_observed,
        m.bugs_reported,
        m.bugs_deduped,
        m.shards
    ));
    t.render()
}

/// **Health report** — the per-testbed fault ledger from the hardened
/// execution layer: successful runs, fault counts by kind, retries, and
/// quarantine state (see DESIGN.md §9).
pub fn health_report(report: &CampaignReport) -> String {
    let mut t = Table::new(
        "Testbed health: faults, retries, and quarantine per testbed",
        &[30, 8, 7, 6, 10, 6, 8, 8, 7, 12],
    );
    t.row(&[
        "Testbed",
        "Runs OK",
        "Panics",
        "Hangs",
        "Transient",
        "Trunc",
        "Retries",
        "Skipped",
        "Reinst",
        "State",
    ]);
    let mut total_faults = 0u64;
    let mut quarantined = 0usize;
    for h in &report.health {
        total_faults += h.faults();
        let state = if h.quarantined { "QUARANTINED" } else { "healthy" };
        if h.quarantined {
            quarantined += 1;
        }
        t.row(&[
            &h.label,
            &h.runs_ok.to_string(),
            &h.panics.to_string(),
            &h.hangs.to_string(),
            &h.transients_exhausted.to_string(),
            &h.outputs_truncated.to_string(),
            &h.retries.to_string(),
            &h.runs_skipped.to_string(),
            &h.reinstatements.to_string(),
            state,
        ]);
    }
    t.text(format!(
        "total: {} fault(s) observed across {} testbed(s), {} quarantined",
        total_faults,
        report.health.len(),
        quarantined
    ));
    t.render()
}

/// **Resume report** — how a checkpointed campaign recovered: shards
/// salvaged from the journal vs. re-run, bytes dropped from a torn tail,
/// and fresh checkpoints written (see DESIGN.md §10).
pub fn resume_report(report: &CampaignReport) -> String {
    let mut t = Table::new("Campaign durability: checkpoint & resume", &[26, 44]);
    let Some(resume) = &report.resume else {
        t.text("(fresh run: no journal was resumed)");
        if report.interrupted {
            t.text("status: INTERRUPTED before the case budget completed");
        }
        return t.render();
    };
    t.row(&["Resumed from", &resume.resumed_from]);
    t.row(&["Shards salvaged", &format!("{} of {}", resume.shards_salvaged, resume.shards_total)]);
    t.row(&["Shards re-run", &resume.shards_rerun.to_string()]);
    t.row(&["Dropped tail bytes", &resume.dropped_tail_bytes.to_string()]);
    t.row(&["Checkpoints written", &resume.checkpoints_written.to_string()]);
    let status = if report.interrupted { "INTERRUPTED" } else { "complete" };
    t.row(&["Status", status]);
    t.render()
}

/// **Journal inspection** — pretty-prints a checkpoint journal's header,
/// salvaged shard records, lease history, and recovery outcome. Backs
/// `comfortctl journal inspect`, the operator's first debugging tool for a
/// supervised campaign that died mid-flight.
pub fn journal_report(
    checkpoint: &crate::checkpoint::CampaignCheckpoint,
    recovery: &crate::checkpoint::RecoveryReport,
) -> String {
    use crate::checkpoint::LeaseAction;

    let mut t = Table::new("Checkpoint journal", &[26, 44]);
    t.row(&["Fingerprint", &format!("{:#018x}", checkpoint.fingerprint)]);
    t.row(&["Shards planned", &checkpoint.shards_total.to_string()]);
    t.row(&[
        "Shards salvaged",
        &format!("{} of {}", recovery.shards_salvaged, checkpoint.shards_total),
    ]);
    t.row(&["Lease records", &recovery.leases_salvaged.to_string()]);
    t.row(&["Journal bytes", &recovery.journal_bytes.to_string()]);
    t.row(&["Dropped tail bytes", &recovery.dropped_tail_bytes.to_string()]);
    if let Some(err) = &recovery.tail_error {
        t.row(&["Tail error", err]);
    }
    let mut out = t.render();

    if !checkpoint.shards.is_empty() {
        let mut shards = Table::new("Salvaged shard records", &[6, 20, 8, 10, 6, 8]);
        shards.row(&["Shard", "Seed", "Cases", "Cases run", "Bugs", "Events"]);
        for record in &checkpoint.shards {
            shards.row(&[
                &record.index.to_string(),
                &format!("{:#x}", record.seed),
                &record.cases.to_string(),
                &record.report.cases_run.to_string(),
                &record.report.bugs.len().to_string(),
                &record.events.len().to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&shards.render());
    }

    if !checkpoint.leases.is_empty() {
        let mut leases = Table::new("Lease history (journal order)", &[6, 18, 11, 6, 10, 16]);
        leases.row(&["Shard", "Worker", "Action", "Seq", "TTL ms", "Unix ms"]);
        for lease in &checkpoint.leases {
            leases.row(&[
                &lease.shard.to_string(),
                &lease.worker,
                lease.action.as_str(),
                &lease.lease_seq.to_string(),
                &lease.ttl_millis.to_string(),
                &lease.unix_millis.to_string(),
            ]);
        }
        let held = checkpoint
            .latest_leases()
            .into_iter()
            .filter(|l| {
                matches!(l.action, LeaseAction::Acquired | LeaseAction::Renewed)
                    && !checkpoint.shards.iter().any(|s| s.index == l.shard)
            })
            .map(|l| format!("{} (held by {})", l.shard, l.worker))
            .collect::<Vec<_>>();
        if held.is_empty() {
            leases.text("no shard was held when the journal stopped");
        } else {
            leases.text(format!(
                "held at journal end, no shard record — holder died mid-shard: {}",
                held.join(", ")
            ));
        }
        out.push('\n');
        out.push_str(&leases.render());
    }
    out
}

/// **Figure 8** — fuzzer comparison over the testing budget.
pub fn figure8(series: &[FuzzerSeries]) -> String {
    let mut t = Table::new(
        "Figure 8: unique bugs per fuzzer (equal budgets; confirm/fix window applied)",
        &[16, 8, 10, 8, 10],
    );
    t.row(&["Fuzzer", "#Bugs", "#Confirmed", "#Fixed", "#Exclusive"]);
    for s in series {
        t.row(&[
            &s.name,
            &s.unique_bugs.to_string(),
            &s.confirmed.to_string(),
            &s.fixed.to_string(),
            &s.exclusive.to_string(),
        ]);
    }
    t.text("\nDiscovery timeline (hours → cumulative unique bugs):");
    for s in series {
        let pts: Vec<String> = s.discoveries.iter().map(|(h, n)| format!("{h:.1}h:{n}")).collect();
        t.text(format!("  {:<16} {}", s.name, pts.join(" ")));
    }
    t.render()
}

/// **Figure 9** — syntax validity + coverage per fuzzer.
pub fn figure9(reports: &[QualityReport]) -> String {
    let mut t = Table::new("Figure 9: test-case quality per fuzzer", &[16, 12, 12, 10, 10, 10]);
    t.row(&["Fuzzer", "#Generated", "Syntax pass", "Stmt cov", "Func cov", "Branch cov"]);
    let pct = |v: f64| if v.is_nan() { "n/a".to_string() } else { format!("{:.1}%", v * 100.0) };
    for q in reports {
        t.row(&[
            &q.fuzzer,
            &q.generated.to_string(),
            &pct(q.syntax_pass_rate),
            &pct(q.stmt_coverage),
            &pct(q.func_coverage),
            &pct(q.branch_coverage),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Adjudication, BugReport};
    use crate::differential::DeviationKind;
    use crate::filter::BugKey;

    fn fake_report() -> CampaignReport {
        let mk = |engine: EngineName, api: &str, origin: Origin| BugReport {
            key: BugKey { engine, api: Some(api.to_string()), behavior: "WrongOutput".into() },
            sim_hours: 1.0,
            test_case: "print(1);".into(),
            origin,
            earliest_version: "v1".into(),
            kind: DeviationKind::WrongOutput,
            strict_only: false,
            component: Component::Implementation,
            api_type: ApiType::String,
            matched_bug: None,
            adjudication: Adjudication {
                verified: true,
                fixed: true,
                rejected: false,
                accepted_test262: false,
                novel: true,
            },
        };
        CampaignReport {
            cases_run: 10,
            bugs: vec![
                mk(EngineName::Rhino, "substr", Origin::EcmaMutation),
                mk(EngineName::V8, "slice", Origin::ProgramGen),
            ],
            ..CampaignReport::default()
        }
    }

    #[test]
    fn table_builder_pads_and_orders_lines() {
        let mut t = Table::new("T: demo", &[4, 3]);
        t.row(&["ab", "c"]).row(&["x", "yz"]).text("footer");
        assert_eq!(t.render(), "T: demo\nab    c    \nx     yz   \nfooter\n");
    }

    #[test]
    fn table_builder_leaves_overflow_cells_unpadded() {
        let mut t = Table::new("T", &[2]);
        t.row(&["abcd", "extra"]);
        assert_eq!(t.render(), "T\nabcd  extra  \n");
    }

    #[test]
    fn table1_lists_51_rows() {
        let t = table1();
        assert!(t.contains("total configurations: 51"));
        assert!(t.contains("Rhino"));
        assert!(t.contains("ES2015"));
    }

    #[test]
    fn table2_has_all_engines_and_totals() {
        let t = table2(&fake_report());
        for e in EngineName::ALL {
            assert!(t.contains(e.as_str()), "missing {e}");
        }
        assert!(t.contains("Total"));
    }

    #[test]
    fn tables_render_without_panicking() {
        let r = fake_report();
        assert!(table3(&r).contains("Rhino"));
        assert!(table4(&r).contains("ECMA-262"));
        assert!(table5(&r).contains("String"));
        assert!(figure7(&r).contains("Implementation"));
    }

    #[test]
    fn stage_metrics_renders_every_stage_and_the_funnel() {
        let mut r = fake_report();
        r.metrics.cases_run = 10;
        r.metrics.bugs_reported = 2;
        r.metrics.stage_mut(comfort_telemetry::Stage::Differential).record(100, 100, 2_000_000);
        let t = stage_metrics(&r);
        for stage in comfort_telemetry::Stage::ALL {
            assert!(t.contains(stage.as_str()), "missing {stage}");
        }
        assert!(t.contains("funnel: "));
        assert!(t.contains("2 bugs"));
    }
}
