#![warn(missing_docs)]

//! The COMFORT pipeline (Figure 3).
//!
//! This crate assembles the paper's system out of the workspace substrates:
//!
//! * [`datagen`] — **Algorithm 1**, ECMA-262-guided test-data generation,
//! * [`differential`] — the §3.4 differential harness with Figure 5's
//!   outcome classification and majority voting,
//! * [`reduce`] — the §3.5 AST-traversal test-case reducer,
//! * [`filter`] — the §3.6 three-layer identical-bug filter tree,
//! * [`campaign`] — the §4–5 evaluation loop with version attribution and a
//!   calibrated developer model,
//! * [`executor`] — the sharded, deterministic parallel campaign executor,
//! * [`session`] — [`CampaignSession`], the unified entry point for
//!   running campaigns (fresh or crash-safe resumable),
//! * [`compare`] / [`quality`] — the Figure 8 and Figure 9 harnesses,
//! * [`report`] — renders every table and figure,
//! * [`pipeline`] — the `Comfort` facade for downstream users.
//!
//! # Examples
//!
//! ```no_run
//! use comfort_core::pipeline::{Comfort, ComfortConfig};
//!
//! let mut comfort = Comfort::new(ComfortConfig::default());
//! let report = comfort.run_budgeted(200);
//! for bug in &report.deviations {
//!     println!("{} — {}", bug.key, bug.earliest_version);
//! }
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod compare;
pub mod datagen;
pub mod differential;
pub mod executor;
pub mod extensions;
pub mod filter;
pub mod fuzzer;
pub mod pipeline;
pub mod quality;
pub mod reduce;
pub mod report;
pub mod resilience;
pub mod session;
pub mod test262;
pub mod testcase;

pub use campaign::{
    testbeds_for, BugReport, Campaign, CampaignConfig, CampaignConfigBuilder, CampaignReport,
    ConfigError, DeveloperModel,
};
pub use checkpoint::{
    config_fingerprint, report_checksum, report_from_json, report_to_json,
    report_to_json_deterministic, CampaignCheckpoint, CheckpointError, CheckpointJournal,
    Fingerprint, LeaseAction, LeaseRecord, RecoveryReport, ResumeInfo, ShardRecord,
};
pub use comfort_telemetry as telemetry;
pub use differential::{
    run_differential, run_differential_pooled, vote_on_signatures_quorum, CaseOutcome,
    DeviationKind, DeviationRecord, ExecutionClasses, GroupQuorum, QuorumPolicy, Signature,
};
pub use executor::{
    merge_shard_reports, merge_shard_reports_with_sink, plan_shards, ShardSpec, ShardedCampaign,
};
pub use filter::{BugKey, BugTree};
pub use fuzzer::{ComfortFuzzer, Fuzzer};
pub use pipeline::{Comfort, ComfortConfig, PipelineReport};
pub use reduce::reduce as reduce_case;
pub use resilience::{
    run_case_hardened, run_case_hardened_cancellable, CancelToken, CaseObservation, ChaosConfig,
    ExecPolicy, FaultRecord, HealthTracker, QuarantineEvent, ReinstateEvent, TestbedHealth,
};
pub use session::CampaignSession;
pub use testcase::{Origin, TestCase};
