//! Fuzzer comparison harness (Figure 8): equal test-execution budgets, a
//! shared testbed matrix, per-fuzzer dedup trees, and the shared developer
//! model for the confirm/fix window.

use comfort_syntax::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::campaign::DeveloperModel;
use crate::differential::{run_differential, CaseOutcome};
use crate::filter::{BugKey, BugTree};
use crate::fuzzer::Fuzzer;

/// Comparison parameters.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Seed shared by every fuzzer's RNG (fresh stream per fuzzer).
    pub seed: u64,
    /// Test-case budget per fuzzer (the paper gives each fuzzer 72 h; time
    /// maps linearly onto the case budget).
    pub cases_each: usize,
    /// Simulated hours the budget corresponds to.
    pub hours: f64,
    /// Fuel per engine run.
    pub fuel: u64,
    /// Include the strict testbed group.
    pub include_strict: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            seed: 72,
            cases_each: 400,
            hours: 72.0,
            fuel: 300_000,
            include_strict: false,
        }
    }
}

/// One fuzzer's result series.
#[derive(Debug, Clone)]
pub struct FuzzerSeries {
    /// Fuzzer name.
    pub name: String,
    /// `(sim hours, cumulative unique bugs)` per discovery event.
    pub discoveries: Vec<(f64, usize)>,
    /// Distinct bugs found within the budget.
    pub unique_bugs: usize,
    /// Of those, confirmed by the developer model within the window.
    pub confirmed: usize,
    /// Of those, fixed within the 3-month window.
    pub fixed: usize,
    /// Bugs no other compared fuzzer found (filled by [`compare`]).
    pub exclusive: usize,
    /// The discovered bug keys.
    pub keys: Vec<BugKey>,
}

/// Runs every fuzzer on an equal budget and reports per-fuzzer series.
pub fn compare(fuzzers: &mut [&mut dyn Fuzzer], config: &CompareConfig) -> Vec<FuzzerSeries> {
    let mut testbeds = comfort_engines::latest_testbeds();
    if config.include_strict {
        for name in comfort_engines::EngineName::ALL {
            testbeds
                .push(comfort_engines::Testbed::new(comfort_engines::Engine::latest(name), true));
        }
    }
    let dev = DeveloperModel { seed: config.seed };

    let mut all: Vec<FuzzerSeries> = Vec::new();
    for fuzzer in fuzzers.iter_mut() {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tree = BugTree::new();
        let mut discoveries = Vec::new();
        let mut keys = Vec::new();
        let mut confirmed = 0;
        let mut fixed = 0;
        for i in 0..config.cases_each {
            let source = fuzzer.next_case(&mut rng);
            let Ok(program) = parse(&source) else { continue };
            let origin = fuzzer.current_origin();
            if let CaseOutcome::Deviations(devs) = run_differential(
                &program,
                &testbeds,
                &comfort_engines::RunOptions::with_fuel(config.fuel),
            ) {
                for d in devs {
                    let behavior = match d.kind {
                        crate::differential::DeviationKind::UnexpectedError => d.actual.to_string(),
                        other => other.to_string(),
                    };
                    let provisional = BugKey {
                        engine: d.engine,
                        api: crate::campaign::dominant_api(&program),
                        behavior: behavior.clone(),
                    };
                    if tree.contains(&provisional) {
                        tree.observe(&provisional);
                        continue;
                    }
                    // Reduce before keying so the API layer of the dedup
                    // tree names the API actually involved — without this,
                    // one bug manifests once per distinct leading API of
                    // the triggering programs (massive over-counting).
                    let engine = d.engine;
                    let reduced = crate::reduce::reduce(&program, &mut |p| {
                        matches!(
                            run_differential(p, &testbeds, &comfort_engines::RunOptions::with_fuel(config.fuel)),
                            CaseOutcome::Deviations(dd)
                                if dd.iter().any(|r| r.engine == engine)
                        )
                    });
                    let key = BugKey {
                        engine: d.engine,
                        api: crate::campaign::dominant_api(&reduced),
                        behavior,
                    };
                    tree.observe(&provisional);
                    let fresh = key == provisional || tree.observe(&key);
                    if fresh {
                        let hours = config.hours * (i + 1) as f64 / config.cases_each as f64;
                        discoveries.push((hours, keys.len() + 1));
                        let verdict = dev.adjudicate(&key, origin, 0);
                        if verdict.verified {
                            confirmed += 1;
                            if verdict.fixed {
                                fixed += 1;
                            }
                        }
                        keys.push(key);
                    }
                }
            }
        }
        all.push(FuzzerSeries {
            name: fuzzer.name().to_string(),
            unique_bugs: keys.len(),
            discoveries,
            confirmed,
            fixed,
            exclusive: 0,
            keys,
        });
    }

    // Exclusivity: bugs no other fuzzer's key set contains.
    for i in 0..all.len() {
        let mine = all[i].keys.clone();
        let exclusive = mine
            .iter()
            .filter(|k| {
                all.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .all(|(_, other)| !other.keys.contains(k))
            })
            .count();
        all[i].exclusive = exclusive;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::Origin;

    /// A degenerate fuzzer that always emits the Figure 2 bug trigger.
    struct OneTrick;
    impl Fuzzer for OneTrick {
        fn name(&self) -> &'static str {
            "one-trick"
        }
        fn next_case(&mut self, _rng: &mut StdRng) -> String {
            "print('Name: Albert'.substr(6, undefined));".to_string()
        }
        fn current_origin(&self) -> Origin {
            Origin::EcmaMutation
        }
    }

    /// A fuzzer that only emits conforming programs.
    struct Boring;
    impl Fuzzer for Boring {
        fn name(&self) -> &'static str {
            "boring"
        }
        fn next_case(&mut self, _rng: &mut StdRng) -> String {
            "print(1 + 1);".to_string()
        }
    }

    #[test]
    fn dedup_counts_one_bug_for_repeated_triggers() {
        let mut a = OneTrick;
        let mut b = Boring;
        let series = compare(
            &mut [&mut a, &mut b],
            &CompareConfig { cases_each: 10, fuel: 100_000, ..CompareConfig::default() },
        );
        assert_eq!(series[0].unique_bugs, 1);
        assert_eq!(series[0].exclusive, 1);
        assert_eq!(series[1].unique_bugs, 0);
        assert_eq!(series[1].exclusive, 0);
        // Discovery timeline is monotone.
        assert!(series[0].discoveries.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
