//! Test cases and their provenance.

use comfort_syntax::Program;

/// How the bug-triggering input of a test case was produced (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The raw generated program (program generation, §3.2).
    ProgramGen,
    /// An ECMA-262-guided data mutation of a generated program (§3.3).
    EcmaMutation,
}

impl Origin {
    /// Table 4 row label.
    pub fn as_str(self) -> &'static str {
        match self {
            Origin::ProgramGen => "Test program generation",
            Origin::EcmaMutation => "ECMA-262 guided mutation",
        }
    }

    /// Stable snake-case slug used in telemetry and the checkpoint journal.
    pub fn slug(self) -> &'static str {
        match self {
            Origin::ProgramGen => "program-gen",
            Origin::EcmaMutation => "ecma-mutation",
        }
    }

    /// Parses the slug produced by [`Origin::slug`].
    pub fn from_slug(s: &str) -> Option<Origin> {
        match s {
            "program-gen" => Some(Origin::ProgramGen),
            "ecma-mutation" => Some(Origin::EcmaMutation),
            _ => None,
        }
    }
}

/// A runnable test case: a program plus one input assignment (§1: "a test
/// program and one of its datasets form a test case").
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Unique id within a campaign.
    pub id: u64,
    /// Source text (what would be attached to a bug report).
    pub source: String,
    /// Parsed form.
    pub program: Program,
    /// Provenance of the triggering data.
    pub origin: Origin,
    /// Id of the base generated program this was derived from.
    pub base: u64,
}

impl TestCase {
    /// Wraps a parsed program.
    pub fn new(id: u64, source: String, program: Program, origin: Origin, base: u64) -> Self {
        TestCase { id, source, program, origin, base }
    }
}
