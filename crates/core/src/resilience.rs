//! Fault-tolerant campaign execution: policy, health tracking, quarantine,
//! and the hardened per-case runner.
//!
//! The paper's harness only works because it keeps voting while individual
//! engines crash, hang, and print garbage (§3.4). This module is that
//! property, made explicit: every testbed run goes through the
//! `comfort-engines` isolation harness, observed faults feed a per-testbed
//! health ledger, a circuit breaker quarantines testbeds after
//! [`ExecPolicy::quarantine_after`] consecutive hard faults, and voting
//! degrades to the surviving quorum
//! ([`vote_on_signatures_quorum`](crate::differential::vote_on_signatures_quorum)).
//!
//! Everything here is deterministic at any thread count: fault decisions
//! are content-addressed (see `comfort_engines::chaos`), health state is
//! per-shard (the shard plan is a pure function of the config), and the
//! observation lists are ordered by testbed index.

use comfort_engines::{
    compile, run_isolated_compiled, CompiledChunk, FaultObserved, FaultPlan, IsolatedRun,
    IsolationPolicy, RetryPolicy, RunOptions, Testbed,
};
use comfort_syntax::Program;
use std::sync::Arc;

use crate::differential::{
    vote_on_signatures_quorum, CaseOutcome, ExecutionClasses, GroupQuorum, QuorumPolicy, Signature,
};

/// Execution-hardening policy for a campaign: isolation and retry knobs for
/// every testbed run, the quarantine threshold, and the voting quorum.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPolicy {
    /// Containment applied to every run (panic catching, watchdog, output
    /// cap).
    pub isolation: IsolationPolicy,
    /// Retry policy for transient faults.
    pub retry: RetryPolicy,
    /// Consecutive *hard* faults (panic, hang, exhausted transient) before
    /// a testbed is quarantined for the rest of the shard. `0` disables
    /// quarantine.
    pub quarantine_after: u32,
    /// Half-open probe: after a quarantined testbed has skipped this many
    /// cases, the next case runs on it as a probe; a clean probe reinstates
    /// the testbed into the quorum, a faulty one re-arms the wait. `0`
    /// (default) disables probing — quarantine is then final for the shard.
    pub probe_after: u32,
    /// Minimum healthy voters per mode group.
    pub quorum: QuorumPolicy,
    /// Footprint-based execution dedup: collapse testbeds that are provably
    /// equivalent on a chunk into one physical run per behaviour class (see
    /// [`ExecutionClasses`]). Purely an execution-count optimization — every
    /// observation, vote, and report is bit-identical either way — so it
    /// defaults to on; turn off to force the full matrix (oracle mode).
    pub dedup: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            isolation: IsolationPolicy::default(),
            retry: RetryPolicy::default(),
            quarantine_after: 5,
            probe_after: 0,
            quorum: QuorumPolicy::default(),
            dedup: true,
        }
    }
}

/// A cooperative cancellation token, checked at shard boundaries and
/// between testbed slots inside [`run_case_hardened_cancellable`].
///
/// Cancellation is **latching**: once [`CancelToken::cancel`] is called or
/// the armed deadline passes, [`CancelToken::is_cancelled`] stays `true`.
/// Clones share state, so one token can fan out across worker threads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: std::sync::Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: std::sync::atomic::AtomicBool,
    deadline: std::sync::Mutex<Option<std::time::Instant>>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, latching).
    pub fn cancel(&self) {
        self.inner.flag.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Arms a wall-clock deadline after which the token reads cancelled.
    /// The first armed deadline wins; later calls are no-ops (the campaign
    /// executor arms the configured deadline once, at campaign start).
    pub fn arm_deadline(&self, deadline: std::time::Instant) {
        let mut slot = self.inner.deadline.lock().expect("cancel token poisoned");
        if slot.is_none() {
            *slot = Some(deadline);
        }
    }

    /// `true` when an armed deadline has elapsed (used to distinguish a
    /// deadline interruption from an explicit cancel in telemetry).
    pub fn deadline_passed(&self) -> bool {
        let deadline = *self.inner.deadline.lock().expect("cancel token poisoned");
        deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// `true` once cancelled (explicitly or by a passed deadline).
    pub fn is_cancelled(&self) -> bool {
        use std::sync::atomic::Ordering;
        if self.inner.flag.load(Ordering::SeqCst) {
            return true;
        }
        let deadline = *self.inner.deadline.lock().expect("cancel token poisoned");
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            // Latch so every later check is cheap and consistent.
            self.inner.flag.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

/// Attaches a chaos [`FaultPlan`] to selected testbeds of a campaign's
/// matrix (by index into `testbeds_for`'s output) — the configuration
/// surface for fault-injection campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The fault plan. A plan with seed [`FaultPlan::DERIVE`] gets its seed
    /// derived from the campaign seed when the matrix is built.
    pub plan: FaultPlan,
    /// Indices of the testbeds to wrap (out-of-range indices are ignored).
    pub testbeds: Vec<usize>,
}

impl ChaosConfig {
    /// Wraps only the first testbed of the matrix.
    pub fn on_first(plan: FaultPlan) -> Self {
        ChaosConfig { plan, testbeds: vec![0] }
    }

    /// Wraps the given testbed indices.
    pub fn on(plan: FaultPlan, testbeds: Vec<usize>) -> Self {
        ChaosConfig { plan, testbeds }
    }
}

/// Per-testbed health ledger, reported in `CampaignReport::health` and
/// merged additively across shards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TestbedHealth {
    /// Testbed label.
    pub label: String,
    /// Runs that completed without any fault.
    pub runs_ok: u64,
    /// Contained panics.
    pub panics: u64,
    /// Hangs (self-reported wedges or watchdog timeouts).
    pub hangs: u64,
    /// Runs whose transient faults outlasted the retry budget.
    pub transients_exhausted: u64,
    /// Runs whose output was truncated by the cap.
    pub outputs_truncated: u64,
    /// Total transient retry attempts consumed.
    pub retries: u64,
    /// Runs skipped because the testbed was quarantined.
    pub runs_skipped: u64,
    /// Quarantine transitions (at most one per shard).
    pub quarantines: u64,
    /// Reinstatements by a successful half-open probe.
    pub reinstatements: u64,
    /// `true` when the testbed ended (some shard of) the campaign
    /// quarantined.
    pub quarantined: bool,
}

impl TestbedHealth {
    /// Total hard faults recorded.
    pub fn hard_faults(&self) -> u64 {
        self.panics + self.hangs + self.transients_exhausted
    }

    /// Total faults of any kind recorded.
    pub fn faults(&self) -> u64 {
        self.hard_faults() + self.outputs_truncated
    }

    /// Adds another shard's ledger for the same testbed into this one.
    pub fn merge_from(&mut self, other: &TestbedHealth) {
        debug_assert!(self.label.is_empty() || other.label.is_empty() || self.label == other.label);
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        self.runs_ok += other.runs_ok;
        self.panics += other.panics;
        self.hangs += other.hangs;
        self.transients_exhausted += other.transients_exhausted;
        self.outputs_truncated += other.outputs_truncated;
        self.retries += other.retries;
        self.runs_skipped += other.runs_skipped;
        self.quarantines += other.quarantines;
        self.reinstatements += other.reinstatements;
        self.quarantined |= other.quarantined;
    }
}

/// A testbed's quarantine transition during one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// Index into the campaign's testbed matrix.
    pub testbed: usize,
    /// Testbed label.
    pub label: String,
    /// Consecutive hard faults at the moment the breaker opened.
    pub hard_faults: u64,
}

/// A testbed's reinstatement (successful half-open probe) during one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReinstateEvent {
    /// Index into the campaign's testbed matrix.
    pub testbed: usize,
    /// Testbed label.
    pub label: String,
    /// Cases the testbed sat out in quarantine before this probe.
    pub skipped: u64,
}

/// One observed fault on one testbed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index into the campaign's testbed matrix.
    pub testbed: usize,
    /// Testbed label.
    pub label: String,
    /// The fault class.
    pub fault: FaultObserved,
}

/// The per-shard health state machine: fault counters, consecutive-hard-
/// fault streaks, and the quarantine circuit breaker.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    threshold: u32,
    probe_after: u32,
    entries: Vec<TestbedHealth>,
    streaks: Vec<u32>,
    active: Vec<bool>,
    /// Cases skipped since the testbed's current quarantine began (drives
    /// the half-open probe schedule; reset by a failed probe).
    quarantine_skips: Vec<u32>,
    /// Testbeds running the *current* case as a half-open probe.
    probing: Vec<bool>,
}

impl HealthTracker {
    /// A fresh tracker for `testbeds`, quarantining after `threshold`
    /// consecutive hard faults (`0` disables quarantine).
    pub fn new(testbeds: &[Testbed], threshold: u32) -> Self {
        HealthTracker {
            threshold,
            probe_after: 0,
            entries: testbeds
                .iter()
                .map(|t| TestbedHealth { label: t.label(), ..TestbedHealth::default() })
                .collect(),
            streaks: vec![0; testbeds.len()],
            active: vec![true; testbeds.len()],
            quarantine_skips: vec![0; testbeds.len()],
            probing: vec![false; testbeds.len()],
        }
    }

    /// Enables the half-open probe: after `probe_after` skipped cases a
    /// quarantined testbed gets one probe run; a clean probe reinstates it.
    /// `0` disables probing (the default).
    pub fn with_probe(mut self, probe_after: u32) -> Self {
        self.probe_after = probe_after;
        self
    }

    /// Whether testbed `i` still participates in runs and votes.
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Starts a new case: returns the run mask (active testbeds plus any
    /// quarantined testbed whose probe is due) and remembers which slots are
    /// probes so their results get probe semantics.
    fn begin_case(&mut self) -> Vec<bool> {
        (0..self.active.len())
            .map(|i| {
                let probe = !self.active[i]
                    && self.probe_after > 0
                    && self.quarantine_skips[i] >= self.probe_after;
                self.probing[i] = probe;
                self.active[i] || probe
            })
            .collect()
    }

    /// Whether testbed `i` runs the current case as a half-open probe.
    fn is_probe(&self, i: usize) -> bool {
        self.probing[i]
    }

    /// A clean probe run: the testbed rejoins the quorum.
    fn reinstate(&mut self, i: usize) -> ReinstateEvent {
        let skipped = u64::from(self.quarantine_skips[i]);
        self.active[i] = true;
        self.probing[i] = false;
        self.streaks[i] = 0;
        self.quarantine_skips[i] = 0;
        self.entries[i].runs_ok += 1;
        self.entries[i].reinstatements += 1;
        self.entries[i].quarantined = false;
        ReinstateEvent { testbed: i, label: self.entries[i].label.clone(), skipped }
    }

    /// A faulty probe run: the testbed stays quarantined and the probe
    /// schedule re-arms from zero.
    fn fail_probe(&mut self, i: usize) {
        self.probing[i] = false;
        self.quarantine_skips[i] = 0;
    }

    /// Number of testbeds still active.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Records a clean run (resets the hard-fault streak).
    fn observe_success(&mut self, i: usize) {
        self.entries[i].runs_ok += 1;
        self.streaks[i] = 0;
    }

    /// Records transient retries consumed by one run.
    fn record_retries(&mut self, i: usize, retries: u32) {
        self.entries[i].retries += u64::from(retries);
    }

    /// Records a skipped (quarantined) run.
    fn record_skip(&mut self, i: usize) {
        self.entries[i].runs_skipped += 1;
        self.quarantine_skips[i] = self.quarantine_skips[i].saturating_add(1);
    }

    /// Records a fault; returns `Some(streak)` when this fault tripped the
    /// circuit breaker (the testbed is quarantined from the next run on).
    fn observe_fault(&mut self, i: usize, fault: FaultObserved) -> Option<u64> {
        match fault {
            FaultObserved::Panic => self.entries[i].panics += 1,
            FaultObserved::Hang => self.entries[i].hangs += 1,
            FaultObserved::TransientExhausted => self.entries[i].transients_exhausted += 1,
            FaultObserved::OutputTruncated => self.entries[i].outputs_truncated += 1,
        }
        if !fault.is_hard() {
            return None;
        }
        self.streaks[i] += 1;
        if self.threshold > 0 && self.streaks[i] >= self.threshold && self.active[i] {
            self.active[i] = false;
            self.quarantine_skips[i] = 0;
            self.entries[i].quarantines += 1;
            self.entries[i].quarantined = true;
            return Some(u64::from(self.streaks[i]));
        }
        None
    }

    /// The accumulated per-testbed ledgers.
    pub fn reports(&self) -> Vec<TestbedHealth> {
        self.entries.clone()
    }
}

/// Everything one hardened case execution produced: the vote, per-group
/// quorum info, and the fault/retry/quarantine observations (all ordered by
/// testbed index, so telemetry emission is deterministic).
#[derive(Debug)]
pub struct CaseObservation {
    /// The (possibly degraded) voting outcome.
    pub outcome: CaseOutcome,
    /// Per-mode-group quorum summary.
    pub groups: Vec<GroupQuorum>,
    /// Faults observed this case.
    pub faults: Vec<FaultRecord>,
    /// Runs that needed transient retries: `(testbed index, retries)`.
    pub retried: Vec<(usize, u32)>,
    /// Quarantine transitions tripped by this case's faults.
    pub quarantined: Vec<QuarantineEvent>,
    /// Reinstatements (successful half-open probes) this case.
    pub reinstated: Vec<ReinstateEvent>,
    /// Testbeds that participated (logical runs: every masked-in slot,
    /// whether it executed or reused a classmate's execution).
    pub active_runs: usize,
    /// Executions actually performed (one per behaviour class). Equal to
    /// `active_runs` when dedup is off or the chunk's footprint is
    /// poisoned.
    pub physical_runs: usize,
    /// Behaviour-equivalence classes this case partitioned into
    /// (= `physical_runs`; kept separate for telemetry clarity).
    pub classes: usize,
    /// Runs skipped (testbed already quarantined).
    pub skipped_runs: usize,
    /// `true` when the case was abandoned by a [`CancelToken`] between
    /// testbed slots. A cancelled observation carries **no** vote and made
    /// **no** tracker updates — the caller must discard the case entirely.
    pub cancelled: bool,
}

/// Runs one case across the matrix under full containment, updates the
/// health tracker, and votes over the surviving quorum.
///
/// Quarantined testbeds are skipped (their signature slot stays `None`)
/// unless their half-open probe is due; a quarantine tripped by *this* case
/// takes effect from the next case. With `threads > 1` the isolated runs
/// fan out over a scoped worker pool; results land in index-ordered slots,
/// so the observation is bit-identical at every thread count.
pub fn run_case_hardened(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
    policy: &ExecPolicy,
    tracker: &mut HealthTracker,
) -> CaseObservation {
    run_case_hardened_cancellable(program, testbeds, options, threads, policy, tracker, None)
}

/// [`run_case_hardened`] with a cooperative cancellation point between
/// testbed slots: when `cancel` trips mid-case, remaining runs are skipped
/// and the observation comes back `cancelled` with the tracker untouched
/// (the interrupted shard's state is discarded wholesale, so a partial case
/// must not leak into the health ledger).
#[allow(clippy::too_many_arguments)]
pub fn run_case_hardened_cancellable(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
    policy: &ExecPolicy,
    tracker: &mut HealthTracker,
    cancel: Option<&CancelToken>,
) -> CaseObservation {
    // Compile once per case; every testbed slot (and every watchdog thread)
    // shares the same read-only chunk via its `Arc`.
    let chunk = compile(program);
    let mask = tracker.begin_case();
    // Partition the masked-in slots into behaviour classes. A half-open
    // probe must observe its own run (its result drives reinstatement), and
    // a slot with a pending chaos fault diverges from its classmates by
    // construction — both are forced singletons, so classing composes with
    // quarantine, probing, chaos, and retry without changing any outcome.
    let classes = if policy.dedup {
        let shareable: Vec<bool> = testbeds
            .iter()
            .enumerate()
            .map(|(i, bed)| !tracker.is_probe(i) && !bed.has_pending_fault(&chunk))
            .collect();
        ExecutionClasses::compute(&chunk, testbeds, &mask, &shareable)
    } else {
        ExecutionClasses::identity(&mask)
    };
    let run_mask: Vec<bool> =
        (0..testbeds.len()).map(|i| mask[i] && classes.is_representative(i)).collect();
    let (runs, cancelled) =
        isolated_runs(&chunk, testbeds, options, threads, policy, &run_mask, cancel);
    if cancelled {
        return CaseObservation {
            outcome: CaseOutcome::NoQuorum,
            groups: Vec::new(),
            faults: Vec::new(),
            retried: Vec::new(),
            quarantined: Vec::new(),
            reinstated: Vec::new(),
            active_runs: 0,
            physical_runs: 0,
            classes: 0,
            cancelled: true,
            skipped_runs: 0,
        };
    }

    // Process every masked-in slot in index order against its class
    // representative's run (`rep(i) == i` for slots that executed). Health
    // updates, fault records, and signatures replicate to classmates
    // exactly as the full matrix would have produced them — class members
    // are behaviourally identical, so the representative's run *is* their
    // run — keeping the tracker ledger and every report bit-identical.
    let physical_runs = runs.iter().flatten().count();
    let mut signatures: Vec<Option<Signature>> = vec![None; testbeds.len()];
    let mut faults = Vec::new();
    let mut retried = Vec::new();
    let mut quarantined = Vec::new();
    let mut reinstated = Vec::new();
    let mut active_runs = 0;
    let mut skipped_runs = 0;
    for i in 0..testbeds.len() {
        if !mask[i] {
            tracker.record_skip(i);
            skipped_runs += 1;
            continue;
        }
        let run = runs[classes.rep(i)].as_ref().expect("class representative ran");
        active_runs += 1;
        if run.retries > 0 {
            tracker.record_retries(i, run.retries);
            retried.push((i, run.retries));
        }
        let probe = tracker.is_probe(i);
        match run.fault {
            Some(fault) => {
                faults.push(FaultRecord { testbed: i, label: testbeds[i].label(), fault });
                if let Some(streak) = tracker.observe_fault(i, fault) {
                    quarantined.push(QuarantineEvent {
                        testbed: i,
                        label: testbeds[i].label(),
                        hard_faults: streak,
                    });
                }
                if probe {
                    // Failed probe: stay quarantined, re-arm the schedule,
                    // and keep the faulty signature out of the vote.
                    tracker.fail_probe(i);
                    continue;
                }
            }
            None => {
                if probe {
                    reinstated.push(tracker.reinstate(i));
                } else {
                    tracker.observe_success(i);
                }
            }
        }
        signatures[i] = Some(Signature::of(&run.result.status, &run.result.output));
    }

    let (outcome, groups) = vote_on_signatures_quorum(testbeds, &signatures, &policy.quorum);
    CaseObservation {
        outcome,
        groups,
        faults,
        retried,
        quarantined,
        reinstated,
        active_runs,
        physical_runs,
        classes: classes.class_count(),
        skipped_runs,
        cancelled: false,
    }
}

/// Executes the isolated runs for every unmasked testbed, serially or on a
/// scoped worker pool (index-ordered slots; workers never panic because the
/// isolation harness contains everything). Returns `(slots, cancelled)`;
/// a trip of `cancel` between slots stops further runs.
fn isolated_runs(
    chunk: &Arc<CompiledChunk>,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
    policy: &ExecPolicy,
    mask: &[bool],
    cancel: Option<&CancelToken>,
) -> (Vec<Option<IsolatedRun>>, bool) {
    let run_one = |i: usize| {
        run_isolated_compiled(&testbeds[i], chunk, options, &policy.isolation, &policy.retry)
    };
    let is_cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    if threads <= 1 || testbeds.len() < 2 {
        let mut slots = Vec::with_capacity(testbeds.len());
        for (i, m) in mask.iter().enumerate() {
            if is_cancelled() {
                return (slots, true);
            }
            slots.push(m.then(|| run_one(i)));
        }
        return (slots, false);
    }

    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::OnceLock;
    // Indices are claimed exactly once from the shared counter, so each
    // slot is written at most once: per-slot `OnceLock`s give lock-free
    // writes (no mutex pool allocated-and-locked per case).
    let slots: Vec<OnceLock<IsolatedRun>> = testbeds.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let workers = threads.min(testbeds.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if is_cancelled() {
                    stopped.store(true, Ordering::SeqCst);
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= testbeds.len() {
                    break;
                }
                if !mask[i] {
                    continue;
                }
                let set = slots[i].set(run_one(i));
                debug_assert!(set.is_ok(), "slot {i} claimed twice");
            });
        }
    });
    let cancelled = stopped.load(Ordering::SeqCst);
    (slots.into_iter().map(OnceLock::into_inner).collect(), cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_engines::{latest_testbeds, Engine, EngineName};
    use comfort_syntax::parse;

    fn program(src: &str) -> Program {
        parse(src).expect("test source parses")
    }

    fn chaos_matrix(plan: FaultPlan) -> Vec<Testbed> {
        let mut beds = latest_testbeds();
        beds[0] = Testbed::new(Engine::latest(EngineName::V8), false).with_chaos(plan);
        beds
    }

    #[test]
    fn hardened_case_survives_certain_panic() {
        let beds = chaos_matrix(FaultPlan::new(5).panic_rate(1.0));
        let mut tracker = HealthTracker::new(&beds, 0);
        let obs = run_case_hardened(
            &program("print(1);"),
            &beds,
            &RunOptions::with_fuel(100_000),
            1,
            &ExecPolicy::default(),
            &mut tracker,
        );
        assert_eq!(obs.faults.len(), 1);
        assert_eq!(obs.faults[0].fault, FaultObserved::Panic);
        // The panicking testbed crashes and is outvoted by the other nine.
        let CaseOutcome::Deviations(devs) = obs.outcome else {
            panic!("expected deviation, got {:?}", obs.outcome);
        };
        assert_eq!(devs.len(), 1);
    }

    #[test]
    fn circuit_breaker_quarantines_after_streak() {
        let beds = chaos_matrix(FaultPlan::new(5).panic_rate(1.0).hang_millis(1));
        let mut tracker = HealthTracker::new(&beds, 2);
        let opts = RunOptions::with_fuel(100_000);
        let policy = ExecPolicy { quarantine_after: 2, ..ExecPolicy::default() };
        let first =
            run_case_hardened(&program("print(1);"), &beds, &opts, 1, &policy, &mut tracker);
        assert!(first.quarantined.is_empty());
        let second =
            run_case_hardened(&program("print(2);"), &beds, &opts, 1, &policy, &mut tracker);
        assert_eq!(second.quarantined.len(), 1, "second consecutive panic trips the breaker");
        assert_eq!(second.quarantined[0].testbed, 0);
        // From the third case on, testbed 0 is skipped and the rest vote.
        let third =
            run_case_hardened(&program("print(3);"), &beds, &opts, 1, &policy, &mut tracker);
        assert_eq!(third.skipped_runs, 1);
        assert_eq!(third.active_runs, beds.len() - 1);
        assert!(matches!(third.outcome, CaseOutcome::Pass), "{:?}", third.outcome);
        assert!(third.groups[0].degraded());
        let health = tracker.reports();
        assert!(health[0].quarantined);
        assert_eq!(health[0].quarantines, 1);
        assert_eq!(health[0].panics, 2);
        assert_eq!(health[0].runs_skipped, 1);
    }

    #[test]
    fn half_open_probe_reinstates_a_healed_testbed() {
        // Panic on exactly the first two cases, then run clean forever:
        // deterministic content-addressed chaos can't express "heal after
        // N", so drive the tracker directly.
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 2).with_probe(3);
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_none());
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_some());
        assert!(!tracker.is_active(0));

        // Three skipped cases arm the probe; the fourth case runs it.
        for _ in 0..3 {
            let mask = tracker.begin_case();
            assert!(!mask[0], "still quarantined");
            tracker.record_skip(0);
        }
        let mask = tracker.begin_case();
        assert!(mask[0], "probe is due");
        assert!(tracker.is_probe(0));

        // A clean probe reinstates the testbed.
        let event = tracker.reinstate(0);
        assert_eq!(event.testbed, 0);
        assert_eq!(event.skipped, 3);
        assert!(tracker.is_active(0));
        let health = &tracker.reports()[0];
        assert_eq!(health.reinstatements, 1);
        assert!(!health.quarantined, "reinstated testbed no longer ends quarantined");
        assert_eq!(health.quarantines, 1, "the historical transition stays counted");
    }

    #[test]
    fn failed_probe_rearms_the_wait() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 1).with_probe(2);
        assert!(tracker.observe_fault(0, FaultObserved::Hang).is_some());
        tracker.record_skip(0);
        tracker.record_skip(0);
        let mask = tracker.begin_case();
        assert!(mask[0] && tracker.is_probe(0));
        // The probe faults: stay quarantined, schedule re-arms from zero.
        tracker.observe_fault(0, FaultObserved::Hang);
        tracker.fail_probe(0);
        assert!(!tracker.is_active(0));
        let mask = tracker.begin_case();
        assert!(!mask[0], "probe not due again until two more skips");
        tracker.record_skip(0);
        tracker.record_skip(0);
        assert!(tracker.begin_case()[0]);
    }

    #[test]
    fn cancel_token_latches_and_honours_deadline() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());

        let deadline = CancelToken::new();
        deadline.arm_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert!(deadline.is_cancelled(), "passed deadline reads cancelled");
        // First armed deadline wins.
        let far = CancelToken::new();
        far.arm_deadline(std::time::Instant::now() + std::time::Duration::from_secs(3600));
        far.arm_deadline(std::time::Instant::now() - std::time::Duration::from_secs(1));
        assert!(!far.is_cancelled(), "later arm attempts are no-ops");
    }

    #[test]
    fn cancelled_case_makes_no_tracker_updates() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 2);
        let before = tracker.reports();
        let token = CancelToken::new();
        token.cancel();
        let obs = run_case_hardened_cancellable(
            &program("print(1);"),
            &beds,
            &RunOptions::with_fuel(100_000),
            1,
            &ExecPolicy::default(),
            &mut tracker,
            Some(&token),
        );
        assert!(obs.cancelled);
        assert_eq!(obs.active_runs, 0);
        assert_eq!(tracker.reports(), before, "no ledger mutation on cancel");
    }

    #[test]
    fn success_resets_the_streak() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 2);
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_none());
        tracker.observe_success(0);
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_none(), "streak was reset");
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_some());
        assert!(!tracker.is_active(0));
    }

    #[test]
    fn soft_faults_do_not_trip_the_breaker() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 1);
        assert!(tracker.observe_fault(0, FaultObserved::OutputTruncated).is_none());
        assert!(tracker.is_active(0));
        assert_eq!(tracker.reports()[0].outputs_truncated, 1);
    }

    #[test]
    fn hardened_runs_are_thread_count_invariant() {
        let plan = FaultPlan::new(11).panic_rate(0.3).garbage_rate(0.2);
        let opts = RunOptions::with_fuel(100_000);
        let policy = ExecPolicy::default();
        let observe = |threads: usize| {
            let beds = chaos_matrix(plan.clone());
            let mut tracker = HealthTracker::new(&beds, policy.quarantine_after);
            let mut outcomes = Vec::new();
            for i in 0..12 {
                let obs = run_case_hardened(
                    &program(&format!("print({i});")),
                    &beds,
                    &opts,
                    threads,
                    &policy,
                    &mut tracker,
                );
                outcomes.push((format!("{:?}", obs.outcome), obs.faults, obs.active_runs));
            }
            (outcomes, tracker.reports())
        };
        assert_eq!(observe(1), observe(4));
    }

    #[test]
    fn health_merge_is_additive() {
        let mut a =
            TestbedHealth { label: "X".into(), panics: 2, runs_ok: 5, ..Default::default() };
        let b = TestbedHealth {
            label: "X".into(),
            panics: 1,
            hangs: 3,
            quarantines: 1,
            quarantined: true,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(a.panics, 3);
        assert_eq!(a.hangs, 3);
        assert_eq!(a.runs_ok, 5);
        assert_eq!(a.hard_faults(), 6);
        assert!(a.quarantined);
    }
}
