//! Fault-tolerant campaign execution: policy, health tracking, quarantine,
//! and the hardened per-case runner.
//!
//! The paper's harness only works because it keeps voting while individual
//! engines crash, hang, and print garbage (§3.4). This module is that
//! property, made explicit: every testbed run goes through the
//! `comfort-engines` isolation harness, observed faults feed a per-testbed
//! health ledger, a circuit breaker quarantines testbeds after
//! [`ExecPolicy::quarantine_after`] consecutive hard faults, and voting
//! degrades to the surviving quorum
//! ([`vote_on_signatures_quorum`](crate::differential::vote_on_signatures_quorum)).
//!
//! Everything here is deterministic at any thread count: fault decisions
//! are content-addressed (see `comfort_engines::chaos`), health state is
//! per-shard (the shard plan is a pure function of the config), and the
//! observation lists are ordered by testbed index.

use comfort_engines::{
    run_isolated, FaultObserved, FaultPlan, IsolatedRun, IsolationPolicy, RetryPolicy, RunOptions,
    Testbed,
};
use comfort_syntax::Program;

use crate::differential::{
    vote_on_signatures_quorum, CaseOutcome, GroupQuorum, QuorumPolicy, Signature,
};

/// Execution-hardening policy for a campaign: isolation and retry knobs for
/// every testbed run, the quarantine threshold, and the voting quorum.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPolicy {
    /// Containment applied to every run (panic catching, watchdog, output
    /// cap).
    pub isolation: IsolationPolicy,
    /// Retry policy for transient faults.
    pub retry: RetryPolicy,
    /// Consecutive *hard* faults (panic, hang, exhausted transient) before
    /// a testbed is quarantined for the rest of the shard. `0` disables
    /// quarantine.
    pub quarantine_after: u32,
    /// Minimum healthy voters per mode group.
    pub quorum: QuorumPolicy,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            isolation: IsolationPolicy::default(),
            retry: RetryPolicy::default(),
            quarantine_after: 5,
            quorum: QuorumPolicy::default(),
        }
    }
}

/// Attaches a chaos [`FaultPlan`] to selected testbeds of a campaign's
/// matrix (by index into `testbeds_for`'s output) — the configuration
/// surface for fault-injection campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The fault plan. A plan with seed [`FaultPlan::DERIVE`] gets its seed
    /// derived from the campaign seed when the matrix is built.
    pub plan: FaultPlan,
    /// Indices of the testbeds to wrap (out-of-range indices are ignored).
    pub testbeds: Vec<usize>,
}

impl ChaosConfig {
    /// Wraps only the first testbed of the matrix.
    pub fn on_first(plan: FaultPlan) -> Self {
        ChaosConfig { plan, testbeds: vec![0] }
    }

    /// Wraps the given testbed indices.
    pub fn on(plan: FaultPlan, testbeds: Vec<usize>) -> Self {
        ChaosConfig { plan, testbeds }
    }
}

/// Per-testbed health ledger, reported in `CampaignReport::health` and
/// merged additively across shards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TestbedHealth {
    /// Testbed label.
    pub label: String,
    /// Runs that completed without any fault.
    pub runs_ok: u64,
    /// Contained panics.
    pub panics: u64,
    /// Hangs (self-reported wedges or watchdog timeouts).
    pub hangs: u64,
    /// Runs whose transient faults outlasted the retry budget.
    pub transients_exhausted: u64,
    /// Runs whose output was truncated by the cap.
    pub outputs_truncated: u64,
    /// Total transient retry attempts consumed.
    pub retries: u64,
    /// Runs skipped because the testbed was quarantined.
    pub runs_skipped: u64,
    /// Quarantine transitions (at most one per shard).
    pub quarantines: u64,
    /// `true` when the testbed ended (some shard of) the campaign
    /// quarantined.
    pub quarantined: bool,
}

impl TestbedHealth {
    /// Total hard faults recorded.
    pub fn hard_faults(&self) -> u64 {
        self.panics + self.hangs + self.transients_exhausted
    }

    /// Total faults of any kind recorded.
    pub fn faults(&self) -> u64 {
        self.hard_faults() + self.outputs_truncated
    }

    /// Adds another shard's ledger for the same testbed into this one.
    pub fn merge_from(&mut self, other: &TestbedHealth) {
        debug_assert!(self.label.is_empty() || other.label.is_empty() || self.label == other.label);
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        self.runs_ok += other.runs_ok;
        self.panics += other.panics;
        self.hangs += other.hangs;
        self.transients_exhausted += other.transients_exhausted;
        self.outputs_truncated += other.outputs_truncated;
        self.retries += other.retries;
        self.runs_skipped += other.runs_skipped;
        self.quarantines += other.quarantines;
        self.quarantined |= other.quarantined;
    }
}

/// A testbed's quarantine transition during one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// Index into the campaign's testbed matrix.
    pub testbed: usize,
    /// Testbed label.
    pub label: String,
    /// Consecutive hard faults at the moment the breaker opened.
    pub hard_faults: u64,
}

/// One observed fault on one testbed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index into the campaign's testbed matrix.
    pub testbed: usize,
    /// Testbed label.
    pub label: String,
    /// The fault class.
    pub fault: FaultObserved,
}

/// The per-shard health state machine: fault counters, consecutive-hard-
/// fault streaks, and the quarantine circuit breaker.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    threshold: u32,
    entries: Vec<TestbedHealth>,
    streaks: Vec<u32>,
    active: Vec<bool>,
}

impl HealthTracker {
    /// A fresh tracker for `testbeds`, quarantining after `threshold`
    /// consecutive hard faults (`0` disables quarantine).
    pub fn new(testbeds: &[Testbed], threshold: u32) -> Self {
        HealthTracker {
            threshold,
            entries: testbeds
                .iter()
                .map(|t| TestbedHealth { label: t.label(), ..TestbedHealth::default() })
                .collect(),
            streaks: vec![0; testbeds.len()],
            active: vec![true; testbeds.len()],
        }
    }

    /// Whether testbed `i` still participates in runs and votes.
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Number of testbeds still active.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Records a clean run (resets the hard-fault streak).
    fn observe_success(&mut self, i: usize) {
        self.entries[i].runs_ok += 1;
        self.streaks[i] = 0;
    }

    /// Records transient retries consumed by one run.
    fn record_retries(&mut self, i: usize, retries: u32) {
        self.entries[i].retries += u64::from(retries);
    }

    /// Records a skipped (quarantined) run.
    fn record_skip(&mut self, i: usize) {
        self.entries[i].runs_skipped += 1;
    }

    /// Records a fault; returns `Some(streak)` when this fault tripped the
    /// circuit breaker (the testbed is quarantined from the next run on).
    fn observe_fault(&mut self, i: usize, fault: FaultObserved) -> Option<u64> {
        match fault {
            FaultObserved::Panic => self.entries[i].panics += 1,
            FaultObserved::Hang => self.entries[i].hangs += 1,
            FaultObserved::TransientExhausted => self.entries[i].transients_exhausted += 1,
            FaultObserved::OutputTruncated => self.entries[i].outputs_truncated += 1,
        }
        if !fault.is_hard() {
            return None;
        }
        self.streaks[i] += 1;
        if self.threshold > 0 && self.streaks[i] >= self.threshold && self.active[i] {
            self.active[i] = false;
            self.entries[i].quarantines += 1;
            self.entries[i].quarantined = true;
            return Some(u64::from(self.streaks[i]));
        }
        None
    }

    /// The accumulated per-testbed ledgers.
    pub fn reports(&self) -> Vec<TestbedHealth> {
        self.entries.clone()
    }
}

/// Everything one hardened case execution produced: the vote, per-group
/// quorum info, and the fault/retry/quarantine observations (all ordered by
/// testbed index, so telemetry emission is deterministic).
#[derive(Debug)]
pub struct CaseObservation {
    /// The (possibly degraded) voting outcome.
    pub outcome: CaseOutcome,
    /// Per-mode-group quorum summary.
    pub groups: Vec<GroupQuorum>,
    /// Faults observed this case.
    pub faults: Vec<FaultRecord>,
    /// Runs that needed transient retries: `(testbed index, retries)`.
    pub retried: Vec<(usize, u32)>,
    /// Quarantine transitions tripped by this case's faults.
    pub quarantined: Vec<QuarantineEvent>,
    /// Testbeds that actually ran.
    pub active_runs: usize,
    /// Runs skipped (testbed already quarantined).
    pub skipped_runs: usize,
}

/// Runs one case across the matrix under full containment, updates the
/// health tracker, and votes over the surviving quorum.
///
/// Quarantined testbeds are skipped (their signature slot stays `None`);
/// a quarantine tripped by *this* case takes effect from the next case.
/// With `threads > 1` the isolated runs fan out over a scoped worker pool;
/// results land in index-ordered slots, so the observation is bit-identical
/// at every thread count.
pub fn run_case_hardened(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
    policy: &ExecPolicy,
    tracker: &mut HealthTracker,
) -> CaseObservation {
    let mask: Vec<bool> = (0..testbeds.len()).map(|i| tracker.is_active(i)).collect();
    let runs = isolated_runs(program, testbeds, options, threads, policy, &mask);

    let mut signatures: Vec<Option<Signature>> = vec![None; testbeds.len()];
    let mut faults = Vec::new();
    let mut retried = Vec::new();
    let mut quarantined = Vec::new();
    let mut active_runs = 0;
    let mut skipped_runs = 0;
    for (i, slot) in runs.into_iter().enumerate() {
        let Some(run) = slot else {
            tracker.record_skip(i);
            skipped_runs += 1;
            continue;
        };
        active_runs += 1;
        if run.retries > 0 {
            tracker.record_retries(i, run.retries);
            retried.push((i, run.retries));
        }
        match run.fault {
            Some(fault) => {
                faults.push(FaultRecord { testbed: i, label: testbeds[i].label(), fault });
                if let Some(streak) = tracker.observe_fault(i, fault) {
                    quarantined.push(QuarantineEvent {
                        testbed: i,
                        label: testbeds[i].label(),
                        hard_faults: streak,
                    });
                }
            }
            None => tracker.observe_success(i),
        }
        signatures[i] = Some(Signature::of(&run.result.status, &run.result.output));
    }

    let (outcome, groups) = vote_on_signatures_quorum(testbeds, &signatures, &policy.quorum);
    CaseObservation { outcome, groups, faults, retried, quarantined, active_runs, skipped_runs }
}

/// Executes the isolated runs for every unmasked testbed, serially or on a
/// scoped worker pool (index-ordered slots; workers never panic because the
/// isolation harness contains everything).
fn isolated_runs(
    program: &Program,
    testbeds: &[Testbed],
    options: &RunOptions,
    threads: usize,
    policy: &ExecPolicy,
    mask: &[bool],
) -> Vec<Option<IsolatedRun>> {
    let run_one =
        |i: usize| run_isolated(&testbeds[i], program, options, &policy.isolation, &policy.retry);
    if threads <= 1 || testbeds.len() < 2 {
        return mask.iter().enumerate().map(|(i, m)| m.then(|| run_one(i))).collect();
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let slots: Vec<Mutex<Option<IsolatedRun>>> =
        testbeds.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(testbeds.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= testbeds.len() {
                    break;
                }
                if !mask[i] {
                    continue;
                }
                *slots[i].lock().expect("isolated-run slot poisoned") = Some(run_one(i));
            });
        }
    });
    slots.into_iter().map(|slot| slot.into_inner().expect("isolated-run slot poisoned")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_engines::{latest_testbeds, Engine, EngineName};
    use comfort_syntax::parse;

    fn program(src: &str) -> Program {
        parse(src).expect("test source parses")
    }

    fn chaos_matrix(plan: FaultPlan) -> Vec<Testbed> {
        let mut beds = latest_testbeds();
        beds[0] = Testbed::new(Engine::latest(EngineName::V8), false).with_chaos(plan);
        beds
    }

    #[test]
    fn hardened_case_survives_certain_panic() {
        let beds = chaos_matrix(FaultPlan::new(5).panic_rate(1.0));
        let mut tracker = HealthTracker::new(&beds, 0);
        let obs = run_case_hardened(
            &program("print(1);"),
            &beds,
            &RunOptions::with_fuel(100_000),
            1,
            &ExecPolicy::default(),
            &mut tracker,
        );
        assert_eq!(obs.faults.len(), 1);
        assert_eq!(obs.faults[0].fault, FaultObserved::Panic);
        // The panicking testbed crashes and is outvoted by the other nine.
        let CaseOutcome::Deviations(devs) = obs.outcome else {
            panic!("expected deviation, got {:?}", obs.outcome);
        };
        assert_eq!(devs.len(), 1);
    }

    #[test]
    fn circuit_breaker_quarantines_after_streak() {
        let beds = chaos_matrix(FaultPlan::new(5).panic_rate(1.0).hang_millis(1));
        let mut tracker = HealthTracker::new(&beds, 2);
        let opts = RunOptions::with_fuel(100_000);
        let policy = ExecPolicy { quarantine_after: 2, ..ExecPolicy::default() };
        let first =
            run_case_hardened(&program("print(1);"), &beds, &opts, 1, &policy, &mut tracker);
        assert!(first.quarantined.is_empty());
        let second =
            run_case_hardened(&program("print(2);"), &beds, &opts, 1, &policy, &mut tracker);
        assert_eq!(second.quarantined.len(), 1, "second consecutive panic trips the breaker");
        assert_eq!(second.quarantined[0].testbed, 0);
        // From the third case on, testbed 0 is skipped and the rest vote.
        let third =
            run_case_hardened(&program("print(3);"), &beds, &opts, 1, &policy, &mut tracker);
        assert_eq!(third.skipped_runs, 1);
        assert_eq!(third.active_runs, beds.len() - 1);
        assert!(matches!(third.outcome, CaseOutcome::Pass), "{:?}", third.outcome);
        assert!(third.groups[0].degraded());
        let health = tracker.reports();
        assert!(health[0].quarantined);
        assert_eq!(health[0].quarantines, 1);
        assert_eq!(health[0].panics, 2);
        assert_eq!(health[0].runs_skipped, 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 2);
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_none());
        tracker.observe_success(0);
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_none(), "streak was reset");
        assert!(tracker.observe_fault(0, FaultObserved::Panic).is_some());
        assert!(!tracker.is_active(0));
    }

    #[test]
    fn soft_faults_do_not_trip_the_breaker() {
        let beds = latest_testbeds();
        let mut tracker = HealthTracker::new(&beds, 1);
        assert!(tracker.observe_fault(0, FaultObserved::OutputTruncated).is_none());
        assert!(tracker.is_active(0));
        assert_eq!(tracker.reports()[0].outputs_truncated, 1);
    }

    #[test]
    fn hardened_runs_are_thread_count_invariant() {
        let plan = FaultPlan::new(11).panic_rate(0.3).garbage_rate(0.2);
        let opts = RunOptions::with_fuel(100_000);
        let policy = ExecPolicy::default();
        let observe = |threads: usize| {
            let beds = chaos_matrix(plan.clone());
            let mut tracker = HealthTracker::new(&beds, policy.quarantine_after);
            let mut outcomes = Vec::new();
            for i in 0..12 {
                let obs = run_case_hardened(
                    &program(&format!("print({i});")),
                    &beds,
                    &opts,
                    threads,
                    &policy,
                    &mut tracker,
                );
                outcomes.push((format!("{:?}", obs.outcome), obs.faults, obs.active_runs));
            }
            (outcomes, tracker.reports())
        };
        assert_eq!(observe(1), observe(4));
    }

    #[test]
    fn health_merge_is_additive() {
        let mut a =
            TestbedHealth { label: "X".into(), panics: 2, runs_ok: 5, ..Default::default() };
        let b = TestbedHealth {
            label: "X".into(),
            panics: 1,
            hangs: 3,
            quarantines: 1,
            quarantined: true,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(a.panics, 3);
        assert_eq!(a.hangs, 3);
        assert_eq!(a.runs_ok, 5);
        assert_eq!(a.hard_faults(), 6);
        assert!(a.quarantined);
    }
}
