//! Crash-safe campaign checkpointing: the write-ahead shard journal,
//! config fingerprinting, and deterministic recovery.
//!
//! A 200-hour campaign (§6 of the paper) must survive its own process dying
//! — OOM, preemption, Ctrl-C — without losing completed work or corrupting
//! what was already on disk. This module provides the durability layer the
//! sharded executor builds on:
//!
//! * **Journal** ([`CheckpointJournal`]): an append-only file of framed
//!   records (`J1 <len> <crc32> <payload>`, one `write` per record — see
//!   [`comfort_telemetry::frame`]). A crash mid-append can tear only the
//!   final record; every earlier entry stays intact.
//! * **Fingerprint** ([`config_fingerprint`]): a stable FNV-1a hash over
//!   every configuration field that affects campaign *results*. A journal
//!   written under one fingerprint refuses to resume a campaign with
//!   another — resuming under a different config would silently produce a
//!   frankenreport.
//! * **Recovery** ([`CampaignCheckpoint::load`]): salvages every intact
//!   shard record, drops a torn or garbled tail (reported in a typed
//!   [`RecoveryReport`]), and validates fingerprint and shard plan.
//! * **Serialization**: full-fidelity JSON round-trip for
//!   [`CampaignReport`] (including `f64` fields, stored as exact bit
//!   patterns) and the shard's telemetry event stream, so a resumed
//!   campaign merges to a **bit-identical** report and replays a
//!   byte-identical logical event stream.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use comfort_engines::{ApiType, BugId, Component, EngineName};
use comfort_telemetry::event::json_string;
use comfort_telemetry::frame::{frame_line, read_framed};
use comfort_telemetry::json::{parse as parse_json, JsonValue};
use comfort_telemetry::{event_from_json, CampaignMetrics, CostHistogram, Event};

use crate::campaign::{Adjudication, BugReport, CampaignConfig, CampaignReport};
use crate::differential::DeviationKind;
use crate::filter::BugKey;
use crate::resilience::TestbedHealth;
use crate::testcase::Origin;

/// Journal format version (the `"version"` field of the header record).
pub const JOURNAL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

/// An incremental FNV-1a (64-bit) mixer.
///
/// Hand-rolled rather than `DefaultHasher` because the fingerprint is
/// *persisted*: it must be stable across Rust releases and platforms, which
/// the standard hasher does not promise.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mixes one integer (little-endian bytes).
    pub fn mix_u64(&mut self, v: u64) {
        self.mix_bytes(&v.to_le_bytes());
    }

    /// Mixes a string, length-prefixed so field boundaries can't alias.
    pub fn mix_str(&mut self, s: &str) {
        self.mix_u64(s.len() as u64);
        self.mix_bytes(s.as_bytes());
    }

    /// Mixes a float by exact bit pattern.
    pub fn mix_f64(&mut self, v: f64) {
        self.mix_u64(v.to_bits());
    }

    /// Mixes a bool.
    pub fn mix_bool(&mut self, v: bool) {
        self.mix_u64(u64::from(v));
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprints every [`CampaignConfig`] field that affects campaign
/// *results*.
///
/// Deliberately excluded — changing them must NOT invalidate a journal:
/// `threads` (scheduling only; the determinism contract guarantees identical
/// results at any width), `backend` (both execution backends are
/// bit-identical in every observable, so a journal written under one
/// resumes cleanly under the other), the telemetry `sink`, the `cancel`
/// token, the `deadline`, and the `checkpoint` path itself.
pub fn config_fingerprint(config: &CampaignConfig) -> u64 {
    let mut fp = Fingerprint::new();
    fp.mix_u64(JOURNAL_VERSION);
    fp.mix_u64(config.seed);
    fp.mix_u64(config.corpus_programs as u64);
    fp.mix_u64(config.lm.order as u64);
    fp.mix_u64(config.lm.bpe_merges as u64);
    fp.mix_u64(config.lm.top_k as u64);
    fp.mix_u64(config.lm.max_tokens as u64);
    fp.mix_u64(config.datagen.max_mutants_per_program as u64);
    fp.mix_u64(config.datagen.random_mutants as u64);
    fp.mix_u64(config.max_cases as u64);
    fp.mix_u64(config.fuel);
    fp.mix_f64(config.sim_seconds_per_case);
    fp.mix_bool(config.include_strict);
    fp.mix_bool(config.include_legacy);
    fp.mix_bool(config.reduce_cases);
    fp.mix_f64(config.keep_invalid_fraction);
    fp.mix_u64(config.shard_cases as u64);
    // Execution policy: isolation, retry, quarantine, probe, quorum.
    fp.mix_bool(config.exec.isolation.contain_panics);
    fp.mix_u64(config.exec.isolation.watchdog_millis.map_or(u64::MAX, |w| w));
    fp.mix_u64(config.exec.isolation.max_output_bytes as u64);
    fp.mix_u64(u64::from(config.exec.retry.max_retries));
    fp.mix_u64(config.exec.retry.backoff_base_millis);
    fp.mix_u64(u64::from(config.exec.quarantine_after));
    fp.mix_u64(u64::from(config.exec.probe_after));
    fp.mix_u64(config.exec.quorum.min_voters as u64);
    // Chaos plan (when any).
    fp.mix_bool(config.chaos.is_some());
    if let Some(chaos) = &config.chaos {
        fp.mix_u64(chaos.plan.seed);
        fp.mix_f64(chaos.plan.abort_rate);
        fp.mix_u64(chaos.plan.abort_signal as u64);
        fp.mix_f64(chaos.plan.panic_rate);
        fp.mix_f64(chaos.plan.hang_rate);
        fp.mix_f64(chaos.plan.garbage_rate);
        fp.mix_f64(chaos.plan.transient_rate);
        fp.mix_u64(u64::from(chaos.plan.transient_persistence));
        fp.mix_u64(chaos.plan.hang_millis);
        fp.mix_u64(chaos.plan.garbage_bytes as u64);
        fp.mix_u64(chaos.testbeds.len() as u64);
        for &i in &chaos.testbeds {
            fp.mix_u64(i as u64);
        }
    }
    fp.finish()
}

// ---------------------------------------------------------------------------
// Errors & recovery reporting
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be created, loaded, or trusted.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The campaign config has no checkpoint path.
    NoCheckpointPath,
    /// The journal has no intact header record.
    MissingHeader,
    /// An intact (CRC-verified) record failed to parse — a format bug or a
    /// file that isn't a checkpoint journal at all.
    BadRecord(String),
    /// The journal belongs to a different campaign configuration.
    FingerprintMismatch {
        /// Fingerprint of the config asking to resume.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// The journal's shard plan disagrees with the config's plan.
    PlanMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::NoCheckpointPath => {
                write!(f, "config has no checkpoint path (set CampaignConfig::checkpoint)")
            }
            CheckpointError::MissingHeader => write!(f, "journal has no intact header record"),
            CheckpointError::BadRecord(e) => write!(f, "malformed journal record: {e}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint {found:#018x} does not match config {expected:#018x}"
            ),
            CheckpointError::PlanMismatch(e) => write!(f, "journal shard plan mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What recovery salvaged (and dropped) from a journal.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Intact shard records salvaged.
    pub shards_salvaged: u64,
    /// Intact lease records salvaged (service-supervised journals only).
    pub leases_salvaged: u64,
    /// Bytes dropped from the journal's torn or garbled tail. Covers both
    /// frame-level tears (bad CRC/length) and CRC-intact records whose
    /// payload no longer parses — in either case the whole trailing run
    /// from the first bad record onward is dropped.
    pub dropped_tail_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_error: Option<String>,
    /// Journal size in bytes as read.
    pub journal_bytes: u64,
}

/// Resume provenance attached to a resumed campaign's report.
///
/// Lives *outside* [`CampaignMetrics`] on purpose: a resumed report must be
/// bit-identical to an uninterrupted one in every deterministic field, so
/// how-it-ran bookkeeping is carried separately and excluded from
/// [`report_to_json_deterministic`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResumeInfo {
    /// Path of the journal the campaign resumed from.
    pub resumed_from: String,
    /// Shards salvaged from the journal.
    pub shards_salvaged: u64,
    /// Shards re-run because the journal had no record for them.
    pub shards_rerun: u64,
    /// Total shards in the plan.
    pub shards_total: u64,
    /// Bytes dropped from the journal's torn tail during recovery.
    pub dropped_tail_bytes: u64,
    /// Fresh shard records appended to the journal by this run.
    pub checkpoints_written: u64,
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

/// One completed shard, as journaled: identity plus its full result and
/// buffered telemetry stream.
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Shard index in the plan (merge order).
    pub index: u64,
    /// The shard's derived seed (consistency-checked against the plan).
    pub seed: u64,
    /// The shard's case budget.
    pub cases: u64,
    /// The shard's campaign report.
    pub report: CampaignReport,
    /// The shard's buffered telemetry events, replayed on resume so the
    /// sink's logical stream matches an uninterrupted run.
    pub events: Vec<Event>,
}

impl ShardRecord {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"kind\":\"shard\",\"index\":{},\"seed\":{},\"cases\":{},\"report\":{},\"events\":[",
            self.index,
            self.seed,
            self.cases,
            report_to_json(&self.report)
        );
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }

    fn from_json(v: &JsonValue) -> Result<ShardRecord, String> {
        let events = match v.get("events") {
            Some(JsonValue::Array(items)) => {
                items.iter().map(event_from_json).collect::<Result<Vec<Event>, String>>()?
            }
            _ => return Err("missing events array".into()),
        };
        Ok(ShardRecord {
            index: req_u64(v, "index")?,
            seed: req_u64(v, "seed")?,
            cases: req_u64(v, "cases")?,
            report: report_from_json(v.get("report").ok_or("missing report")?)?,
            events,
        })
    }
}

/// A lease state transition, as journaled by the service supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// A worker took the shard under a TTL.
    Acquired,
    /// The supervisor heartbeat renewed a live worker's lease.
    Renewed,
    /// The worker completed the shard and gave the lease back.
    Released,
    /// The lease outlived its TTL without renewal (holder wedged or dead).
    Expired,
    /// The supervisor reclaimed the expired lease for reassignment,
    /// bumping the fencing sequence.
    Reclaimed,
}

impl LeaseAction {
    /// Stable snake-case label (the journal `"action"` field).
    pub fn as_str(self) -> &'static str {
        match self {
            LeaseAction::Acquired => "acquired",
            LeaseAction::Renewed => "renewed",
            LeaseAction::Released => "released",
            LeaseAction::Expired => "expired",
            LeaseAction::Reclaimed => "reclaimed",
        }
    }

    /// Parses the label produced by [`LeaseAction::as_str`].
    pub fn parse_label(s: &str) -> Option<LeaseAction> {
        [
            LeaseAction::Acquired,
            LeaseAction::Renewed,
            LeaseAction::Released,
            LeaseAction::Expired,
            LeaseAction::Reclaimed,
        ]
        .into_iter()
        .find(|a| a.as_str() == s)
    }
}

impl std::fmt::Display for LeaseAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lease state transition for one shard, journaled alongside shard
/// records so lease history survives a daemon crash.
///
/// Leases are **control-plane** data: they carry wall-clock timestamps and
/// exist only in supervised (service) executions, so recovery collects them
/// separately from shard results and they never participate in the
/// determinism contract. The `lease_seq` is a fencing token — it increments
/// on every (re)acquisition of the shard, and a completion reported under a
/// stale sequence is discarded by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRecord {
    /// The leased shard's index in the plan.
    pub shard: u64,
    /// The worker holding (or losing) the lease.
    pub worker: String,
    /// What happened.
    pub action: LeaseAction,
    /// Fencing sequence: increments on each acquisition of this shard.
    pub lease_seq: u64,
    /// TTL granted at acquisition/renewal, in milliseconds.
    pub ttl_millis: u64,
    /// Wall-clock timestamp of the transition (Unix epoch milliseconds).
    pub unix_millis: u64,
}

impl LeaseRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"lease\",\"shard\":{},\"worker\":{},\"action\":\"{}\",\
             \"lease_seq\":{},\"ttl_millis\":{},\"unix_millis\":{}}}",
            self.shard,
            json_string(&self.worker),
            self.action.as_str(),
            self.lease_seq,
            self.ttl_millis,
            self.unix_millis
        )
    }

    fn from_json(v: &JsonValue) -> Result<LeaseRecord, String> {
        let action_label = req_str(v, "action")?;
        Ok(LeaseRecord {
            shard: req_u64(v, "shard")?,
            worker: req_str(v, "worker")?,
            action: LeaseAction::parse_label(&action_label)
                .ok_or_else(|| format!("unknown lease action {action_label:?}"))?,
            lease_seq: req_u64(v, "lease_seq")?,
            ttl_millis: req_u64(v, "ttl_millis")?,
            unix_millis: req_u64(v, "unix_millis")?,
        })
    }
}

/// The salvaged content of a checkpoint journal.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// Config fingerprint from the journal header.
    pub fingerprint: u64,
    /// Total shards in the journaled plan.
    pub shards_total: u64,
    /// Salvaged shard records, sorted by index (duplicates dropped, first
    /// record wins — a re-run may legitimately re-append a shard).
    pub shards: Vec<ShardRecord>,
    /// Salvaged lease records, in journal (= chronological) order. Empty
    /// for journals written by unsupervised (library/CLI) runs.
    pub leases: Vec<LeaseRecord>,
}

impl CampaignCheckpoint {
    /// Loads and salvages a journal: every intact leading record is kept
    /// and the torn or garbled tail is dropped, as described in the
    /// returned [`RecoveryReport`].
    ///
    /// Salvage operates at two levels. Frame-level damage (bad CRC or
    /// length) already drops the whole trailing run of lines starting at
    /// the first bad one. A record that passes its CRC but whose *payload*
    /// fails to parse — a format bug, bit rot inside a page the CRC update
    /// never covered, or a foreign record kind — is treated the same way:
    /// that record **and every record after it** are dropped as the garbled
    /// tail, rather than poisoning the load with a hard error. Only an
    /// unreadable header is unrecoverable.
    pub fn load(path: &Path) -> Result<(CampaignCheckpoint, RecoveryReport), CheckpointError> {
        let bytes = std::fs::read(path)?;
        let framed = read_framed(&bytes);
        let mut recovery = RecoveryReport {
            dropped_tail_bytes: framed.dropped_tail_bytes as u64,
            tail_error: framed.tail_error.clone(),
            journal_bytes: bytes.len() as u64,
            ..RecoveryReport::default()
        };

        if framed.records.is_empty() {
            return Err(CheckpointError::MissingHeader);
        }
        let header = parse_json(&framed.records[0]).map_err(CheckpointError::BadRecord)?;
        if header.get("kind").and_then(JsonValue::as_str) != Some("header") {
            return Err(CheckpointError::MissingHeader);
        }
        let fingerprint = req_u64(&header, "fingerprint").map_err(CheckpointError::BadRecord)?;
        let shards_total = req_u64(&header, "shards").map_err(CheckpointError::BadRecord)?;

        enum Parsed {
            // Boxed: a shard record embeds a full report, dwarfing a lease.
            Shard(Box<ShardRecord>),
            Lease(LeaseRecord),
        }
        let mut shards: Vec<ShardRecord> = Vec::new();
        let mut leases: Vec<LeaseRecord> = Vec::new();
        for (i, line) in framed.records.iter().enumerate().skip(1) {
            let parsed = parse_json(line).and_then(|value| {
                match value.get("kind").and_then(JsonValue::as_str) {
                    Some("shard") => {
                        ShardRecord::from_json(&value).map(|r| Parsed::Shard(Box::new(r)))
                    }
                    Some("lease") => LeaseRecord::from_json(&value).map(Parsed::Lease),
                    other => Err(format!("unknown record kind {other:?}")),
                }
            });
            match parsed {
                Ok(Parsed::Shard(record)) => {
                    if !shards.iter().any(|r| r.index == record.index) {
                        shards.push(*record);
                    }
                }
                Ok(Parsed::Lease(lease)) => leases.push(lease),
                Err(e) => {
                    // Garbled payload: drop this record and the whole run
                    // after it. `offsets[i]` is the byte where the bad
                    // record's line starts.
                    recovery.dropped_tail_bytes = recovery.journal_bytes - framed.offsets[i] as u64;
                    recovery.tail_error = Some(format!("garbled record {i}: {e}"));
                    break;
                }
            }
        }
        shards.sort_by_key(|r| r.index);
        recovery.shards_salvaged = shards.len() as u64;
        recovery.leases_salvaged = leases.len() as u64;
        Ok((CampaignCheckpoint { fingerprint, shards_total, shards, leases }, recovery))
    }

    /// The last journaled lease transition per shard, in shard order — the
    /// state the supervisor rebuilds after a restart. A shard whose latest
    /// action is [`LeaseAction::Acquired`] or [`LeaseAction::Renewed`] was
    /// held when the journal stopped; unless a shard *record* for it was
    /// also salvaged, its holder died mid-shard and the lease must expire
    /// before the shard is reassigned.
    pub fn latest_leases(&self) -> Vec<&LeaseRecord> {
        let mut latest: Vec<&LeaseRecord> = Vec::new();
        for lease in &self.leases {
            match latest.iter_mut().find(|l| l.shard == lease.shard) {
                Some(slot) => *slot = lease,
                None => latest.push(lease),
            }
        }
        latest.sort_by_key(|l| l.shard);
        latest
    }
}

/// The write side of the journal: framed, checksummed, append-only.
///
/// Every append is a **single** `write` call followed by `sync_data`, so a
/// crash at any byte offset leaves all previously appended records intact
/// and at most one torn tail line for recovery to drop.
pub struct CheckpointJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl std::fmt::Debug for CheckpointJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckpointJournal({})", self.path.display())
    }
}

impl CheckpointJournal {
    /// Creates (truncating) a fresh journal and writes its header record.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        shards_total: u64,
    ) -> Result<CheckpointJournal, CheckpointError> {
        // `O_APPEND` from birth: a supervisor that later shares this
        // journal with worker processes must never write at a private
        // offset — every handle's writes must land atomically at
        // end-of-file. Truncate first (O_TRUNC and O_APPEND cannot be
        // combined portably), then reopen in append mode.
        std::fs::File::create(path)?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        let journal = CheckpointJournal { path: path.to_path_buf(), file: Mutex::new(file) };
        let header = format!(
            "{{\"kind\":\"header\",\"version\":{JOURNAL_VERSION},\"fingerprint\":{fingerprint},\"shards\":{shards_total}}}"
        );
        journal.append_payload(&header)?;
        Ok(journal)
    }

    /// Opens an existing journal for appending (after a successful
    /// [`CampaignCheckpoint::load`]). A torn tail salvage truncates the
    /// file back to its intact prefix first, so new appends start on a
    /// clean record boundary.
    pub fn open_append(
        path: &Path,
        recovery: &RecoveryReport,
    ) -> Result<CheckpointJournal, CheckpointError> {
        if recovery.dropped_tail_bytes > 0 {
            let repair = std::fs::OpenOptions::new().write(true).open(path)?;
            repair.set_len(recovery.journal_bytes - recovery.dropped_tail_bytes)?;
        }
        // `O_APPEND`: the kernel positions every write at end-of-file
        // atomically, so appends from this handle interleave safely with a
        // worker process appending to the same journal.
        CheckpointJournal::open_append_shared(path)
    }

    /// Opens an existing journal for append-only writes *without* torn-tail
    /// repair — the opener for worker processes appending concurrently with
    /// a supervisor. Truncation is the supervisor's job (done before any
    /// worker is spawned); a worker must never resize a shared journal.
    pub fn open_append_shared(path: &Path) -> Result<CheckpointJournal, CheckpointError> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointJournal { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    /// Durably appends one completed shard. Returns the journal size in
    /// bytes after the append.
    pub fn append_shard(&self, record: &ShardRecord) -> Result<u64, CheckpointError> {
        self.append_payload(&record.to_json())
    }

    /// Durably appends one lease transition (service supervisor only).
    /// Returns the journal size in bytes after the append.
    pub fn append_lease(&self, lease: &LeaseRecord) -> Result<u64, CheckpointError> {
        self.append_payload(&lease.to_json())
    }

    fn append_payload(&self, payload: &str) -> Result<u64, CheckpointError> {
        let line = frame_line(payload).map_err(|e| CheckpointError::BadRecord(e.to_string()))?;
        let mut file = self.file.lock().expect("journal poisoned");
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(file.metadata().map(|m| m.len()).unwrap_or(0))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Report serialization
// ---------------------------------------------------------------------------

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing u64 field {key:?}"))
}

/// Like [`req_u64`] but defaults to 0 when the field is absent — used for
/// counters that are serialized only when nonzero (and for reading
/// checkpoints written before those counters existed).
fn opt_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(0),
        Some(raw) => raw.as_u64().ok_or_else(|| format!("field {key:?} is not a u64")),
    }
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key).and_then(JsonValue::as_bool).ok_or_else(|| format!("missing bool field {key:?}"))
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// `f64` as its exact bit pattern (a `u64`), so serialized reports
/// round-trip bit-identically — decimal formatting would not.
fn f64_bits(v: f64) -> u64 {
    v.to_bits()
}

fn req_f64_bits(v: &JsonValue, key: &str) -> Result<f64, String> {
    req_u64(v, key).map(f64::from_bits)
}

/// Renders a [`CampaignReport`] as one JSON object with **full fidelity**:
/// every counter, the complete per-stage metrics (wall clocks and
/// histograms included), the health ledger, every bug report, and the
/// `interrupted` / `resume` provenance.
pub fn report_to_json(report: &CampaignReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"cases_run\":{},\"parse_errors\":{},\"passes\":{},\"deviations_observed\":{},\
         \"duplicates_filtered\":{},\"sim_hours_bits\":{},\"interrupted\":{}",
        report.cases_run,
        report.parse_errors,
        report.passes,
        report.deviations_observed,
        report.duplicates_filtered,
        f64_bits(report.sim_hours),
        report.interrupted
    );
    if let Some(resume) = &report.resume {
        let _ = write!(
            out,
            ",\"resume\":{{\"resumed_from\":{},\"shards_salvaged\":{},\"shards_rerun\":{},\
             \"shards_total\":{},\"dropped_tail_bytes\":{},\"checkpoints_written\":{}}}",
            json_string(&resume.resumed_from),
            resume.shards_salvaged,
            resume.shards_rerun,
            resume.shards_total,
            resume.dropped_tail_bytes,
            resume.checkpoints_written
        );
    }
    out.push_str(",\"metrics\":");
    out.push_str(&metrics_to_json(&report.metrics));
    out.push_str(",\"health\":[");
    for (i, h) in report.health.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&health_to_json(h));
    }
    out.push_str("],\"bugs\":[");
    for (i, bug) in report.bugs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&bug_to_json(bug));
    }
    out.push_str("]}");
    out
}

/// [`report_to_json`] restricted to the **determinism contract**: wall-clock
/// metrics are zeroed and the `interrupted` / `resume` provenance is
/// stripped, so a resumed report and an uninterrupted one render
/// byte-identically when (and only when) their logical content matches.
pub fn report_to_json_deterministic(report: &CampaignReport) -> String {
    let mut stripped = report.clone();
    stripped.metrics = stripped.metrics.without_wall_clock();
    stripped.interrupted = false;
    stripped.resume = None;
    report_to_json(&stripped)
}

/// A 64-bit checksum over the deterministic view of a campaign report
/// (FNV-1a over [`report_to_json_deterministic`]).
///
/// Two runs of the same workload — at any thread count, fresh or resumed —
/// produce the same checksum if and only if their reports agree in every
/// deterministic field. The `comfort-bench` harness embeds it in
/// `BENCH_*.json` to prove the timed sweep measured bit-identical work.
pub fn report_checksum(report: &CampaignReport) -> u64 {
    let mut fp = Fingerprint::new();
    fp.mix_str(&report_to_json_deterministic(report));
    fp.finish()
}

/// Parses a report rendered by [`report_to_json`].
pub fn report_from_json(v: &JsonValue) -> Result<CampaignReport, String> {
    let health = match v.get("health") {
        Some(JsonValue::Array(items)) => {
            items.iter().map(health_from_json).collect::<Result<Vec<TestbedHealth>, String>>()?
        }
        _ => return Err("missing health array".into()),
    };
    let bugs = match v.get("bugs") {
        Some(JsonValue::Array(items)) => {
            items.iter().map(bug_from_json).collect::<Result<Vec<BugReport>, String>>()?
        }
        _ => return Err("missing bugs array".into()),
    };
    let resume = match v.get("resume") {
        None | Some(JsonValue::Null) => None,
        Some(r) => Some(ResumeInfo {
            resumed_from: req_str(r, "resumed_from")?,
            shards_salvaged: req_u64(r, "shards_salvaged")?,
            shards_rerun: req_u64(r, "shards_rerun")?,
            shards_total: req_u64(r, "shards_total")?,
            dropped_tail_bytes: req_u64(r, "dropped_tail_bytes")?,
            checkpoints_written: req_u64(r, "checkpoints_written")?,
        }),
    };
    Ok(CampaignReport {
        cases_run: req_u64(v, "cases_run")?,
        parse_errors: req_u64(v, "parse_errors")?,
        passes: req_u64(v, "passes")?,
        deviations_observed: req_u64(v, "deviations_observed")?,
        duplicates_filtered: req_u64(v, "duplicates_filtered")?,
        bugs,
        sim_hours: req_f64_bits(v, "sim_hours_bits")?,
        metrics: metrics_from_json(v.get("metrics").ok_or("missing metrics")?)?,
        health,
        interrupted: req_bool(v, "interrupted")?,
        resume,
    })
}

fn metrics_to_json(m: &CampaignMetrics) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"stages\":[");
    for (i, stage) in m.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"invocations\":{},\"items\":{},\"logical_cost\":{},\"wall_nanos\":{},\"hist\":[",
            stage.invocations, stage.items, stage.logical_cost, stage.wall_nanos
        );
        for (j, bucket) in stage.cost_histogram.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{bucket}");
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"cases_generated\":{},\"cases_rejected\":{},\"cases_run\":{},\
         \"deviations_observed\":{},\"bugs_reported\":{},\"bugs_deduped\":{},\
         \"faults_observed\":{},\"runs_retried\":{},\"runs_skipped\":{},\
         \"testbeds_quarantined\":{},\"testbeds_reinstated\":{},\"quorum_degraded\":{},\
         \"shards\":{}",
        m.cases_generated,
        m.cases_rejected,
        m.cases_run,
        m.deviations_observed,
        m.bugs_reported,
        m.bugs_deduped,
        m.faults_observed,
        m.runs_retried,
        m.runs_skipped,
        m.testbeds_quarantined,
        m.testbeds_reinstated,
        m.quorum_degraded,
        m.shards
    );
    // Mirrors `CampaignMetrics::to_json`: dedup counters appear only when
    // nonzero so pre-existing checkpoints and determinism-stripped forms
    // keep their byte layout.
    if m.executions_saved > 0 {
        let _ = write!(out, ",\"executions_saved\":{}", m.executions_saved);
    }
    if m.equivalence_classes > 0 {
        let _ = write!(out, ",\"equivalence_classes\":{}", m.equivalence_classes);
    }
    out.push('}');
    out
}

fn metrics_from_json(v: &JsonValue) -> Result<CampaignMetrics, String> {
    let mut m = CampaignMetrics::default();
    let Some(JsonValue::Array(stages)) = v.get("stages") else {
        return Err("missing stages array".into());
    };
    if stages.len() != m.stages.len() {
        return Err(format!("expected {} stages, got {}", m.stages.len(), stages.len()));
    }
    for (slot, s) in m.stages.iter_mut().zip(stages) {
        slot.invocations = req_u64(s, "invocations")?;
        slot.items = req_u64(s, "items")?;
        slot.logical_cost = req_u64(s, "logical_cost")?;
        slot.wall_nanos = req_u64(s, "wall_nanos")?;
        let Some(JsonValue::Array(hist)) = s.get("hist") else {
            return Err("missing hist array".into());
        };
        if hist.len() != CostHistogram::BUCKETS {
            return Err(format!(
                "expected {} hist buckets, got {}",
                CostHistogram::BUCKETS,
                hist.len()
            ));
        }
        for (bucket, h) in slot.cost_histogram.buckets.iter_mut().zip(hist) {
            *bucket = h.as_u64().ok_or("hist bucket not a u64")?;
        }
    }
    m.cases_generated = req_u64(v, "cases_generated")?;
    m.cases_rejected = req_u64(v, "cases_rejected")?;
    m.cases_run = req_u64(v, "cases_run")?;
    m.deviations_observed = req_u64(v, "deviations_observed")?;
    m.bugs_reported = req_u64(v, "bugs_reported")?;
    m.bugs_deduped = req_u64(v, "bugs_deduped")?;
    m.faults_observed = req_u64(v, "faults_observed")?;
    m.runs_retried = req_u64(v, "runs_retried")?;
    m.runs_skipped = req_u64(v, "runs_skipped")?;
    m.testbeds_quarantined = req_u64(v, "testbeds_quarantined")?;
    m.testbeds_reinstated = req_u64(v, "testbeds_reinstated")?;
    m.quorum_degraded = req_u64(v, "quorum_degraded")?;
    m.shards = req_u64(v, "shards")?;
    m.executions_saved = opt_u64(v, "executions_saved")?;
    m.equivalence_classes = opt_u64(v, "equivalence_classes")?;
    Ok(m)
}

fn health_to_json(h: &TestbedHealth) -> String {
    format!(
        "{{\"label\":{},\"runs_ok\":{},\"panics\":{},\"hangs\":{},\"transients_exhausted\":{},\
         \"outputs_truncated\":{},\"retries\":{},\"runs_skipped\":{},\"quarantines\":{},\
         \"reinstatements\":{},\"quarantined\":{}}}",
        json_string(&h.label),
        h.runs_ok,
        h.panics,
        h.hangs,
        h.transients_exhausted,
        h.outputs_truncated,
        h.retries,
        h.runs_skipped,
        h.quarantines,
        h.reinstatements,
        h.quarantined
    )
}

fn health_from_json(v: &JsonValue) -> Result<TestbedHealth, String> {
    Ok(TestbedHealth {
        label: req_str(v, "label")?,
        runs_ok: req_u64(v, "runs_ok")?,
        panics: req_u64(v, "panics")?,
        hangs: req_u64(v, "hangs")?,
        transients_exhausted: req_u64(v, "transients_exhausted")?,
        outputs_truncated: req_u64(v, "outputs_truncated")?,
        retries: req_u64(v, "retries")?,
        runs_skipped: req_u64(v, "runs_skipped")?,
        quarantines: req_u64(v, "quarantines")?,
        reinstatements: req_u64(v, "reinstatements")?,
        quarantined: req_bool(v, "quarantined")?,
    })
}

fn bug_to_json(bug: &BugReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"engine\":{},\"api\":{},\"behavior\":{},\"sim_hours_bits\":{},\"test_case\":{},\
         \"origin\":{},\"earliest_version\":{},\"kind\":{},\"strict_only\":{},\"component\":{},\
         \"api_type\":{},\"matched_bug\":{}",
        json_string(bug.key.engine.as_str()),
        bug.key.api.as_deref().map_or_else(|| "null".to_string(), json_string),
        json_string(&bug.key.behavior),
        f64_bits(bug.sim_hours),
        json_string(&bug.test_case),
        json_string(bug.origin.slug()),
        json_string(&bug.earliest_version),
        json_string(bug.kind.as_str()),
        bug.strict_only,
        json_string(bug.component.as_str()),
        json_string(bug.api_type.as_str()),
        bug.matched_bug.map_or_else(|| "null".to_string(), |b| b.0.to_string()),
    );
    let a = &bug.adjudication;
    let _ = write!(
        out,
        ",\"adjudication\":{{\"verified\":{},\"fixed\":{},\"rejected\":{},\
         \"accepted_test262\":{},\"novel\":{}}}}}",
        a.verified, a.fixed, a.rejected, a.accepted_test262, a.novel
    );
    out
}

fn bug_from_json(v: &JsonValue) -> Result<BugReport, String> {
    let engine_label = req_str(v, "engine")?;
    let engine = EngineName::parse_label(&engine_label)
        .ok_or_else(|| format!("unknown engine {engine_label:?}"))?;
    let api = match v.get("api") {
        None | Some(JsonValue::Null) => None,
        Some(a) => Some(a.as_str().ok_or("api not a string")?.to_string()),
    };
    let origin_slug = req_str(v, "origin")?;
    let kind_label = req_str(v, "kind")?;
    let component_label = req_str(v, "component")?;
    let api_type_label = req_str(v, "api_type")?;
    let adj = v.get("adjudication").ok_or("missing adjudication")?;
    Ok(BugReport {
        key: BugKey { engine, api, behavior: req_str(v, "behavior")? },
        sim_hours: req_f64_bits(v, "sim_hours_bits")?,
        test_case: req_str(v, "test_case")?,
        origin: Origin::from_slug(&origin_slug)
            .ok_or_else(|| format!("unknown origin {origin_slug:?}"))?,
        earliest_version: req_str(v, "earliest_version")?,
        kind: DeviationKind::parse_label(&kind_label)
            .ok_or_else(|| format!("unknown deviation kind {kind_label:?}"))?,
        strict_only: req_bool(v, "strict_only")?,
        component: Component::parse_label(&component_label)
            .ok_or_else(|| format!("unknown component {component_label:?}"))?,
        api_type: ApiType::parse_label(&api_type_label)
            .ok_or_else(|| format!("unknown api type {api_type_label:?}"))?,
        matched_bug: match v.get("matched_bug") {
            None | Some(JsonValue::Null) => None,
            Some(b) => Some(BugId(b.as_u64().ok_or("matched_bug not a u64")? as u32)),
        },
        adjudication: Adjudication {
            verified: req_bool(adj, "verified")?,
            fixed: req_bool(adj, "fixed")?,
            rejected: req_bool(adj, "rejected")?,
            accepted_test262: req_bool(adj, "accepted_test262")?,
            novel: req_bool(adj, "novel")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_telemetry::{EventKind, LogicalClock};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comfort-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample_report() -> CampaignReport {
        let mut metrics = CampaignMetrics::new();
        metrics.cases_run = 20;
        metrics.stages[3].invocations = 20;
        metrics.stages[3].wall_nanos = 123_456;
        metrics.stages[3].cost_histogram.record(7);
        CampaignReport {
            cases_run: 20,
            parse_errors: 1,
            passes: 15,
            deviations_observed: 4,
            duplicates_filtered: 2,
            bugs: vec![BugReport {
                key: BugKey {
                    engine: EngineName::Rhino,
                    api: Some("substr".into()),
                    behavior: "WrongOutput".into(),
                },
                sim_hours: 0.1 + 0.2, // deliberately non-representable exactly
                test_case: "print('x'.substr(6, undefined));".into(),
                origin: Origin::EcmaMutation,
                earliest_version: "Rhino v1.7R3".into(),
                kind: DeviationKind::WrongOutput,
                strict_only: false,
                component: Component::RegexEngine,
                api_type: ApiType::Eval,
                matched_bug: Some(BugId(0)),
                adjudication: Adjudication {
                    verified: true,
                    fixed: false,
                    rejected: false,
                    accepted_test262: true,
                    novel: true,
                },
            }],
            sim_hours: 20.0 * 2.88 / 3600.0,
            metrics,
            health: vec![TestbedHealth {
                label: "V8 v8.8 [chaos]".into(),
                runs_ok: 18,
                panics: 2,
                quarantines: 1,
                reinstatements: 1,
                quarantined: false,
                ..TestbedHealth::default()
            }],
            interrupted: false,
            resume: None,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let config = CampaignConfig::default();
        // Stable across calls (and, by construction, across platforms).
        assert_eq!(config_fingerprint(&config), config_fingerprint(&config));
        // Sensitive to result-affecting fields...
        let mut changed = config.clone();
        changed.seed ^= 1;
        assert_ne!(config_fingerprint(&config), config_fingerprint(&changed));
        let mut changed = config.clone();
        changed.max_cases += 1;
        assert_ne!(config_fingerprint(&config), config_fingerprint(&changed));
        // ...but not to scheduling/observability knobs.
        let mut threads = config.clone();
        threads.threads = 8;
        assert_eq!(config_fingerprint(&config), config_fingerprint(&threads));
    }

    #[test]
    fn report_roundtrips_bit_exactly() {
        let report = sample_report();
        let json = report_to_json(&report);
        let back = report_from_json(&parse_json(&json).expect("parses")).expect("converts");
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
        assert_eq!(report.sim_hours.to_bits(), back.sim_hours.to_bits());
        assert_eq!(report.bugs[0].sim_hours.to_bits(), back.bugs[0].sim_hours.to_bits());
        assert_eq!(report_to_json(&back), json, "second render is byte-identical");
    }

    #[test]
    fn deterministic_rendering_strips_provenance_and_wall_clock() {
        let mut report = sample_report();
        let baseline = report_to_json_deterministic(&report);
        report.interrupted = true;
        report.resume = Some(ResumeInfo { shards_salvaged: 2, ..ResumeInfo::default() });
        report.metrics.stages[3].wall_nanos = 1;
        assert_eq!(report_to_json_deterministic(&report), baseline);
        assert_ne!(report_to_json(&report), baseline);
    }

    #[test]
    fn journal_roundtrips_and_salvages_torn_tail() {
        let dir = temp_dir("journal");
        let path = dir.join("campaign.ckpt");
        let record = |index: u64| ShardRecord {
            index,
            seed: u64::MAX - index, // exercise > 2^53 integers
            cases: 20,
            report: sample_report(),
            events: vec![Event {
                clock: LogicalClock { shard: index, seq: 0 },
                kind: EventKind::ShardStarted { seed: u64::MAX - index, case_budget: 20 },
            }],
        };
        {
            let journal = CheckpointJournal::create(&path, 0xFEED, 3).expect("create");
            journal.append_shard(&record(0)).expect("append 0");
            journal.append_shard(&record(1)).expect("append 1");
        }
        // Tear the tail mid-append.
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"J1 999 deadbeef {\"kind\":\"shard\",\"in");
        std::fs::write(&path, &bytes).unwrap();

        let (checkpoint, recovery) = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(checkpoint.fingerprint, 0xFEED);
        assert_eq!(checkpoint.shards_total, 3);
        assert_eq!(checkpoint.shards.len(), 2);
        assert_eq!(checkpoint.shards[0].index, 0);
        assert_eq!(checkpoint.shards[1].seed, u64::MAX - 1);
        assert_eq!(recovery.dropped_tail_bytes, bytes.len() as u64 - intact);
        assert!(recovery.tail_error.is_some());

        // Re-open for append: the torn tail is truncated away and a new
        // record lands cleanly.
        {
            let journal = CheckpointJournal::open_append(&path, &recovery).expect("open");
            journal.append_shard(&record(2)).expect("append 2");
        }
        let (checkpoint, recovery) = CampaignCheckpoint::load(&path).expect("reload");
        assert_eq!(checkpoint.shards.len(), 3);
        assert_eq!(recovery.dropped_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_records_roundtrip_and_rebuild_state() {
        let dir = temp_dir("lease");
        let path = dir.join("campaign.ckpt");
        let lease = |shard, action, lease_seq| LeaseRecord {
            shard,
            worker: format!("worker-{shard}"),
            action,
            lease_seq,
            ttl_millis: 500,
            unix_millis: 1_700_000_000_000 + lease_seq,
        };
        {
            let journal = CheckpointJournal::create(&path, 0xBEEF, 3).expect("create");
            journal.append_lease(&lease(0, LeaseAction::Acquired, 1)).unwrap();
            journal.append_lease(&lease(1, LeaseAction::Acquired, 1)).unwrap();
            journal.append_lease(&lease(0, LeaseAction::Released, 1)).unwrap();
            journal.append_lease(&lease(1, LeaseAction::Expired, 1)).unwrap();
            journal.append_lease(&lease(1, LeaseAction::Reclaimed, 1)).unwrap();
        }
        let (checkpoint, recovery) = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(checkpoint.leases.len(), 5);
        assert_eq!(recovery.leases_salvaged, 5);
        assert_eq!(recovery.shards_salvaged, 0);
        let latest = checkpoint.latest_leases();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].action, LeaseAction::Released);
        assert_eq!(latest[1].action, LeaseAction::Reclaimed);
        // Lease records interleave freely with shard records.
        {
            let (_, recovery) = CampaignCheckpoint::load(&path).unwrap();
            let journal = CheckpointJournal::open_append(&path, &recovery).unwrap();
            journal
                .append_shard(&ShardRecord {
                    index: 1,
                    seed: 7,
                    cases: 10,
                    report: sample_report(),
                    events: Vec::new(),
                })
                .unwrap();
        }
        let (checkpoint, _) = CampaignCheckpoint::load(&path).expect("reload");
        assert_eq!(checkpoint.shards.len(), 1);
        assert_eq!(checkpoint.leases.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbled_record_run_is_dropped_not_fatal() {
        let dir = temp_dir("garbled");
        let path = dir.join("campaign.ckpt");
        let record = |index: u64| ShardRecord {
            index,
            seed: index,
            cases: 10,
            report: sample_report(),
            events: Vec::new(),
        };
        {
            let journal = CheckpointJournal::create(&path, 5, 4).expect("create");
            journal.append_shard(&record(0)).expect("append");
        }
        let intact = std::fs::metadata(&path).unwrap().len() as usize;
        // Append a run of CRC-intact but garbled records: an unknown kind,
        // unparseable JSON, and a shard record with fields missing — then a
        // frame-level torn write on top.
        let mut bytes = std::fs::read(&path).unwrap();
        for payload in ["{\"kind\":\"wat\"}", "{not json", "{\"kind\":\"shard\",\"index\":1}"] {
            bytes.extend_from_slice(frame_line(payload).unwrap().as_bytes());
        }
        bytes.extend_from_slice(b"J1 999 deadbeef {\"kind\":\"shard\",\"in");
        std::fs::write(&path, &bytes).unwrap();

        let (checkpoint, recovery) = CampaignCheckpoint::load(&path).expect("salvages");
        assert_eq!(checkpoint.shards.len(), 1, "the intact prefix survives");
        assert_eq!(
            recovery.dropped_tail_bytes as usize,
            bytes.len() - intact,
            "the whole garbled run is dropped, not just the final record"
        );
        assert!(recovery.tail_error.as_deref().unwrap().contains("garbled record"));

        // open_append truncates back to the intact prefix, so the journal
        // is clean again and appends work.
        {
            let journal = CheckpointJournal::open_append(&path, &recovery).expect("open");
            journal.append_shard(&record(1)).expect("append after salvage");
        }
        let (checkpoint, recovery) = CampaignCheckpoint::load(&path).expect("reload");
        assert_eq!(checkpoint.shards.len(), 2);
        assert_eq!(recovery.dropped_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_loads_an_intact_prefix() {
        let dir = temp_dir("trunc");
        let path = dir.join("campaign.ckpt");
        let record = |index: u64| ShardRecord {
            index,
            seed: index * 7,
            cases: 10,
            report: sample_report(),
            events: Vec::new(),
        };
        {
            let journal = CheckpointJournal::create(&path, 1, 2).expect("create");
            journal.append_shard(&record(0)).expect("append");
            journal.append_shard(&record(1)).expect("append");
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut_path = dir.join("cut.ckpt");
        // Sample a spread of cut points (every byte is slow in debug builds
        // for a multi-KB journal; a stride still covers all line regions).
        for cut in (0..bytes.len()).step_by(37).chain([bytes.len() - 1]) {
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            match CampaignCheckpoint::load(&cut_path) {
                Ok((checkpoint, _)) => {
                    assert!(checkpoint.shards.len() <= 2, "cut at {cut}");
                    for (i, shard) in checkpoint.shards.iter().enumerate() {
                        assert_eq!(shard.index, i as u64, "cut at {cut}");
                    }
                }
                Err(CheckpointError::MissingHeader) => {
                    // The cut fell inside the header line — nothing salvaged,
                    // and recovery said so instead of fabricating records.
                }
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
