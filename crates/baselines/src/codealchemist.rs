//! CodeAlchemist (Han et al., NDSS 2019) reimplementation.
//!
//! CodeAlchemist breaks seed programs into **code bricks** tagged with
//! assembly constraints — the variables a brick *uses* (preconditions) and
//! *defines* (postconditions) — then assembles new programs by chaining
//! bricks whose constraints are satisfied, renaming variables to match.

use std::collections::BTreeSet;

use comfort_core::Fuzzer;
use comfort_syntax::ast::{Stmt, StmtKind};
use comfort_syntax::{parse, print_stmt, visit};
use rand::rngs::StdRng;
use rand::Rng;

/// A code brick: one statement plus its def/use constraint tags.
#[derive(Debug, Clone)]
pub struct Brick {
    /// Statement source text.
    pub text: String,
    /// Variables the brick defines.
    pub defines: Vec<String>,
    /// Free variables the brick needs already defined.
    pub uses: Vec<String>,
}

/// The CodeAlchemist-style assembler.
pub struct CodeAlchemist {
    bricks: Vec<Brick>,
    bricks_per_program: usize,
}

impl CodeAlchemist {
    /// Shatters the standard seed corpus into bricks.
    pub fn new(seed: u64, corpus_programs: usize) -> Self {
        let corpus = comfort_corpus::training_corpus(seed, corpus_programs);
        let mut bricks = Vec::new();
        for program_src in &corpus {
            let Ok(program) = parse(program_src) else { continue };
            for stmt in &program.body {
                if let Some(b) = brick_of(stmt) {
                    bricks.push(b);
                }
                // The real tool shatters whole programs; statements inside
                // function bodies become bricks too (their parameters turn
                // into use-constraints).
                if let StmtKind::FunctionDecl(f) = &stmt.kind {
                    for inner in &f.body {
                        if let Some(b) = brick_of(inner) {
                            bricks.push(b);
                        }
                    }
                }
                if let StmtKind::Decl { decls, .. } = &stmt.kind {
                    for d in decls {
                        if let Some(comfort_syntax::Expr {
                            kind: comfort_syntax::ExprKind::Function(f),
                            ..
                        }) = &d.init
                        {
                            for inner in &f.body {
                                if let Some(b) = brick_of(inner) {
                                    bricks.push(b);
                                }
                            }
                        }
                    }
                }
            }
        }
        CodeAlchemist { bricks, bricks_per_program: 7 }
    }

    /// Number of harvested bricks.
    pub fn brick_count(&self) -> usize {
        self.bricks.len()
    }
}

/// Tags one top-level statement as a brick.
fn brick_of(stmt: &Stmt) -> Option<Brick> {
    // Bricks are declaration or expression statements (control flow stays
    // glued to its context in the real tool too).
    let defines: Vec<String> = match &stmt.kind {
        StmtKind::Decl { decls, .. } => decls.iter().map(|d| d.name.clone()).collect(),
        StmtKind::FunctionDecl(f) => vec![f.name.clone().expect("named decl")],
        StmtKind::Expr(_) => Vec::new(),
        _ => return None,
    };
    // Free uses: identifiers referenced that the brick does not define
    // itself (approximation: globals and parameters are filtered later).
    struct Uses {
        names: BTreeSet<String>,
    }
    impl visit::Visitor for Uses {
        fn visit_expr(&mut self, e: &comfort_syntax::Expr) {
            if let comfort_syntax::ExprKind::Ident(n) = &e.kind {
                self.names.insert(n.clone());
            }
        }
    }
    let mut u = Uses { names: BTreeSet::new() };
    visit::walk_stmt(stmt, &mut u);
    let builtin = |n: &str| {
        matches!(
            n,
            "print"
                | "console"
                | "Math"
                | "JSON"
                | "Object"
                | "Array"
                | "String"
                | "Number"
                | "Boolean"
                | "RegExp"
                | "Date"
                | "parseInt"
                | "parseFloat"
                | "isNaN"
                | "isFinite"
                | "eval"
                | "undefined"
                | "NaN"
                | "Infinity"
                | "Uint8Array"
                | "Uint32Array"
                | "Int32Array"
                | "Float64Array"
                | "ArrayBuffer"
                | "DataView"
                | "arguments"
        )
    };
    let uses: Vec<String> =
        u.names.into_iter().filter(|n| !defines.contains(n) && !builtin(n)).collect();
    Some(Brick { text: print_stmt(stmt), defines, uses })
}

impl Fuzzer for CodeAlchemist {
    fn name(&self) -> &'static str {
        "CodeAlchemist"
    }

    fn next_case(&mut self, rng: &mut StdRng) -> String {
        let mut defined: BTreeSet<String> = BTreeSet::new();
        let mut out = String::new();
        let mut placed = 0;
        let mut attempts = 0;
        while placed < self.bricks_per_program && attempts < 200 {
            attempts += 1;
            if self.bricks.is_empty() {
                break;
            }
            let brick = &self.bricks[rng.random_range(0..self.bricks.len())];
            if brick.uses.len() > 2 {
                continue;
            }
            // Assembly constraint: every use must be defined before the
            // brick runs. The real tool satisfies unmet preconditions by
            // inserting *load bricks* whose postcondition provides a value
            // of a plausible type; we guess the type from how the brick
            // uses the variable.
            let unmet_uses: Vec<String> =
                brick.uses.iter().filter(|u| !defined.contains(*u)).cloned().collect();
            for unmet in &unmet_uses {
                let load = match guessed_type(&brick.text, unmet, rng) {
                    GuessedType::Str => format!("var {unmet} = \"hello world\";\n"),
                    GuessedType::Num => format!("var {unmet} = {};\n", rng.random_range(0..50)),
                    GuessedType::Arr => format!("var {unmet} = [3, 1, 4];\n"),
                    GuessedType::Func => {
                        format!("var {unmet} = function(a) {{ return a; }};\n")
                    }
                };
                out.push_str(&load);
                defined.insert(unmet.clone());
            }
            out.push_str(&brick.text);
            out.push('\n');
            defined.extend(brick.defines.iter().cloned());
            placed += 1;
        }
        if out.is_empty() {
            out.push_str("print(0);\n");
        }
        out
    }
}

/// Plausible type of an unmet use, inferred from brick text.
enum GuessedType {
    Str,
    Num,
    Arr,
    Func,
}

fn guessed_type(text: &str, var: &str, rng: &mut StdRng) -> GuessedType {
    // A direct call (`var(...)`) needs a callable.
    if text.contains(&format!("{var}(")) {
        return GuessedType::Func;
    }
    let string_methods = [
        ".substr",
        ".toUpperCase",
        ".toLowerCase",
        ".charAt",
        ".split",
        ".trim",
        ".replace",
        ".indexOf",
        ".concat",
        ".repeat",
        ".padStart",
        ".padEnd",
        ".startsWith",
        ".endsWith",
        ".normalize",
    ];
    let array_methods =
        [".push", ".join", ".sort", ".map", ".filter", ".reduce", ".slice", ".fill", ".reverse"];
    let dotted = format!("{var}.");
    if text.contains(&dotted) {
        if string_methods.iter().any(|m| text.contains(&format!("{var}{m}"))) {
            return GuessedType::Str;
        }
        if array_methods.iter().any(|m| text.contains(&format!("{var}{m}"))) {
            return GuessedType::Arr;
        }
    }
    match rng.random_range(0..3) {
        0 => GuessedType::Str,
        1 => GuessedType::Arr,
        _ => GuessedType::Num,
    }
}

/// Token-boundary-aware identifier rename (kept for brick post-processing
/// experiments; exercised by unit tests).
#[allow(dead_code)]
fn rename_ident(text: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'$';
    while i < bytes.len() {
        if text[i..].starts_with(from) {
            let before_ok = i == 0 || !is_word(bytes[i - 1]);
            let after = i + from.len();
            let after_ok = after >= bytes.len() || !is_word(bytes[after]);
            if before_ok && after_ok {
                out.push_str(to);
                i = after;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn harvests_bricks_from_seeds() {
        let ca = CodeAlchemist::new(41, 60);
        assert!(ca.brick_count() > 50, "{}", ca.brick_count());
    }

    #[test]
    fn assembled_programs_are_mostly_valid() {
        let mut ca = CodeAlchemist::new(41, 60);
        let mut rng = StdRng::seed_from_u64(4);
        let mut valid = 0;
        const N: usize = 40;
        for _ in 0..N {
            if comfort_syntax::lint(&ca.next_case(&mut rng)).is_ok() {
                valid += 1;
            }
        }
        assert!(valid * 2 >= N, "validity {valid}/{N}");
    }

    #[test]
    fn assembly_respects_def_use_order() {
        // A brick using an undefined variable is only placed after renaming
        // or once a definer ran; sanity-check by running a few programs.
        use comfort_interp::{hooks::SpecProfile, run_source, RunOptions};
        let mut ca = CodeAlchemist::new(42, 60);
        let mut rng = StdRng::seed_from_u64(5);
        let mut clean = 0;
        let mut runs = 0;
        for _ in 0..20 {
            let p = ca.next_case(&mut rng);
            if let Ok(r) = run_source(&p, &SpecProfile, &RunOptions::default()) {
                runs += 1;
                if r.status.is_completed() {
                    clean += 1;
                }
            }
        }
        assert!(runs > 0);
        // Brick assembly with renamed uses often miscalls values (that is
        // realistic — the real tool's programs throw frequently too), but a
        // meaningful fraction must still run cleanly.
        assert!(clean * 5 >= runs, "too many runtime failures: {clean}/{runs}");
    }

    #[test]
    fn rename_is_token_aware() {
        assert_eq!(rename_ident("var xy = x + x1;", "x", "z"), "var xy = z + x1;");
    }
}
