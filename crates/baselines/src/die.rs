//! DIE (Park et al., S&P 2020) reimplementation.
//!
//! DIE performs **aspect-preserving** mutation: it mutates seed programs
//! while deliberately preserving the structural "aspects" that made the seed
//! interesting (types, control structure), changing only literals and
//! operators within the same type class. Output therefore stays
//! syntactically valid but explores different values.

use comfort_core::Fuzzer;
use comfort_syntax::ast::*;
use comfort_syntax::{parse, print_program, Program};
use rand::rngs::StdRng;
use rand::Rng;

/// The DIE-style aspect-preserving mutator.
pub struct Die {
    seeds: Vec<Program>,
    mutations_per_case: usize,
}

impl Die {
    /// Parses the standard seed corpus.
    pub fn new(seed: u64, corpus_programs: usize) -> Self {
        let seeds = comfort_corpus::training_corpus(seed, corpus_programs)
            .iter()
            .filter_map(|s| parse(s).ok())
            .collect();
        Die { seeds, mutations_per_case: 6 }
    }

    /// Number of usable seed programs.
    pub fn seed_count(&self) -> usize {
        self.seeds.len()
    }
}

impl Fuzzer for Die {
    fn name(&self) -> &'static str {
        "DIE"
    }

    fn next_case(&mut self, rng: &mut StdRng) -> String {
        if self.seeds.is_empty() {
            return "print(1);".to_string();
        }
        let mut program = self.seeds[rng.random_range(0..self.seeds.len())].clone();
        for _ in 0..self.mutations_per_case {
            mutate_one(&mut program, rng);
        }
        program.renumber();
        print_program(&program)
    }
}

/// Applies one aspect-preserving mutation at a random expression.
fn mutate_one(program: &mut Program, rng: &mut StdRng) {
    // Collect mutable pointers is unsafe; instead pick a random target index
    // and re-walk counting until we hit it.
    let total = count_exprs(program);
    if total == 0 {
        return;
    }
    let target = rng.random_range(0..total);
    let mut seen = 0usize;
    let roll: u32 = rng.random_range(0..100);
    walk_exprs_mut(program, &mut |e| {
        if seen == target {
            mutate_expr(e, roll);
        }
        seen += 1;
    });
}

fn mutate_expr(e: &mut Expr, roll: u32) {
    match &mut e.kind {
        // Same-type literal replacement (the aspect-preserving core): DIE
        // keeps values in the same ballpark so the seed's type/shape aspects
        // survive — it deliberately does NOT probe boundary values, which is
        // exactly why it misses the conformance bugs COMFORT's spec-guided
        // data finds (§5.3.2).
        ExprKind::Lit(Lit::Number(n)) => {
            *n = match roll % 6 {
                0 => *n + 1.0,
                1 => (*n - 1.0).abs(),
                2 => *n * 2.0,
                3 => (*n / 2.0).trunc(),
                4 => *n + 7.0,
                _ => 13.0,
            };
        }
        ExprKind::Lit(Lit::String(s)) => {
            *s = match roll % 3 {
                0 => format!("{s}{s}"),
                1 => s.to_uppercase(),
                _ => format!("{s}!"),
            };
        }
        ExprKind::Lit(Lit::Bool(b)) => *b = !*b,
        // Operator replacement within the same class.
        ExprKind::Binary { op, .. } => {
            use BinaryOp::*;
            *op = match (*op, roll % 3) {
                (Add, 0) => Sub,
                (Add, 1) => Mul,
                (Sub, _) => Add,
                (Mul, _) => Rem,
                (Lt, 0) => LtEq,
                (Lt, _) => Gt,
                (Eq, _) => StrictEq,
                (StrictEq, _) => Eq,
                (other, _) => other,
            };
        }
        ExprKind::Logical { op, .. } => {
            *op = match op {
                LogicalOp::And => LogicalOp::Or,
                LogicalOp::Or => LogicalOp::And,
            };
        }
        _ => {}
    }
}

fn count_exprs(program: &Program) -> usize {
    struct C(usize);
    impl comfort_syntax::visit::Visitor for C {
        fn visit_expr(&mut self, _: &Expr) {
            self.0 += 1;
        }
    }
    let mut c = C(0);
    comfort_syntax::visit::walk_program(program, &mut c);
    c.0
}

/// Pre-order mutable expression walk (statement-rooted).
fn walk_exprs_mut(program: &mut Program, f: &mut impl FnMut(&mut Expr)) {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        f(e);
        match &mut e.kind {
            ExprKind::Array(items) => items.iter_mut().flatten().for_each(|e| expr(e, f)),
            ExprKind::Object(props) => {
                for p in props {
                    if let PropKey::Computed(k) = &mut p.key {
                        expr(k, f);
                    }
                    if let Some(v) = &mut p.value {
                        expr(v, f);
                    }
                }
            }
            ExprKind::Function(func) => stmts(&mut func.body, f),
            ExprKind::Arrow { func, expr_body } => {
                stmts(&mut func.body, f);
                if let Some(b) = expr_body {
                    expr(b, f);
                }
            }
            ExprKind::Unary { operand, .. } => expr(operand, f),
            ExprKind::Update { target, .. } => expr(target, f),
            ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
                expr(left, f);
                expr(right, f);
            }
            ExprKind::Cond { cond, cons, alt } => {
                expr(cond, f);
                expr(cons, f);
                expr(alt, f);
            }
            ExprKind::Assign { target, value, .. } => {
                expr(target, f);
                expr(value, f);
            }
            ExprKind::Seq(items) => items.iter_mut().for_each(|e| expr(e, f)),
            ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
                expr(callee, f);
                args.iter_mut().for_each(|e| expr(e, f));
            }
            ExprKind::Member { object, .. } => expr(object, f),
            ExprKind::Index { object, index } => {
                expr(object, f);
                expr(index, f);
            }
            ExprKind::Template { exprs, .. } => exprs.iter_mut().for_each(|e| expr(e, f)),
            ExprKind::Paren(inner) => expr(inner, f),
            ExprKind::Ident(_) | ExprKind::Lit(_) | ExprKind::This => {}
        }
    }
    fn stmts(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
        for s in body {
            match &mut s.kind {
                StmtKind::Expr(e) | StmtKind::Throw(e) => expr(e, f),
                StmtKind::Decl { decls, .. } => {
                    for d in decls {
                        if let Some(init) = &mut d.init {
                            expr(init, f);
                        }
                    }
                }
                StmtKind::FunctionDecl(func) => stmts(&mut func.body, f),
                StmtKind::Block(b) => stmts(b, f),
                StmtKind::If { cond, cons, alt } => {
                    expr(cond, f);
                    stmts(std::slice::from_mut(cons), f);
                    if let Some(a) = alt {
                        stmts(std::slice::from_mut(a), f);
                    }
                }
                StmtKind::While { cond, body } => {
                    expr(cond, f);
                    stmts(std::slice::from_mut(body), f);
                }
                StmtKind::DoWhile { body, cond } => {
                    stmts(std::slice::from_mut(body), f);
                    expr(cond, f);
                }
                StmtKind::For { init, test, update, body } => {
                    match init.as_deref_mut() {
                        Some(ForInit::Decl { decls, .. }) => {
                            for d in decls {
                                if let Some(e) = &mut d.init {
                                    expr(e, f);
                                }
                            }
                        }
                        Some(ForInit::Expr(e)) => expr(e, f),
                        None => {}
                    }
                    if let Some(t) = test {
                        expr(t, f);
                    }
                    if let Some(u) = update {
                        expr(u, f);
                    }
                    stmts(std::slice::from_mut(body), f);
                }
                StmtKind::ForInOf { object, body, .. } => {
                    expr(object, f);
                    stmts(std::slice::from_mut(body), f);
                }
                StmtKind::Return(Some(e)) => expr(e, f),
                StmtKind::Try { block, catch, finally } => {
                    stmts(block, f);
                    if let Some(c) = catch {
                        stmts(&mut c.body, f);
                    }
                    if let Some(fin) = finally {
                        stmts(fin, f);
                    }
                }
                StmtKind::Switch { disc, cases } => {
                    expr(disc, f);
                    for c in cases {
                        if let Some(t) = &mut c.test {
                            expr(t, f);
                        }
                        stmts(&mut c.body, f);
                    }
                }
                _ => {}
            }
        }
    }
    stmts(&mut program.body, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutants_stay_syntactically_valid() {
        let mut die = Die::new(51, 60);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let p = die.next_case(&mut rng);
            comfort_syntax::lint(&p).unwrap_or_else(|e| panic!("invalid mutant: {e}\n{p}"));
        }
    }

    #[test]
    fn mutants_differ_from_seeds() {
        let mut die = Die::new(52, 30);
        let mut rng = StdRng::seed_from_u64(7);
        let seeds: Vec<String> = comfort_corpus::training_corpus(52, 30);
        let mut distinct = 0;
        for _ in 0..20 {
            let m = die.next_case(&mut rng);
            if !seeds.iter().any(|s| s == &m) {
                distinct += 1;
            }
        }
        assert!(distinct >= 15, "{distinct}");
    }

    #[test]
    fn seeds_loaded() {
        assert!(Die::new(53, 40).seed_count() >= 35);
    }
}
