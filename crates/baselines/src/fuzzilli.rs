//! Fuzzilli (Groß, 2018) reimplementation.
//!
//! Fuzzilli generates and mutates programs in **FuzzIL**, a typed
//! intermediate language that lifts to JavaScript, guaranteeing structural
//! validity by construction while exploring many small functions (Figure 9:
//! Fuzzilli has the best *function* coverage but weaker statement/branch
//! coverage — many generated statements throw and cut execution short).
//!
//! This reimplementation builds a miniature FuzzIL: a sequence of typed ops
//! over virtual registers, lifted to JS source.

use comfort_core::Fuzzer;
use rand::rngs::StdRng;
use rand::Rng;

/// One FuzzIL-style operation.
#[derive(Debug, Clone)]
enum Op {
    LoadInt(i64),
    LoadFloat(f64),
    LoadString(&'static str),
    LoadBool(bool),
    CreateArray(Vec<usize>),
    CreateObject(Vec<(&'static str, usize)>),
    Binary(usize, &'static str, usize),
    CallMethod(usize, &'static str, Vec<usize>),
    CallBuiltin(&'static str, Vec<usize>),
    /// Define a function of `params` registers with a small body; the body
    /// is itself a register program.
    DefineFunction(Vec<Op>),
    CallFunction(usize, Vec<usize>),
    /// `var vi = cond ? a : b;` — a real branch point.
    Ternary(usize, usize, usize),
    /// `if (r) { vi = a; }` — a statement-level branch.
    Guard(usize, usize),
    Print(usize),
}

const METHODS: &[&str] = &[
    "substr",
    "slice",
    "indexOf",
    "concat",
    "join",
    "toString",
    "charAt",
    "split",
    "push",
    "includes",
    "trim",
    "toUpperCase",
    "sort",
    "reverse",
    "fill",
    "repeat",
];

const BUILTINS: &[&str] =
    &["parseInt", "parseFloat", "isNaN", "String", "Number", "Boolean", "eval"];

/// The Fuzzilli-style IL fuzzer.
pub struct Fuzzilli {
    program_len: usize,
}

impl Fuzzilli {
    /// Creates the fuzzer; `program_len` ops per program.
    pub fn new() -> Self {
        Fuzzilli { program_len: 10 }
    }

    fn gen_ops(&self, rng: &mut StdRng, len: usize, depth: usize) -> Vec<Op> {
        let mut ops: Vec<Op> = Vec::new();
        for _ in 0..len {
            let n = ops.len();
            let reg = |rng: &mut StdRng| if n == 0 { 0 } else { rng.random_range(0..n) };
            let op = match rng.random_range(0..12) {
                0 => Op::LoadInt(rng.random_range(-5..100)),
                1 => Op::LoadFloat(rng.random_range(0..100) as f64 + 0.5),
                2 => Op::LoadString(["abc", "Name: Albert", "123", "x,y"][rng.random_range(0..4)]),
                3 => Op::LoadBool(rng.random_bool(0.5)),
                4 if n > 0 => Op::CreateArray(vec![reg(rng), reg(rng)]),
                5 if n > 0 => Op::CreateObject(vec![("a", reg(rng)), ("b", reg(rng))]),
                6 if n > 0 => Op::Binary(
                    reg(rng),
                    ["+", "-", "*", "%", "==", "<"][rng.random_range(0..6)],
                    reg(rng),
                ),
                7 if n > 0 => Op::CallMethod(
                    reg(rng),
                    METHODS[rng.random_range(0..METHODS.len())],
                    vec![reg(rng)],
                ),
                8 if n > 0 => {
                    Op::CallBuiltin(BUILTINS[rng.random_range(0..BUILTINS.len())], vec![reg(rng)])
                }
                9 if depth == 0 => Op::DefineFunction(self.gen_ops(rng, 4, 1)),
                10 if n > 0 => Op::CallFunction(reg(rng), vec![reg(rng)]),
                11 if n > 1 => Op::Ternary(reg(rng), reg(rng), reg(rng)),
                _ if n > 1 && rng.random_bool(0.4) => Op::Guard(reg(rng), reg(rng)),
                _ => Op::LoadInt(rng.random_range(0..10)),
            };
            let was_fn = matches!(op, Op::DefineFunction(_));
            ops.push(op);
            if was_fn {
                // Fuzzilli's generators call what they define — that is why
                // it posts the best *function* coverage in Figure 9.
                let fn_reg = ops.len() - 1;
                let arg = rng.random_range(0..ops.len());
                ops.push(Op::CallFunction(fn_reg, vec![arg]));
            }
        }
        if depth == 0 {
            let n = ops.len();
            ops.push(Op::Print(n.saturating_sub(1)));
        }
        ops
    }

    fn lift(ops: &[Op], prefix: &str) -> String {
        let mut out = String::new();
        for (i, op) in ops.iter().enumerate() {
            let v = |r: &usize| format!("{prefix}{r}");
            let line = match op {
                Op::LoadInt(n) => format!("var {prefix}{i} = {n};"),
                Op::LoadFloat(f) => format!("var {prefix}{i} = {f};"),
                Op::LoadString(s) => format!("var {prefix}{i} = {s:?};"),
                Op::LoadBool(b) => format!("var {prefix}{i} = {b};"),
                Op::CreateArray(rs) => format!(
                    "var {prefix}{i} = [{}];",
                    rs.iter().map(v).collect::<Vec<_>>().join(", ")
                ),
                Op::CreateObject(fields) => format!(
                    "var {prefix}{i} = {{{}}};",
                    fields
                        .iter()
                        .map(|(k, r)| format!("{k}: {}", v(r)))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Op::Binary(a, op, b) => {
                    format!("var {prefix}{i} = {} {op} {};", v(a), v(b))
                }
                Op::CallMethod(r, m, args) => format!(
                    "var {prefix}{i} = {}.{m}({});",
                    v(r),
                    args.iter().map(v).collect::<Vec<_>>().join(", ")
                ),
                Op::CallBuiltin(f, args) => format!(
                    "var {prefix}{i} = {f}({});",
                    args.iter().map(v).collect::<Vec<_>>().join(", ")
                ),
                Op::DefineFunction(body) => {
                    let inner = Self::lift(body, &format!("{prefix}{i}_"));
                    let indented: String = inner.lines().map(|l| format!("  {l}\n")).collect();
                    format!("var {prefix}{i} = function(a) {{\n{indented}  return a;\n}};")
                }
                Op::CallFunction(r, args) => format!(
                    "var {prefix}{i} = {}({});",
                    v(r),
                    args.iter().map(v).collect::<Vec<_>>().join(", ")
                ),
                Op::Ternary(c, a, b2) => {
                    format!("var {prefix}{i} = {} ? {} : {};", v(c), v(a), v(b2))
                }
                Op::Guard(c, a) => {
                    format!("var {prefix}{i} = 0;\nif ({}) {{ {prefix}{i} = {}; }}", v(c), v(a))
                }
                Op::Print(r) => format!("print({});", v(r)),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl Default for Fuzzilli {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for Fuzzilli {
    fn name(&self) -> &'static str {
        "Fuzzilli"
    }

    fn next_case(&mut self, rng: &mut StdRng) -> String {
        let ops = self.gen_ops(rng, self.program_len, 0);
        Self::lift(&ops, "v")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn il_lifting_is_always_syntactically_valid() {
        let mut f = Fuzzilli::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = f.next_case(&mut rng);
            comfort_syntax::lint(&p).unwrap_or_else(|e| panic!("invalid lift: {e}\n{p}"));
        }
    }

    #[test]
    fn many_programs_define_functions() {
        let mut f = Fuzzilli::new();
        let mut rng = StdRng::seed_from_u64(3);
        let with_fn = (0..50).filter(|_| f.next_case(&mut rng).contains("function")).count();
        assert!(with_fn > 10, "{with_fn}");
    }
}
