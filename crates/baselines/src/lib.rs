#![warn(missing_docs)]

//! Baseline fuzzers for the comparison experiments (§4.4, Figures 8–9).
//!
//! Five from-scratch reimplementations, each embodying the defining
//! generation mechanism of its namesake (see DESIGN.md §1 for the
//! substitution argument):
//!
//! * [`DeepSmith`] — short-context neural generation (the LSTM proxy),
//! * [`Fuzzilli`] — typed-IL construction lifted to JS,
//! * [`CodeAlchemist`] — constraint-tagged code-brick assembly,
//! * [`Die`] — aspect-preserving seed mutation,
//! * [`Montage`] — LSTM-fragment AST splicing.
//!
//! All implement [`comfort_core::Fuzzer`], so the Figure 8/9 harnesses treat
//! them exactly like COMFORT.

mod codealchemist;
mod deepsmith;
mod die;
mod fuzzilli;
mod montage;

pub use codealchemist::{Brick, CodeAlchemist};
pub use deepsmith::DeepSmith;
pub use die::Die;
pub use fuzzilli::Fuzzilli;
pub use montage::Montage;

/// Builds all five baselines with a shared seed (convenience for harnesses).
pub fn all_baselines(seed: u64, corpus_programs: usize) -> Vec<Box<dyn comfort_core::Fuzzer>> {
    vec![
        Box::new(DeepSmith::new(seed, corpus_programs)),
        Box::new(Fuzzilli::new()),
        Box::new(CodeAlchemist::new(seed, corpus_programs)),
        Box::new(Die::new(seed, corpus_programs)),
        Box::new(Montage::new(seed, corpus_programs)),
    ]
}
