//! DeepSmith (Cummins et al., ISSTA 2018) reimplementation.
//!
//! DeepSmith generates programs with an **LSTM** language model. Its defining
//! limitation — the one the paper's Figure 9 measures — is the short
//! effective context of the recurrent model, which loses track of long-range
//! structure (unbalanced brackets, dangling operators). We reproduce it as
//! the same BPE + n-gram machinery as COMFORT's generator but with a
//! context order of 2, trained on the same corpus (§5.3: "we train DeepSmith
//! using the same training JS corpus as COMFORT").

use comfort_core::Fuzzer;
use comfort_lm::{Generator, GeneratorConfig};
use rand::rngs::StdRng;

/// The DeepSmith-style short-context generative fuzzer.
pub struct DeepSmith {
    generator: Generator,
}

impl DeepSmith {
    /// Trains on the standard corpus.
    pub fn new(seed: u64, corpus_programs: usize) -> Self {
        let corpus = comfort_corpus::training_corpus(seed, corpus_programs);
        let generator = Generator::train(
            &corpus,
            GeneratorConfig { order: 2, bpe_merges: 400, top_k: 10, max_tokens: 900 },
        );
        DeepSmith { generator }
    }
}

impl Fuzzer for DeepSmith {
    fn name(&self) -> &'static str {
        "DeepSmith"
    }

    fn next_case(&mut self, rng: &mut StdRng) -> String {
        let source = self.generator.generate(rng);
        // DeepSmith's harness invokes the generated kernel with arguments
        // (its OpenCL setup does the same); without a driver a function-only
        // program has no observable behaviour at all.
        match comfort_syntax::parse(&source) {
            Ok(program) => {
                comfort_syntax::print_program(&comfort_core::datagen::ensure_driver(&program, rng))
            }
            Err(_) => source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_programs_with_low_validity() {
        let mut ds = DeepSmith::new(31, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut valid = 0;
        const N: usize = 40;
        for _ in 0..N {
            if comfort_syntax::lint(&ds.next_case(&mut rng)).is_ok() {
                valid += 1;
            }
        }
        // The LSTM proxy must be clearly below COMFORT's level (Figure 9:
        // DeepSmith ~31%, COMFORT ~80%). Allow head-room either way.
        assert!(valid < N * 7 / 10, "DeepSmith validity suspiciously high: {valid}/{N}");
    }
}
