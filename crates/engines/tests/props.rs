//! Property tests over the engine matrix: determinism, deviation soundness
//! (an engine only ever deviates when a seeded bug explains it), and version
//! monotonicity of the paper-listing bugs.

use comfort_engines::{compile, versions_of, CompiledChunk, Engine, EngineName, RunOptions};
use comfort_interp::RunStatus;
use proptest::prelude::*;
use std::sync::Arc;

fn signature(engine: &Engine, chunk: &Arc<CompiledChunk>) -> (String, String) {
    let r = engine.run_compiled(chunk, &RunOptions::default());
    let status = match r.status {
        RunStatus::Completed => "ok".to_string(),
        RunStatus::Threw { kind, .. } => format!("threw {kind:?}"),
        RunStatus::OutOfFuel => "timeout".to_string(),
        RunStatus::Crashed(_) => "crash".to_string(),
    };
    (status, r.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_runs_are_deterministic(seed in 0u64..3000) {
        let src = comfort_corpus::training_corpus(seed, 1).remove(0);
        let chunk = compile(&comfort_syntax::parse(&src).expect("corpus parses"));
        for name in [EngineName::Rhino, EngineName::V8, EngineName::QuickJs] {
            let engine = Engine::latest(name);
            prop_assert_eq!(signature(&engine, &chunk), signature(&engine, &chunk));
        }
    }

    #[test]
    fn v8_and_spidermonkey_usually_agree(seed in 0u64..3000) {
        // The two cleanest engines share almost no seeded bugs; on random
        // corpus programs their observable behaviour must coincide unless a
        // seeded bug of one of them is triggered.
        let src = comfort_corpus::training_corpus(seed, 1).remove(0);
        let chunk = compile(&comfort_syntax::parse(&src).expect("corpus parses"));
        let v8 = signature(&Engine::latest(EngineName::V8), &chunk);
        let sm = signature(&Engine::latest(EngineName::SpiderMonkey), &chunk);
        if v8 != sm {
            // Divergence must be attributable to a seeded bug on one side.
            let explained = !Engine::latest(EngineName::V8).active_bugs().is_empty()
                || !Engine::latest(EngineName::SpiderMonkey).active_bugs().is_empty();
            prop_assert!(explained, "unexplained divergence on seed {}", seed);
        }
    }

    #[test]
    fn deviation_from_reference_implies_active_bug(seed in 0u64..1500) {
        // For every engine: if its behaviour differs from the conforming
        // reference on a corpus program, the engine must have ≥1 active
        // seeded bug (the reference itself is bug-free).
        let src = comfort_corpus::training_corpus(seed, 1).remove(0);
        let chunk = compile(&comfort_syntax::parse(&src).expect("corpus parses"));
        let reference = comfort_interp::run_chunk(
            &chunk,
            &comfort_interp::hooks::SpecProfile,
            &comfort_interp::RunOptions::default(),
        );
        let ref_sig = (
            matches!(reference.status, RunStatus::Completed),
            reference.output.clone(),
        );
        for name in EngineName::ALL {
            let engine = Engine::latest(name);
            let r = engine.run_compiled(&chunk, &RunOptions::default());
            let sig = (matches!(r.status, RunStatus::Completed), r.output);
            if sig != ref_sig {
                prop_assert!(
                    !engine.active_bugs().is_empty(),
                    "{name} deviates with no active seeded bug (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn fixed_bugs_stay_fixed_in_all_later_versions() {
    // The SpiderMonkey Listing-3 fix must hold for every version ≥ v52.9,
    // and symmetrically the bug must exist in every earlier version.
    let chunk =
        compile(&comfort_syntax::parse("print(new Uint32Array(3.14).length);").expect("parses"));
    for v in versions_of(EngineName::SpiderMonkey) {
        let r = Engine::new(v).run_compiled(&chunk, &RunOptions::default());
        if v.ordinal < 2 {
            assert!(!r.status.is_completed(), "{} must still have the bug", v.label());
        } else {
            assert_eq!(r.output, "3\n", "{} must be fixed", v.label());
        }
    }
}

#[test]
fn strict_and_normal_testbeds_share_conforming_behaviour() {
    // For code with no sloppy-mode constructs, strict and normal testbeds
    // of the same engine must agree.
    let chunk = compile(
        &comfort_syntax::parse(
            "var total = 0; for (var i = 0; i < 5; i++) { total += i; } print(total);",
        )
        .expect("parses"),
    );
    for name in EngineName::ALL {
        let engine = Engine::latest(name);
        let normal = engine.run_compiled(&chunk, &RunOptions::default());
        let strict =
            engine.run_compiled(&chunk, &RunOptions { strict: true, ..Default::default() });
        assert_eq!(normal.output, strict.output, "{name}");
    }
}
