//! The legacy one-shot entry points (`Engine::run`, `Testbed::run`,
//! `run_isolated`, and `comfort_interp::run_program`) are kept as
//! `#[deprecated]` wrappers over the two-phase compile/execute API. These
//! tests pin the wrapper contract: each one produces a result
//! **bit-identical** (status, output, fuel accounting, coverage) to
//! compiling once and executing the shared chunk.
#![allow(deprecated)]

use comfort_engines::{
    compile, run_isolated, run_isolated_compiled, Engine, EngineName, FaultPlan, IsolationPolicy,
    RetryPolicy, RunOptions, Testbed,
};
use comfort_syntax::parse;

fn coverage_options() -> RunOptions {
    RunOptions { coverage: true, fuel: 300_000, ..RunOptions::default() }
}

#[test]
fn engine_run_matches_compile_then_run_compiled() {
    for seed in 0..40u64 {
        let src = comfort_corpus::training_corpus(seed, 1).remove(0);
        let program = parse(&src).expect("corpus parses");
        let chunk = compile(&program);
        for name in EngineName::ALL {
            let engine = Engine::latest(name);
            let legacy = engine.run(&program, &coverage_options());
            let compiled = engine.run_compiled(&chunk, &coverage_options());
            assert_eq!(legacy, compiled, "{name} diverges on corpus seed {seed}");
        }
    }
}

#[test]
fn testbed_run_matches_run_compiled() {
    let src = "function f(n) { return n < 2 ? n : f(n - 1) + f(n - 2); } print(f(12));";
    let program = parse(src).expect("parses");
    let chunk = compile(&program);
    for strict in [false, true] {
        let bed = Testbed::new(Engine::latest(EngineName::V8), strict);
        let legacy = bed.run(&program, &coverage_options());
        let compiled = bed.run_compiled(&chunk, &coverage_options());
        assert_eq!(legacy, compiled, "strict={strict}");
    }
}

#[test]
fn run_program_matches_compile_then_run_chunk() {
    for seed in 40..80u64 {
        let src = comfort_corpus::training_corpus(seed, 1).remove(0);
        let program = parse(&src).expect("corpus parses");
        let legacy = comfort_interp::run_program(
            &program,
            &comfort_interp::hooks::SpecProfile,
            &coverage_options(),
        );
        let compiled = comfort_interp::run_chunk(
            &compile(&program),
            &comfort_interp::hooks::SpecProfile,
            &coverage_options(),
        );
        assert_eq!(legacy, compiled, "run_program diverges on corpus seed {seed}");
    }
}

#[test]
fn run_isolated_matches_run_isolated_compiled() {
    let program = parse("for (var i = 0; i < 10; i++) { print(i * i); }").expect("parses");
    let chunk = compile(&program);
    let bed = Testbed::new(Engine::latest(EngineName::QuickJs), false);
    let legacy = run_isolated(
        &bed,
        &program,
        &coverage_options(),
        &IsolationPolicy::default(),
        &RetryPolicy::default(),
    );
    let compiled = run_isolated_compiled(
        &bed,
        &chunk,
        &coverage_options(),
        &IsolationPolicy::default(),
        &RetryPolicy::default(),
    );
    assert_eq!(legacy.result, compiled.result);
    assert_eq!(legacy.fault, compiled.fault);
    assert_eq!(legacy.retries, compiled.retries);
}

#[test]
fn run_isolated_matches_under_chaos() {
    // Chaos decisions are content-addressed over the *program*, so the
    // wrapper and the two-phase path must observe identical injected faults.
    comfort_engines::silence_chaos_panics();
    let program = parse("print('chaos target');").expect("parses");
    let chunk = compile(&program);
    for plan in [
        FaultPlan::new(9).panic_rate(1.0),
        FaultPlan::new(9).transient_rate(1.0).transient_persistence(1),
        FaultPlan::new(9).garbage_rate(1.0),
    ] {
        let bed = Testbed::new(Engine::latest(EngineName::V8), false).with_chaos(plan);
        let legacy = run_isolated(
            &bed,
            &program,
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        let compiled = run_isolated_compiled(
            &bed,
            &chunk,
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        assert_eq!(legacy.result, compiled.result);
        assert_eq!(legacy.fault, compiled.fault);
        assert_eq!(legacy.retries, compiled.retries);
    }
}
