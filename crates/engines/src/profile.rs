//! [`EngineProfile`] — glues a seeded-bug catalog slice to the interpreter's
//! [`ConformanceProfile`] hook interface.

use comfort_interp::hooks::{
    ArraySetBehavior, BuiltinSite, ConformanceProfile, Deviation, ValuePreview, ValueRecipe,
};

use crate::catalog::{Effect, SeededBug};
use crate::registry::{EngineName, EngineVersion};

/// The behaviour of one engine *version*: the reference interpreter plus the
/// catalog bugs active in that version.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    version: EngineVersion,
    bugs: Vec<SeededBug>,
}

impl EngineProfile {
    /// Builds the profile for `version` from the full `catalog`.
    pub fn new(version: EngineVersion, catalog: &[SeededBug]) -> Self {
        let bugs = catalog
            .iter()
            .filter(|b| b.engine == version.engine && b.active_in(version.ordinal))
            .cloned()
            .collect();
        EngineProfile { version, bugs }
    }

    /// The engine this profile simulates.
    pub fn engine(&self) -> EngineName {
        self.version.engine
    }

    /// The version row this profile simulates.
    pub fn version(&self) -> &EngineVersion {
        &self.version
    }

    /// The seeded bugs active in this version.
    pub fn bugs(&self) -> &[SeededBug] {
        &self.bugs
    }

    /// The bug whose trigger matches `site`, if any (first catalog order).
    fn matching_bug(&self, site: &BuiltinSite) -> Option<&SeededBug> {
        self.bugs.iter().find(|b| {
            b.api == Some(site.api)
                && (!b.strict_only || site.strict)
                && b.triggers.iter().all(|t| t.matches(&site.receiver, &site.args))
        })
    }
}

impl ConformanceProfile for EngineProfile {
    fn on_builtin(&self, site: &BuiltinSite) -> Deviation {
        match self.matching_bug(site).map(|b| &b.effect) {
            None => Deviation::None,
            Some(Effect::WrongValue(recipe)) => Deviation::ReturnValue(recipe.clone()),
            Some(Effect::WrongThrow(kind)) => Deviation::ThrowError(
                *kind,
                format!("invalid argument to {} ({})", site.api, self.version.engine),
            ),
            Some(Effect::MissingThrow(recipe)) => Deviation::SuppressThrow(recipe.clone()),
            Some(Effect::Crash) => {
                Deviation::Crash(format!("Segmentation fault (core dumped) in {}", site.api))
            }
            Some(Effect::Perf(extra)) => Deviation::Slowdown(*extra),
            // Special-hook effects never route through `on_builtin`.
            Some(
                Effect::EvalHeadlessFor
                | Effect::SplitAnchor
                | Effect::ArrayBoolKeyAppend
                | Effect::ArrayReverseFill
                | Effect::DefinePropLengthSuppress,
            ) => Deviation::None,
        }
    }

    fn on_define_property(
        &self,
        target_class: &'static str,
        key: &str,
        _strict: bool,
    ) -> Deviation {
        if target_class == "Array"
            && key == "length"
            && self.bugs.iter().any(|b| b.effect == Effect::DefinePropLengthSuppress)
        {
            Deviation::SuppressThrow(ValueRecipe::Arg(0))
        } else {
            Deviation::None
        }
    }

    fn on_array_key_set(&self, key: &ValuePreview) -> ArraySetBehavior {
        if matches!(key, ValuePreview::Bool(true))
            && self.bugs.iter().any(|b| b.effect == Effect::ArrayBoolKeyAppend)
        {
            ArraySetBehavior::AppendElement
        } else {
            ArraySetBehavior::Normal
        }
    }

    fn eval_tolerates_headless_for(&self) -> bool {
        self.bugs.iter().any(|b| b.effect == Effect::EvalHeadlessFor)
    }

    fn split_anchor_broken(&self) -> bool {
        self.bugs.iter().any(|b| b.effect == Effect::SplitAnchor)
    }

    fn array_reverse_fill_penalty(&self) -> u64 {
        if self.bugs.iter().any(|b| b.effect == Effect::ArrayReverseFill) {
            48
        } else {
            0
        }
    }
}
