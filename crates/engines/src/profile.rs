//! [`EngineProfile`] — glues a seeded-bug catalog slice to the interpreter's
//! [`ConformanceProfile`] hook interface.

use comfort_interp::hooks::{
    ArraySetBehavior, BuiltinSite, ConformanceProfile, Deviation, ValuePreview, ValueRecipe,
};
use comfort_interp::ApiFootprint;

use crate::catalog::{BugId, Effect, SeededBug, Trigger};
use crate::registry::{EngineName, EngineVersion};

/// Shared recipe for the define-property suppression path, served by
/// reference from the hook (the hook returns borrowed recipes).
static ARG0: ValueRecipe = ValueRecipe::Arg(0);

/// The behaviour of one engine *version*: the reference interpreter plus the
/// catalog bugs active in that version.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    version: EngineVersion,
    bugs: Vec<SeededBug>,
}

impl EngineProfile {
    /// Builds the profile for `version` from the full `catalog`.
    pub fn new(version: EngineVersion, catalog: &[SeededBug]) -> Self {
        let bugs = catalog
            .iter()
            .filter(|b| b.engine == version.engine && b.active_in(version.ordinal))
            .cloned()
            .collect();
        EngineProfile { version, bugs }
    }

    /// The engine this profile simulates.
    pub fn engine(&self) -> EngineName {
        self.version.engine
    }

    /// The version row this profile simulates.
    pub fn version(&self) -> &EngineVersion {
        &self.version
    }

    /// The seeded bugs active in this version.
    pub fn bugs(&self) -> &[SeededBug] {
        &self.bugs
    }

    /// The bug whose trigger matches `site`, if any (first catalog order).
    fn matching_bug(&self, site: &BuiltinSite) -> Option<&SeededBug> {
        self.bugs.iter().find(|b| {
            b.api == Some(site.api)
                && (!b.strict_only || site.strict)
                && b.triggers.iter().all(|t| t.matches(&site.receiver, &site.args))
        })
    }

    /// The relevance query: ids of this profile's bugs that `footprint`
    /// cannot rule out for a given chunk, in catalog order.
    ///
    /// Two testbeds of the same mode whose relevant-bug sets are equal are
    /// behaviourally identical on that chunk — bugs are the *only* runtime
    /// difference between profiles, and a bug whose hook site is provably
    /// unreachable can never fire. `Effect::Perf` bugs are included like any
    /// other (burning fuel changes `OutOfFuel` outcomes). A poisoned
    /// footprint returns every active bug, i.e. no collapse.
    pub fn relevant_bugs(&self, footprint: &ApiFootprint) -> Vec<BugId> {
        self.bugs.iter().filter(|b| bug_may_fire(b, footprint)).map(|b| b.id).collect()
    }

    /// The behaviour-level relevance query: semantic descriptions of the
    /// bugs `footprint` cannot rule out, in catalog order. Unlike
    /// [`Self::relevant_bugs`] this compares *across engines*: two testbeds
    /// with pairwise-equal sequences respond identically at every reachable
    /// hook site, so the execution-dedup layer can put them in one class
    /// even when their bug ids differ. Bugs that only manifest at strict
    /// sites are dropped when `strict_sites` is `false` (a non-strict
    /// testbed running a program with no `"use strict"` prologue — pass
    /// `testbed.strict || footprint.has_strict_sites()`).
    pub fn relevant_behavior(
        &self,
        footprint: &ApiFootprint,
        strict_sites: bool,
    ) -> Vec<BugBehavior<'_>> {
        self.bugs
            .iter()
            .filter(|b| (strict_sites || !b.strict_only) && bug_may_fire(b, footprint))
            .map(|b| BugBehavior {
                api: b.api,
                triggers: &b.triggers,
                effect: &b.effect,
                strict_only: b.strict_only,
                message_engine: matches!(b.effect, Effect::WrongThrow(_))
                    .then_some(self.version.engine),
            })
            .collect()
    }
}

/// Engine-independent description of what one seeded bug does at its hook
/// site: where it hooks, when it triggers, and the deviation it applies.
/// Two testbeds of the same mode whose relevant-bug sequences are pairwise
/// equal under this comparison produce bit-identical runs on the chunk —
/// the hook layer is the *only* behavioural difference between profiles,
/// and first-match resolution walks the same semantic sequence. The one
/// engine-dependent observable is the synthesized `WrongThrow` message
/// (it embeds the engine name), so those bugs carry `message_engine` and
/// only compare equal within a single engine.
#[derive(Debug, Clone, PartialEq)]
pub struct BugBehavior<'a> {
    api: Option<&'static str>,
    triggers: &'a [Trigger],
    effect: &'a Effect,
    strict_only: bool,
    message_engine: Option<EngineName>,
}

/// `false` only when `footprint` proves the bug's hook site unreachable.
fn bug_may_fire(bug: &SeededBug, fp: &ApiFootprint) -> bool {
    if fp.is_poisoned() {
        return true;
    }
    match &bug.effect {
        // Special-hook effects ignore `bug.api`; gate on the construct that
        // reaches their hook instead.
        Effect::EvalHeadlessFor => fp.mentions("eval"),
        Effect::SplitAnchor => fp.mentions("split"),
        Effect::ArrayBoolKeyAppend | Effect::ArrayReverseFill => fp.has_index_store(),
        Effect::DefinePropLengthSuppress => fp.mentions("defineProperty"),
        // API-keyed effects fire only via `on_builtin`. The footprint
        // tracks explicit sites by terminal name segment and the natives
        // implicit `ToPrimitive` can dispatch by full API name (see
        // `comfort_interp::footprint::IMPLICIT_COERCION_APIS`), so a bug
        // may fire if either form is mentioned.
        _ => match bug.api {
            Some(api) => fp.mentions(terminal_segment(api)) || fp.mentions(api),
            // A shape the analysis doesn't model: assume it can fire.
            None => true,
        },
    }
}

/// `"String.prototype.substr"` → `"substr"`; dotless names pass through.
fn terminal_segment(api: &str) -> &str {
    api.rsplit('.').next().unwrap_or(api)
}

impl ConformanceProfile for EngineProfile {
    fn on_builtin(&self, site: &BuiltinSite) -> Deviation<'_> {
        match self.matching_bug(site).map(|b| &b.effect) {
            None => Deviation::None,
            Some(Effect::WrongValue(recipe)) => Deviation::ReturnValue(recipe),
            Some(Effect::WrongThrow(kind)) => Deviation::ThrowError(
                *kind,
                format!("invalid argument to {} ({})", site.api, self.version.engine),
            ),
            Some(Effect::MissingThrow(recipe)) => Deviation::SuppressThrow(recipe),
            Some(Effect::Crash) => {
                Deviation::Crash(format!("Segmentation fault (core dumped) in {}", site.api))
            }
            Some(Effect::Perf(extra)) => Deviation::Slowdown(*extra),
            // Special-hook effects never route through `on_builtin`.
            Some(
                Effect::EvalHeadlessFor
                | Effect::SplitAnchor
                | Effect::ArrayBoolKeyAppend
                | Effect::ArrayReverseFill
                | Effect::DefinePropLengthSuppress,
            ) => Deviation::None,
        }
    }

    fn on_define_property(
        &self,
        target_class: &'static str,
        key: &str,
        _strict: bool,
    ) -> Deviation<'_> {
        if target_class == "Array"
            && key == "length"
            && self.bugs.iter().any(|b| b.effect == Effect::DefinePropLengthSuppress)
        {
            Deviation::SuppressThrow(&ARG0)
        } else {
            Deviation::None
        }
    }

    fn on_array_key_set(&self, key: &ValuePreview) -> ArraySetBehavior {
        if matches!(key, ValuePreview::Bool(true))
            && self.bugs.iter().any(|b| b.effect == Effect::ArrayBoolKeyAppend)
        {
            ArraySetBehavior::AppendElement
        } else {
            ArraySetBehavior::Normal
        }
    }

    fn eval_tolerates_headless_for(&self) -> bool {
        self.bugs.iter().any(|b| b.effect == Effect::EvalHeadlessFor)
    }

    fn split_anchor_broken(&self) -> bool {
        self.bugs.iter().any(|b| b.effect == Effect::SplitAnchor)
    }

    fn array_reverse_fill_penalty(&self) -> u64 {
        if self.bugs.iter().any(|b| b.effect == Effect::ArrayReverseFill) {
            48
        } else {
            0
        }
    }
}
