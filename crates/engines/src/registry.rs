//! The engine/version inventory — Table 1 of the paper.
//!
//! Ten engines, 51 engine-version configurations. Each version has an
//! *ordinal* (0 = oldest) used by the bug catalog's introduced/fixed ranges.

/// The ten simulated JS engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineName {
    /// Google V8 (Chrome).
    V8,
    /// Microsoft ChakraCore (Edge).
    ChakraCore,
    /// Apple JavaScriptCore (Safari).
    Jsc,
    /// Mozilla SpiderMonkey (Firefox).
    SpiderMonkey,
    /// Mozilla Rhino (JVM).
    Rhino,
    /// Oracle Nashorn (JDK).
    Nashorn,
    /// Facebook Hermes (React Native).
    Hermes,
    /// JerryScript (IoT).
    JerryScript,
    /// Fabrice Bellard's QuickJS.
    QuickJs,
    /// Oracle GraalJS.
    GraalJs,
}

impl EngineName {
    /// All ten engines, in Table 1 order.
    pub const ALL: [EngineName; 10] = [
        EngineName::V8,
        EngineName::ChakraCore,
        EngineName::Jsc,
        EngineName::SpiderMonkey,
        EngineName::Rhino,
        EngineName::Nashorn,
        EngineName::Hermes,
        EngineName::JerryScript,
        EngineName::QuickJs,
        EngineName::GraalJs,
    ];

    /// Display name as used in the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineName::V8 => "V8",
            EngineName::ChakraCore => "ChakraCore",
            EngineName::Jsc => "JSC",
            EngineName::SpiderMonkey => "SpiderMonkey",
            EngineName::Rhino => "Rhino",
            EngineName::Nashorn => "Nashorn",
            EngineName::Hermes => "Hermes",
            EngineName::JerryScript => "JerryScript",
            EngineName::QuickJs => "QuickJS",
            EngineName::GraalJs => "Graaljs",
        }
    }

    /// Parses the display name produced by [`EngineName::as_str`] (used to
    /// round-trip reports through the checkpoint journal).
    pub fn parse_label(s: &str) -> Option<EngineName> {
        EngineName::ALL.into_iter().find(|name| name.as_str() == s)
    }
}

impl std::fmt::Display for EngineName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The ECMA-262 edition an engine version claims to support (§4.1). Programs
/// that use later-edition APIs are excluded when fuzzing that engine (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EsEdition {
    /// ES5.1 (2011).
    Es2011,
    /// ES6 (2015).
    Es2015,
    /// ES2018.
    Es2018,
    /// ES2019.
    Es2019,
    /// ES2020.
    Es2020,
}

impl EsEdition {
    /// Short label (`"ES2015"`).
    pub fn as_str(self) -> &'static str {
        match self {
            EsEdition::Es2011 => "ES2011",
            EsEdition::Es2015 => "ES2015",
            EsEdition::Es2018 => "ES2018",
            EsEdition::Es2019 => "ES2019",
            EsEdition::Es2020 => "ES2020",
        }
    }

    /// `true` if `api` (canonical name) exists in this edition.
    ///
    /// Only APIs that were actually added after ES5 need gating; the list
    /// covers the surface our generators emit.
    pub fn supports_api(self, api: &str) -> bool {
        let min = match api {
            // ES2015 additions.
            "String.prototype.normalize"
            | "String.prototype.repeat"
            | "String.prototype.startsWith"
            | "String.prototype.endsWith"
            | "String.prototype.codePointAt"
            | "Array.from"
            | "Array.of"
            | "Array.prototype.find"
            | "Array.prototype.findIndex"
            | "Array.prototype.fill"
            | "Number.isInteger"
            | "Number.isSafeInteger"
            | "Number.isFinite"
            | "Number.isNaN"
            | "Object.assign"
            | "Object.setPrototypeOf" => EsEdition::Es2015,
            // Typed arrays standardised in ES2015 too.
            "Uint8Array"
            | "Int8Array"
            | "Uint8ClampedArray"
            | "Uint16Array"
            | "Int16Array"
            | "Uint32Array"
            | "Int32Array"
            | "Float32Array"
            | "Float64Array"
            | "DataView"
            | "ArrayBuffer"
            | "%TypedArray%.prototype.set"
            | "%TypedArray%.prototype.subarray"
            | "%TypedArray%.prototype.fill"
            | "%TypedArray%.prototype.slice" => EsEdition::Es2015,
            // ES2016/2017 (folded into the 2018 tier we model).
            "Array.prototype.includes"
            | "String.prototype.padStart"
            | "String.prototype.padEnd"
            | "Object.values"
            | "Object.entries" => EsEdition::Es2018,
            // ES2019.
            "Array.prototype.flat" | "String.prototype.trimStart" | "String.prototype.trimEnd" => {
                EsEdition::Es2019
            }
            // ES2020+ (and `at` is ES2022; Graaljs-only in our matrix).
            "String.prototype.at" => EsEdition::Es2020,
            _ => return true,
        };
        self >= min
    }
}

/// One engine version row from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineVersion {
    /// Engine.
    pub engine: EngineName,
    /// Version string as printed in Table 1.
    pub version: &'static str,
    /// Build number.
    pub build: &'static str,
    /// Release date string.
    pub release: &'static str,
    /// Ordinal within the engine's version list (0 = oldest).
    pub ordinal: u32,
    /// Supported ECMA-262 edition.
    pub edition: EsEdition,
}

impl EngineVersion {
    /// `"Rhino v1.7.12"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.engine, self.version)
    }
}

macro_rules! versions {
    ($engine:expr, $edition:expr; $( ($v:literal, $b:literal, $r:literal) ),+ $(,)?) => {{
        let mut out = Vec::new();
        for (v, b, r) in [ $( ($v, $b, $r) ),+ ] {
            let ordinal = out.len() as u32;
            out.push(EngineVersion {
                engine: $engine,
                version: v,
                build: b,
                release: r,
                ordinal,
                edition: $edition,
            });
        }
        out
    }};
}

/// Version list for one engine, **oldest first** (ordinal order).
pub fn versions_of(engine: EngineName) -> Vec<EngineVersion> {
    use EngineName::*;
    match engine {
        V8 => versions![V8, EsEdition::Es2019;
            ("V8.5 (0e44fef)", "0e44fef", "Apr. 2019"),
            ("V8.5 (e39c701)", "e39c701", "Aug. 2019"),
            ("V8.5 (d891c59)", "d891c59", "Jun. 2020"),
        ],
        ChakraCore => versions![ChakraCore, EsEdition::Es2019;
            ("v1.11.8", "dbfb5bd", "Apr. 2019"),
            ("v1.11.12", "e1f5b03", "Aug. 2019"),
            ("v1.11.13", "8fcb0f1", "Aug. 2019"),
            ("v1.11.16", "eaaf7ac", "Nov. 2019"),
            ("v1.11.19", "5ed2985", "May 2020"),
        ],
        Jsc => versions![Jsc, EsEdition::Es2019;
            ("244445", "b3fa4c5", "Apr. 2019"),
            ("246135", "d940b47", "Jun. 2019"),
            ("251631", "b96bf75", "Oct. 2019"),
            ("261782", "dbae081", "May 2020"),
        ],
        SpiderMonkey => versions![SpiderMonkey, EsEdition::Es2018;
            ("v1.7.0", "js-1.7.0", "2007"),
            ("v38.3.0", "mozjs38.3.0", "2015"),
            ("v52.9", "mozjs52.9.1pre", "2017"),
            ("v60.1.1", "mozjs60.1.1pre", "2018"),
            ("gecko-dev (201255a)", "201255a", "2019"),
            ("gecko-dev (2c619e2)", "2c619e2", "2020"),
            ("v78.0", "C69.0a1", "2020"),
        ],
        Rhino => versions![Rhino, EsEdition::Es2015;
            ("v1.7R3", "d1a8338", "Apr. 2011"),
            ("v1.7R4", "82ffb8f", "Jun. 2012"),
            ("v1.7R5", "584e7ec", "Jan. 2015"),
            ("v1.7.9", "3ee580e", "Mar. 2018"),
            ("v1.7.10", "1692f5f", "May 2019"),
            ("v1.7.11", "f0e1c63", "May 2019"),
            ("v1.7.12", "d4021ee", "Jan. 2020"),
        ],
        Nashorn => versions![Nashorn, EsEdition::Es2011;
            ("v1.7.6", "JDK7u65", "May 2014"),
            ("v1.8.0_201", "JDK8u201", "Jan. 2019"),
            ("v11.0.3", "JDK11.0.3", "Mar. 2019"),
            ("v12.0.1", "JDK12.0.1", "Apr. 2019"),
            ("v13.0.1", "JDK13.0.1", "Sep. 2019"),
        ],
        Hermes => versions![Hermes, EsEdition::Es2015;
            ("v0.1.1", "3ed8340", "Jul. 2019"),
            ("v0.3.0", "3826084", "Sep. 2019"),
            ("v0.4.0", "044cf4b", "Dec. 2019"),
            ("v0.6.0", "b6530ae", "May 2020"),
        ],
        JerryScript => versions![JerryScript, EsEdition::Es2015;
            ("v1.0", "e944cda", "Apr. 2019"),
            ("v2.0 (40f7b1c)", "40f7b1c", "Apr. 2019"),
            ("v2.0 (b6fc4e1)", "b6fc4e1", "May 2019"),
            ("v2.0 (351acdf)", "351acdf", "Jun. 2019"),
            ("v2.1.0 (9ab4872)", "9ab4872", "Sep. 2019"),
            ("v2.1.0 (84a56ef)", "84a56ef", "Oct. 2019"),
            ("v2.2.0 (7df87b7)", "7df87b7", "Oct. 2019"),
            ("v2.2.0 (996bf76)", "996bf76", "Nov. 2019"),
            ("v2.3.0", "bd1c4df", "May 2020"),
        ],
        QuickJs => versions![QuickJs, EsEdition::Es2019;
            ("2019-07-09", "9ccefbf", "Jul. 2019"),
            ("2019-09-01", "3608b16", "Sep. 2019"),
            ("2019-09-18", "6e76fd9", "Sep. 2019"),
            ("2019-10-27", "eb34626", "Oct. 2019"),
            ("2020-01-05", "91459fb", "Jan. 2020"),
            ("2020-04-12", "1722758", "Apr. 2020"),
        ],
        GraalJs => versions![GraalJs, EsEdition::Es2020;
            ("v20.1.0", "299f61f", "May 2020"),
        ],
    }
}

/// All 51 engine-version configurations (Table 1).
pub fn all_versions() -> Vec<EngineVersion> {
    EngineName::ALL.iter().flat_map(|&e| versions_of(e)).collect()
}

/// Number of versions of `engine`.
pub fn version_count(engine: EngineName) -> u32 {
    versions_of(engine).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_one_configurations() {
        assert_eq!(all_versions().len(), 51);
    }

    #[test]
    fn ordinals_are_dense_and_oldest_first() {
        for e in EngineName::ALL {
            let vs = versions_of(e);
            for (i, v) in vs.iter().enumerate() {
                assert_eq!(v.ordinal, i as u32);
                assert_eq!(v.engine, e);
            }
        }
    }

    #[test]
    fn edition_gating() {
        assert!(!EsEdition::Es2011.supports_api("String.prototype.repeat"));
        assert!(EsEdition::Es2015.supports_api("String.prototype.repeat"));
        assert!(!EsEdition::Es2015.supports_api("Array.prototype.flat"));
        assert!(EsEdition::Es2019.supports_api("Array.prototype.flat"));
        assert!(EsEdition::Es2011.supports_api("String.prototype.substr"));
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(EngineName::Jsc.as_str(), "JSC");
        assert_eq!(versions_of(EngineName::GraalJs)[0].label(), "Graaljs v20.1.0");
    }
}
