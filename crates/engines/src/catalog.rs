//! The seeded conformance-bug catalog.
//!
//! Every simulated engine bug is a [`SeededBug`]: an engine + version range,
//! a target API, a **trigger** (predicate over the call site), and an
//! **effect** (the deviation applied when the trigger fires). The catalog
//! contains
//!
//! * the ten concrete bugs from the paper's listings (Figure 2, Listings
//!   1–9), hand-written below with their documented version ranges, and
//! * a deterministic template-derived population that reproduces the paper's
//!   per-engine bug counts (Table 2), per-version attribution (Table 3),
//!   discovery-mechanism split (Table 4), buggy-API-type distribution
//!   (Table 5), and per-component distribution (Figure 7).
//!
//! A bug is *hidden*: it only manifests when a test case calls the right API
//! with trigger-satisfying arguments on an affected engine version — which is
//! exactly the discovery problem COMFORT's spec-guided test-data generation
//! is designed to solve.

use comfort_interp::hooks::{ValuePreview, ValueRecipe};
use comfort_interp::ErrorKind;

use crate::registry::{version_count, EngineName};

/// Unique id of a seeded bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BugId(pub u32);

impl std::fmt::Display for BugId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{:03}", self.0)
    }
}

/// Engine component the bug lives in (Figure 7 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Back-end code generation.
    CodeGen,
    /// API / library implementation.
    Implementation,
    /// Front-end parser.
    Parser,
    /// Regular-expression engine.
    RegexEngine,
    /// Optimizing tier.
    Optimizer,
}

impl Component {
    /// All components, Figure 7 order.
    pub const ALL: [Component; 5] = [
        Component::CodeGen,
        Component::Implementation,
        Component::Parser,
        Component::RegexEngine,
        Component::Optimizer,
    ];

    /// Display label.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::CodeGen => "CodeGen",
            Component::Implementation => "Implementation",
            Component::Parser => "Parser",
            Component::RegexEngine => "Regex Engine",
            Component::Optimizer => "Optimizer",
        }
    }

    /// Parses the display label produced by [`Component::as_str`].
    pub fn parse_label(s: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// Receiver/object type of the buggy API (Table 5 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ApiType {
    Object,
    String,
    Array,
    TypedArray,
    Number,
    Eval,
    DataView,
    Json,
    RegExp,
    Date,
    /// Bug not tied to a standard API (language-construct bugs).
    NonApi,
}

impl ApiType {
    /// Display label as in Table 5.
    pub fn as_str(self) -> &'static str {
        match self {
            ApiType::Object => "Object",
            ApiType::String => "String",
            ApiType::Array => "Array",
            ApiType::TypedArray => "TypedArray",
            ApiType::Number => "Number",
            ApiType::Eval => "eval function",
            ApiType::DataView => "DataView",
            ApiType::Json => "JSON",
            ApiType::RegExp => "RegExp",
            ApiType::Date => "Date",
            ApiType::NonApi => "(non-API)",
        }
    }

    /// All API types, Table 5 order.
    pub const ALL: [ApiType; 11] = [
        ApiType::Object,
        ApiType::String,
        ApiType::Array,
        ApiType::TypedArray,
        ApiType::Number,
        ApiType::Eval,
        ApiType::DataView,
        ApiType::Json,
        ApiType::RegExp,
        ApiType::Date,
        ApiType::NonApi,
    ];

    /// Parses the display label produced by [`ApiType::as_str`].
    pub fn parse_label(s: &str) -> Option<ApiType> {
        ApiType::ALL.into_iter().find(|a| a.as_str() == s)
    }
}

/// How the bug can be discovered (Table 4 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discovery {
    /// Any program exercising the API with ordinary values can expose it.
    ProgramGen,
    /// Requires boundary-condition test *data* from the ECMA-262 rules
    /// (`undefined`, `NaN`, negative, out-of-range, …).
    EcmaGuided,
}

/// Predicate over one builtin call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fires on every call.
    Always,
    /// Argument `i` is present and `undefined`.
    ArgUndefined(usize),
    /// Argument `i` is absent (fewer args than `i + 1`).
    ArgMissing(usize),
    /// Argument `i` is a negative number.
    ArgNegative(usize),
    /// Argument `i` is `NaN`.
    ArgNaN(usize),
    /// Argument `i` is a non-integral finite number.
    ArgNonInteger(usize),
    /// Argument `i` is a number strictly below the bound.
    ArgBelow(usize, f64),
    /// Argument `i` is a number strictly above the bound.
    ArgAbove(usize, f64),
    /// Argument `i` is `±Infinity`.
    ArgInfinite(usize),
    /// Argument `i` is exactly `0`.
    ArgZero(usize),
    /// Argument `i` is a boolean.
    ArgIsBool(usize),
    /// Argument `i` is a string.
    ArgIsString(usize),
    /// Argument `i` is the empty string.
    ArgEmptyString(usize),
    /// The receiver is the empty string.
    ReceiverEmptyString,
    /// The receiver has this class name.
    ReceiverClass(&'static str),
    /// At least `n` arguments were passed.
    ArgCountAtLeast(usize),
}

impl Trigger {
    /// Evaluates the predicate against previews of receiver and arguments.
    pub fn matches(&self, receiver: &ValuePreview, args: &[ValuePreview]) -> bool {
        let num = |i: usize| args.get(i).and_then(ValuePreview::as_number);
        match *self {
            Trigger::Always => true,
            Trigger::ArgUndefined(i) => args.get(i).is_some_and(ValuePreview::is_undefined),
            Trigger::ArgMissing(i) => args.len() <= i,
            Trigger::ArgNegative(i) => num(i).is_some_and(|n| n < 0.0),
            Trigger::ArgNaN(i) => num(i).is_some_and(f64::is_nan),
            Trigger::ArgNonInteger(i) => num(i).is_some_and(|n| n.is_finite() && n.fract() != 0.0),
            Trigger::ArgBelow(i, b) => num(i).is_some_and(|n| n < b),
            Trigger::ArgAbove(i, b) => num(i).is_some_and(|n| n > b),
            Trigger::ArgInfinite(i) => num(i).is_some_and(f64::is_infinite),
            Trigger::ArgZero(i) => num(i).is_some_and(|n| n == 0.0),
            Trigger::ArgIsBool(i) => matches!(args.get(i), Some(ValuePreview::Bool(_))),
            Trigger::ArgIsString(i) => matches!(args.get(i), Some(ValuePreview::Str(_))),
            Trigger::ArgEmptyString(i) => {
                matches!(args.get(i), Some(ValuePreview::Str(s)) if s.is_empty())
            }
            Trigger::ReceiverEmptyString => {
                matches!(receiver, ValuePreview::Str(s) if s.is_empty())
            }
            Trigger::ReceiverClass(c) => match receiver {
                ValuePreview::Object { class } => *class == c,
                ValuePreview::Array { .. } => c == "Array",
                _ => false,
            },
            Trigger::ArgCountAtLeast(n) => args.len() >= n,
        }
    }
}

/// The deviation a bug applies when triggered.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Skip the spec algorithm and return this value.
    WrongValue(ValueRecipe),
    /// Throw an error the spec does not call for.
    WrongThrow(ErrorKind),
    /// Swallow the spec-mandated error; return the recipe instead.
    MissingThrow(ValueRecipe),
    /// Simulated memory-safety crash (Listing 9).
    Crash,
    /// Performance bug: burn this much extra fuel per triggering call.
    Perf(u64),
    /// `eval` accepts a headless `for(…)` (Listing 7).
    EvalHeadlessFor,
    /// `split` regex engine mishandles a leading `^` anchor (Listing 8).
    SplitAnchor,
    /// `array[true] = v` appends an element (Listing 6).
    ArrayBoolKeyAppend,
    /// O(n) relocation per reverse-order array fill (Listing 2).
    ArrayReverseFill,
    /// `defineProperty` on array `length` misses the TypeError (Listing 1).
    DefinePropLengthSuppress,
}

/// One seeded conformance bug.
#[derive(Debug, Clone)]
pub struct SeededBug {
    /// Stable id.
    pub id: BugId,
    /// Affected engine.
    pub engine: EngineName,
    /// First version ordinal that has the bug.
    pub introduced: u32,
    /// Version ordinal where the bug was fixed upstream (exclusive), if any.
    pub fixed_in: Option<u32>,
    /// Canonical API name the bug hooks (`None` for construct-level bugs
    /// dispatched through the special hooks).
    pub api: Option<&'static str>,
    /// All triggers must match (conjunction).
    pub triggers: Vec<Trigger>,
    /// The deviation.
    pub effect: Effect,
    /// Figure 7 component.
    pub component: Component,
    /// Table 5 object type.
    pub api_type: ApiType,
    /// Table 4 discovery mechanism.
    pub discovery: Discovery,
    /// `true` if the violated rule is written as ECMA-262 pseudo-code (and
    /// is therefore in the `comfort-ecma262` database); the paper's DIE
    /// Listing-12 class has `false`.
    pub pseudocode_rule: bool,
    /// Bug only manifests in strict mode.
    pub strict_only: bool,
}

impl SeededBug {
    /// `true` if the bug exists in version `ordinal` of its engine.
    pub fn active_in(&self, ordinal: u32) -> bool {
        ordinal >= self.introduced && self.fixed_in.is_none_or(|f| ordinal < f)
    }
}

/// A template from which engine-specific bugs are stamped out.
struct Template {
    api: &'static str,
    triggers: &'static [Trigger],
    effect: Effect,
    api_type: ApiType,
    discovery: Discovery,
    component: Component,
    strict_only: bool,
}

macro_rules! tpl {
    ($api:literal, [$($t:expr),*], $e:expr, $ty:ident, $d:ident, $c:ident) => {
        Template {
            api: $api,
            triggers: &[$($t),*],
            effect: $e,
            api_type: ApiType::$ty,
            discovery: Discovery::$d,
            component: Component::$c,
            strict_only: false,
        }
    };
    ($api:literal, [$($t:expr),*], $e:expr, $ty:ident, $d:ident, $c:ident, strict) => {
        Template {
            api: $api,
            triggers: &[$($t),*],
            effect: $e,
            api_type: ApiType::$ty,
            discovery: Discovery::$d,
            component: Component::$c,
            strict_only: true,
        }
    };
}

/// The template pool. Ordered so that stamping engines' quotas out of it
/// reproduces the Table 5 object-type distribution (Object and String
/// dominate) and the Figure 7 component distribution.
fn templates() -> Vec<Template> {
    use Effect::*;
    use Trigger::*;
    use ValueRecipe as R;
    vec![
        // --- Object (Table 5 row 1) -------------------------------------------------
        tpl!(
            "Object.keys",
            [ArgCountAtLeast(1), ReceiverClass("Object")],
            WrongValue(R::Undefined),
            Object,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Object.assign",
            [ArgMissing(1)],
            WrongThrow(ErrorKind::Type),
            Object,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Object.freeze",
            [Always],
            WrongValue(R::Undefined),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.defineProperty",
            [ArgCountAtLeast(3)],
            MissingThrow(R::Arg(0)),
            Object,
            EcmaGuided,
            CodeGen,
            strict
        ),
        tpl!(
            "Object.getOwnPropertyNames",
            [Always],
            WrongValue(R::Undefined),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.values",
            [Always],
            WrongValue(R::Str(String::new())),
            Object,
            ProgramGen,
            CodeGen
        ),
        tpl!("Object.entries", [Always], WrongValue(R::Undefined), Object, ProgramGen, CodeGen),
        tpl!(
            "Object.prototype.hasOwnProperty",
            [ArgMissing(0)],
            WrongValue(R::Bool(true)),
            Object,
            EcmaGuided,
            Implementation
        ),
        tpl!("Object.seal", [Always], WrongValue(R::Undefined), Object, ProgramGen, Optimizer),
        tpl!(
            "Object.isFrozen",
            [Always],
            WrongValue(R::Bool(true)),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.create",
            [ArgCountAtLeast(1)],
            WrongThrow(ErrorKind::Type),
            Object,
            ProgramGen,
            CodeGen
        ),
        tpl!("Object.getPrototypeOf", [Always], WrongValue(R::Null), Object, ProgramGen, Optimizer),
        tpl!(
            "Object.prototype.toString",
            [ReceiverClass("Array")],
            WrongValue(R::Str("[object Object]".into())),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.setPrototypeOf",
            [ArgCountAtLeast(2)],
            MissingThrow(R::Arg(0)),
            Object,
            EcmaGuided,
            Implementation,
            strict
        ),
        // --- String (Table 5 row 2) -------------------------------------------------
        tpl!(
            "String.prototype.replace",
            [ArgMissing(1)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.replace",
            [ArgIsBool(1)],
            WrongThrow(ErrorKind::Type),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.replace",
            [ArgCountAtLeast(3)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.indexOf",
            [ArgNegative(1)],
            WrongValue(R::Number(-1.0)),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.slice",
            [ArgInfinite(1)],
            WrongValue(R::Str(String::new())),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.substring",
            [ArgNaN(0)],
            WrongThrow(ErrorKind::Range),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.charAt",
            [ArgNonInteger(0)],
            WrongValue(R::Str(String::new())),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.charCodeAt",
            [ArgMissing(0)],
            WrongValue(R::Number(0.0)),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.split",
            [ArgEmptyString(0)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.concat",
            [ArgCountAtLeast(2)],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "String.prototype.repeat",
            [ArgZero(0)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.padStart",
            [ArgNegative(0)],
            WrongThrow(ErrorKind::Range),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.padEnd",
            [ArgEmptyString(1)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.trim",
            [ReceiverEmptyString],
            WrongThrow(ErrorKind::Type),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.toUpperCase",
            [Always],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "String.prototype.startsWith",
            [ArgMissing(0)],
            WrongValue(R::Bool(true)),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.endsWith",
            [ArgZero(1)],
            WrongValue(R::Bool(true)),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "String.prototype.includes",
            [ArgEmptyString(0)],
            WrongValue(R::Bool(false)),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.lastIndexOf",
            [Always],
            WrongValue(R::Number(-1.0)),
            String,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "String.fromCharCode",
            [ArgAbove(0, 65535.0)],
            WrongThrow(ErrorKind::Range),
            String,
            EcmaGuided,
            Implementation
        ),
        // --- Array (Table 5 row 3) --------------------------------------------------
        tpl!(
            "Array.prototype.splice",
            [ArgNegative(0)],
            WrongValue(R::Undefined),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.prototype.slice",
            [ArgInfinite(0)],
            WrongThrow(ErrorKind::Range),
            Array,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "Array.prototype.indexOf",
            [ArgNaN(1)],
            WrongValue(R::Number(0.0)),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.prototype.join",
            [ArgUndefined(0)],
            WrongValue(R::Str(String::new())),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.prototype.fill",
            [ArgNegative(1)],
            WrongValue(R::Receiver),
            Array,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "Array.prototype.concat",
            [Always],
            WrongValue(R::Receiver),
            Array,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "Array.prototype.push",
            [ArgCountAtLeast(2)],
            WrongValue(R::Number(1.0)),
            Array,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Array.prototype.unshift",
            [Always],
            WrongValue(R::Number(0.0)),
            Array,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Array.prototype.reverse",
            [Always],
            WrongValue(R::Receiver),
            Array,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "Array.prototype.sort",
            [ArgCountAtLeast(1)],
            WrongValue(R::Receiver),
            Array,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Array.isArray",
            [ArgIsString(0)],
            WrongValue(R::Bool(true)),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.from",
            [ArgEmptyString(0)],
            WrongThrow(ErrorKind::Type),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.prototype.includes",
            [ArgNaN(0)],
            WrongValue(R::Bool(false)),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Array.prototype.flat",
            [ArgInfinite(0)],
            WrongThrow(ErrorKind::Range),
            Array,
            EcmaGuided,
            Implementation
        ),
        // --- TypedArray (Table 5 row 4) ----------------------------------------------
        tpl!(
            "Uint8Array",
            [ArgNegative(0)],
            MissingThrow(R::Undefined),
            TypedArray,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Int32Array",
            [ArgNonInteger(0)],
            WrongThrow(ErrorKind::Type),
            TypedArray,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Float64Array",
            [ArgIsString(0)],
            WrongThrow(ErrorKind::Type),
            TypedArray,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "%TypedArray%.prototype.fill",
            [ArgNaN(0)],
            WrongValue(R::Receiver),
            TypedArray,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "%TypedArray%.prototype.subarray",
            [ArgNegative(0)],
            WrongThrow(ErrorKind::Range),
            TypedArray,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "%TypedArray%.prototype.set",
            [ArgCountAtLeast(2)],
            WrongThrow(ErrorKind::Range),
            TypedArray,
            EcmaGuided,
            CodeGen
        ),
        // --- Number (Table 5 row 5) ---------------------------------------------------
        tpl!(
            "Number.prototype.toPrecision",
            [ArgZero(0)],
            MissingThrow(R::ReceiverToString),
            Number,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Number.prototype.toString",
            [ArgAbove(0, 36.0)],
            MissingThrow(R::ReceiverToString),
            Number,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "parseInt",
            [ArgAbove(1, 36.0)],
            WrongValue(R::Number(f64::NAN)),
            Number,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "parseFloat",
            [ArgEmptyString(0)],
            WrongValue(R::Number(0.0)),
            Number,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "Number.isInteger",
            [ArgIsString(0)],
            WrongValue(R::Bool(true)),
            Number,
            EcmaGuided,
            Implementation
        ),
        // --- eval (Table 5 row 6) -------------------------------------------------------
        tpl!("eval", [ArgEmptyString(0)], WrongThrow(ErrorKind::Syntax), Eval, EcmaGuided, Parser),
        tpl!("eval", [ArgIsBool(0)], WrongThrow(ErrorKind::Type), Eval, EcmaGuided, Parser),
        // --- DataView (Table 5 row 7) ----------------------------------------------------
        tpl!(
            "DataView.prototype.getUint32",
            [ArgNegative(0)],
            WrongValue(R::Number(0.0)),
            DataView,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "DataView.prototype.setUint32",
            [ArgNaN(1)],
            WrongThrow(ErrorKind::Type),
            DataView,
            EcmaGuided,
            Implementation
        ),
        tpl!("DataView", [ArgMissing(0)], WrongValue(R::Undefined), DataView, EcmaGuided, CodeGen),
        // --- JSON (Table 5 row 8) ----------------------------------------------------------
        tpl!(
            "JSON.stringify",
            [ArgUndefined(0)],
            WrongValue(R::Str("null".into())),
            Json,
            EcmaGuided,
            Implementation
        ),
        tpl!("JSON.parse", [ArgEmptyString(0)], WrongValue(R::Null), Json, EcmaGuided, Parser),
        tpl!(
            "JSON.stringify",
            [ArgCountAtLeast(3)],
            WrongValue(R::Str(String::new())),
            Json,
            ProgramGen,
            Implementation
        ),
        // --- RegExp (Table 5 row 9) ----------------------------------------------------------
        tpl!(
            "RegExp.prototype.exec",
            [ArgEmptyString(0)],
            WrongValue(R::Null),
            RegExp,
            EcmaGuided,
            RegexEngine
        ),
        tpl!(
            "RegExp.prototype.test",
            [ArgMissing(0)],
            WrongValue(R::Bool(true)),
            RegExp,
            EcmaGuided,
            RegexEngine
        ),
        tpl!(
            "String.prototype.match",
            [Always],
            WrongValue(R::Null),
            RegExp,
            ProgramGen,
            RegexEngine
        ),
        tpl!(
            "String.prototype.search",
            [Always],
            WrongValue(R::Number(-1.0)),
            RegExp,
            ProgramGen,
            RegexEngine
        ),
        // --- Date (Table 5 row 10) --------------------------------------------------------------
        tpl!(
            "Date.prototype.getFullYear",
            [Always],
            WrongValue(R::Number(1970.0)),
            Date,
            ProgramGen,
            Implementation
        ),
        tpl!("Date.now", [Always], WrongValue(R::Number(0.0)), Date, ProgramGen, Implementation),
        // --- extra long-tail (keeps template overlap between engines low) -------------
        tpl!(
            "Math.round",
            [ArgNonInteger(0)],
            WrongValue(R::Number(0.0)),
            NonApi,
            EcmaGuided,
            CodeGen
        ),
        tpl!("Math.min", [ArgNaN(0)], WrongValue(R::Number(0.0)), NonApi, EcmaGuided, CodeGen),
        tpl!("Math.max", [ArgMissing(0)], WrongValue(R::Number(0.0)), NonApi, EcmaGuided, CodeGen),
        tpl!("Math.pow", [ArgZero(1)], WrongValue(R::Number(0.0)), NonApi, EcmaGuided, Optimizer),
        tpl!("isNaN", [ArgIsString(0)], WrongValue(R::Bool(false)), NonApi, ProgramGen, CodeGen),
        tpl!("isFinite", [ArgInfinite(0)], WrongValue(R::Bool(true)), NonApi, ProgramGen, CodeGen),
        tpl!(
            "Function.prototype.call",
            [ArgCountAtLeast(3)],
            WrongThrow(ErrorKind::Type),
            NonApi,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Function.prototype.apply",
            [ArgMissing(1)],
            WrongThrow(ErrorKind::Type),
            NonApi,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.big",
            [Always],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Array.prototype.pop",
            [Always],
            WrongValue(R::Undefined),
            Array,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "Array.prototype.shift",
            [Always],
            WrongValue(R::Undefined),
            Array,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "String.prototype.localeCompare",
            [Always],
            WrongValue(R::Number(0.0)),
            String,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Number.parseFloat",
            [Always],
            WrongValue(R::Number(f64::NAN)),
            Number,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Object.isExtensible",
            [Always],
            WrongValue(R::Bool(false)),
            Object,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "Object.getOwnPropertyDescriptor",
            [ArgCountAtLeast(2)],
            WrongValue(R::Undefined),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.preventExtensions",
            [Always],
            WrongValue(R::Undefined),
            Object,
            ProgramGen,
            Optimizer,
            strict
        ),
        tpl!(
            "String.prototype.substr",
            [ArgNegative(0)],
            WrongValue(R::Receiver),
            String,
            EcmaGuided,
            CodeGen
        ),
        tpl!(
            "String.prototype.substring",
            [ArgCountAtLeast(2), ArgAbove(0, 0.0)],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            Optimizer
        ),
        tpl!(
            "Array.prototype.lastIndexOf",
            [ArgNegative(1)],
            WrongValue(R::Number(-1.0)),
            Array,
            EcmaGuided,
            Implementation
        ),
        tpl!("Math.sign", [ArgZero(0)], WrongValue(R::Number(1.0)), NonApi, EcmaGuided, CodeGen),
        tpl!(
            "Object.prototype.propertyIsEnumerable",
            [Always],
            WrongValue(R::Bool(true)),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "Object.prototype.isPrototypeOf",
            [Always],
            WrongValue(R::Bool(false)),
            Object,
            ProgramGen,
            Implementation
        ),
        tpl!(
            "String.prototype.codePointAt",
            [ArgMissing(0)],
            WrongValue(R::Undefined),
            String,
            EcmaGuided,
            Implementation
        ),
        tpl!(
            "Number.prototype.toFixed",
            [ArgAbove(0, 20.0)],
            MissingThrow(R::ReceiverToString),
            Number,
            EcmaGuided,
            Implementation
        ),
        tpl!("Array.of", [Always], WrongValue(R::Undefined), Array, ProgramGen, CodeGen),
        tpl!(
            "String.prototype.trimStart",
            [Always],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "String.prototype.trimEnd",
            [Always],
            WrongValue(R::Receiver),
            String,
            ProgramGen,
            CodeGen
        ),
        tpl!(
            "Boolean.prototype.valueOf",
            [Always],
            WrongValue(R::Bool(false)),
            NonApi,
            ProgramGen,
            Implementation
        ),
    ]
}

/// Per-engine submitted-bug quota (Table 2).
pub fn quota(engine: EngineName) -> usize {
    match engine {
        EngineName::V8 => 4,
        EngineName::ChakraCore => 7,
        EngineName::Jsc => 12,
        EngineName::SpiderMonkey => 3,
        EngineName::Rhino => 44,
        EngineName::Nashorn => 18,
        EngineName::Hermes => 16,
        EngineName::JerryScript => 35,
        EngineName::QuickJs => 17,
        EngineName::GraalJs => 2,
    }
}

/// Per-engine version-introduction distribution, mirroring Table 3:
/// `(ordinal, how many template bugs introduced at that version)`.
fn intro_distribution(engine: EngineName) -> Vec<(u32, usize)> {
    use EngineName::*;
    match engine {
        V8 => vec![(0, 3)],
        ChakraCore => vec![(3, 3), (2, 1), (1, 1), (0, 1)],
        Jsc => vec![(3, 1), (2, 2), (1, 7), (0, 1)],
        SpiderMonkey => vec![(1, 1), (0, 1)],
        Rhino => vec![(6, 24), (5, 16), (4, 2)],
        Nashorn => vec![(4, 4), (3, 14)],
        Hermes => vec![(3, 2), (2, 1), (1, 5), (0, 7)],
        JerryScript => vec![(8, 2), (6, 17), (4, 6), (1, 8), (0, 1)],
        QuickJs => vec![(5, 1), (4, 2), (3, 4), (2, 3), (1, 3), (0, 2)],
        GraalJs => vec![],
    }
}

/// Builds the full catalog: paper-listing bugs + template-derived bugs.
///
/// The construction is deterministic, so bug ids are stable across runs.
pub fn build_catalog() -> Vec<SeededBug> {
    let mut out = paper_listing_bugs();
    let pool = templates();
    let mut next_id = out.len() as u32;

    // Each engine reads the pool starting at its own offset so that any one
    // template is shared by only a couple of engines (keeps every deviation a
    // strict minority across the ten-engine testbed matrix, which majority
    // voting requires).
    for (idx, engine) in EngineName::ALL.into_iter().enumerate() {
        let handwritten = out.iter().filter(|b| b.engine == engine).count();
        let need = quota(engine).saturating_sub(handwritten);
        let mut intro = intro_distribution(engine);
        let nv = version_count(engine);
        let mut offset = idx * 11;
        for _ in 0..need {
            let t = &pool[offset % pool.len()];
            offset += 1;
            let introduced = match intro.iter_mut().find(|(_, n)| *n > 0) {
                Some((ord, n)) => {
                    *n -= 1;
                    *ord
                }
                None => (offset as u32 * 7) % nv,
            };
            out.push(SeededBug {
                id: BugId(next_id),
                engine,
                introduced,
                fixed_in: None,
                api: Some(t.api),
                triggers: t.triggers.to_vec(),
                effect: t.effect.clone(),
                component: t.component,
                api_type: t.api_type,
                discovery: t.discovery,
                pseudocode_rule: t.discovery == Discovery::EcmaGuided,
                strict_only: t.strict_only,
            });
            next_id += 1;
        }
    }
    out
}

/// The ten concrete bugs from the paper's figures/listings.
pub fn paper_listing_bugs() -> Vec<SeededBug> {
    use EngineName::*;
    let mut id = 0;
    let mut mk = |engine: EngineName,
                  introduced: u32,
                  fixed_in: Option<u32>,
                  api: Option<&'static str>,
                  triggers: Vec<Trigger>,
                  effect: Effect,
                  component: Component,
                  api_type: ApiType,
                  discovery: Discovery,
                  pseudocode_rule: bool| {
        let bug = SeededBug {
            id: BugId(id),
            engine,
            introduced,
            fixed_in,
            api,
            triggers,
            effect,
            component,
            api_type,
            discovery,
            pseudocode_rule,
            strict_only: false,
        };
        id += 1;
        bug
    };
    vec![
        // Figure 2: Rhino substr(start, undefined) → "".
        mk(
            Rhino,
            0,
            None,
            Some("String.prototype.substr"),
            vec![Trigger::ArgUndefined(1)],
            Effect::WrongValue(ValueRecipe::Str(String::new())),
            Component::Implementation,
            ApiType::String,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 1: V8 misses the TypeError on redefining array length.
        mk(
            V8,
            0,
            None,
            None,
            vec![],
            Effect::DefinePropLengthSuppress,
            Component::CodeGen,
            ApiType::Object,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 1 (same root cause) in Graaljs.
        mk(
            GraalJs,
            0,
            None,
            None,
            vec![],
            Effect::DefinePropLengthSuppress,
            Component::CodeGen,
            ApiType::Object,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 2: Hermes reverse-fill reallocation, fixed in v0.3.0.
        mk(
            Hermes,
            0,
            Some(1),
            None,
            vec![],
            Effect::ArrayReverseFill,
            Component::CodeGen,
            ApiType::Array,
            Discovery::ProgramGen,
            false,
        ),
        // Listing 3: SpiderMonkey TypeError on Uint32Array(3.14), fixed v52.9.
        mk(
            SpiderMonkey,
            0,
            Some(2),
            Some("Uint32Array"),
            vec![Trigger::ArgNonInteger(0)],
            Effect::WrongThrow(ErrorKind::Type),
            Component::Implementation,
            ApiType::TypedArray,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 4: Rhino toFixed(-2) returns the string instead of RangeError.
        mk(
            Rhino,
            0,
            None,
            Some("Number.prototype.toFixed"),
            vec![Trigger::ArgNegative(0)],
            Effect::MissingThrow(ValueRecipe::ReceiverToString),
            Component::Implementation,
            ApiType::Number,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 5: JSC TypeError on TypedArray.set('123'), fixed in 261782.
        mk(
            Jsc,
            0,
            Some(3),
            Some("%TypedArray%.prototype.set"),
            vec![Trigger::ArgIsString(0)],
            Effect::WrongThrow(ErrorKind::Type),
            Component::Implementation,
            ApiType::TypedArray,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 5 in Graaljs too.
        mk(
            GraalJs,
            0,
            None,
            Some("%TypedArray%.prototype.set"),
            vec![Trigger::ArgIsString(0)],
            Effect::WrongThrow(ErrorKind::Type),
            Component::Implementation,
            ApiType::TypedArray,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 6: QuickJS appends obj[true] as an array element.
        mk(
            QuickJs,
            0,
            None,
            None,
            vec![],
            Effect::ArrayBoolKeyAppend,
            Component::CodeGen,
            ApiType::Array,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 7: ChakraCore accepts a headless for(…) inside eval.
        mk(
            ChakraCore,
            0,
            None,
            None,
            vec![],
            Effect::EvalHeadlessFor,
            Component::Parser,
            ApiType::Eval,
            Discovery::EcmaGuided,
            true,
        ),
        // Listing 8: JerryScript split(/^A/) anchor bug.
        mk(
            JerryScript,
            0,
            None,
            None,
            vec![],
            Effect::SplitAnchor,
            Component::RegexEngine,
            ApiType::String,
            Discovery::ProgramGen,
            false,
        ),
        // Listing 9: QuickJS crash on ''.normalize(true).
        mk(
            QuickJs,
            0,
            None,
            Some("String.prototype.normalize"),
            vec![Trigger::ReceiverEmptyString, Trigger::ArgIsBool(0)],
            Effect::Crash,
            Component::Implementation,
            ApiType::String,
            Discovery::ProgramGen,
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2_quotas() {
        let catalog = build_catalog();
        for e in EngineName::ALL {
            let n = catalog.iter().filter(|b| b.engine == e).count();
            assert_eq!(n, quota(e), "engine {e}");
        }
        assert_eq!(catalog.len(), 158);
    }

    #[test]
    fn bug_ids_unique() {
        let catalog = build_catalog();
        let mut ids: Vec<u32> = catalog.iter().map(|b| b.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), catalog.len());
    }

    #[test]
    fn table4_mechanism_split_shape() {
        let catalog = build_catalog();
        let ecma = catalog.iter().filter(|b| b.discovery == Discovery::EcmaGuided).count();
        let pgen = catalog.len() - ecma;
        // Paper: 97 program-generation vs 61 ECMA-guided. Require the same
        // shape: both present, ECMA-guided a large minority.
        assert!((40..=100).contains(&ecma), "ecma={ecma}");
        assert!(pgen >= 40, "pgen={pgen}");
    }

    #[test]
    fn version_ranges_valid() {
        for bug in build_catalog() {
            let nv = version_count(bug.engine);
            assert!(bug.introduced < nv, "{}: introduced out of range", bug.id);
            if let Some(f) = bug.fixed_in {
                assert!(f > bug.introduced && f <= nv, "{}: bad fixed_in", bug.id);
            }
        }
    }

    #[test]
    fn active_in_respects_ranges() {
        let bug = &paper_listing_bugs()[4]; // SpiderMonkey Uint32Array, fixed at 2
        assert!(bug.active_in(0));
        assert!(bug.active_in(1));
        assert!(!bug.active_in(2));
        assert!(!bug.active_in(6));
    }

    #[test]
    fn triggers_match_expected_sites() {
        use comfort_interp::hooks::ValuePreview as P;
        let t = Trigger::ArgUndefined(1);
        assert!(t.matches(&P::Str("x".into()), &[P::Number(0.0), P::Undefined]));
        assert!(!t.matches(&P::Str("x".into()), &[P::Number(0.0)])); // absent ≠ undefined
        assert!(Trigger::ArgMissing(1).matches(&P::Undefined, &[P::Number(0.0)]));
        assert!(Trigger::ArgNonInteger(0).matches(&P::Undefined, &[P::Number(2.75)]));
        assert!(!Trigger::ArgNonInteger(0).matches(&P::Undefined, &[P::Number(3.0)]));
        assert!(Trigger::ReceiverEmptyString.matches(&P::Str(String::new()), &[]));
        assert!(Trigger::ReceiverClass("Array").matches(&P::Array { len: 2 }, &[]));
    }

    #[test]
    fn every_engine_has_a_bug_in_its_latest_version() {
        // Table 3: COMFORT found 38 new bugs in latest versions — at minimum
        // every engine must have ≥1 bug alive in its newest release.
        let catalog = build_catalog();
        for e in EngineName::ALL {
            let latest = version_count(e) - 1;
            assert!(
                catalog.iter().any(|b| b.engine == e && b.active_in(latest)),
                "engine {e} has no bug in latest version"
            );
        }
    }

    #[test]
    fn template_overlap_is_a_minority_per_api_trigger() {
        // Majority voting requires that no identical deviation exists in five
        // or more of the ten engines.
        use std::collections::HashMap;
        let catalog = build_catalog();
        let mut by_key: HashMap<(Option<&str>, String), std::collections::HashSet<EngineName>> =
            HashMap::new();
        for b in &catalog {
            by_key
                .entry((b.api, format!("{:?}{:?}", b.triggers, b.effect)))
                .or_default()
                .insert(b.engine);
        }
        for ((api, _), engines) in by_key {
            assert!(
                engines.len() <= 4,
                "bug template on {api:?} shared by {} engines",
                engines.len()
            );
        }
    }
}
