//! Seeded fault injection for hardening the differential harness.
//!
//! Real engine binaries crash, wedge, and print garbage (§3.4 keeps voting
//! anyway). Our simulated testbeds are too polite to exercise those paths,
//! so this module makes misbehaviour injectable: a [`FaultPlan`] attached to
//! a [`Testbed`](crate::Testbed) decides — as a pure function of the plan
//! seed and the program text — whether a given run panics, hangs, emits
//! garbage, or fails transiently. Content-addressed decisions keep chaos
//! campaigns bit-identical at any thread count and shard layout.

use comfort_syntax::{print_program, Program};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The fault classes a [`FaultPlan`] can inject, checked in this order
/// (panic wins over hang wins over garbage wins over transient when rate
/// bands overlap a single draw).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A fatal signal (SIGABRT-class). In a jailed worker process this
    /// raises the real signal and kills the process; contained in-process
    /// it panics with a [`ChaosAbort`] payload that the harness maps to
    /// the identical deterministic `Crashed` outcome.
    Abort,
    /// `panic!` inside the run (simulates a harness-visible engine abort).
    Panic,
    /// The run wedges (sleeps) and reports itself hung.
    Hang,
    /// The run "succeeds" but prints deterministic garbage.
    Garbage,
    /// The run fails with a retryable transient error for the first
    /// [`FaultPlan::transient_persistence`] attempts.
    Transient,
}

impl FaultKind {
    /// Stable label used in telemetry and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Abort => "abort",
            FaultKind::Panic => "panic",
            FaultKind::Hang => "hang",
            FaultKind::Garbage => "garbage",
            FaultKind::Transient => "transient",
        }
    }
}

/// The panic payload used for injected panics. The harness installs a hook
/// that keeps these off stderr (see
/// [`silence_chaos_panics`](crate::harness::silence_chaos_panics)); any
/// other payload still reports normally.
#[derive(Debug)]
pub struct ChaosPanic {
    /// Label of the testbed that injected the panic.
    pub testbed: String,
}

/// The panic payload for a *contained* abort fault: in-process runs must
/// not actually die, but they must report the same deterministic fatal
/// outcome a jailed worker process observes when the signal is real. The
/// harness maps this payload to `Crashed("fatal signal N (NAME) on L")`.
#[derive(Debug)]
pub struct ChaosAbort {
    /// Label of the testbed that injected the abort.
    pub testbed: String,
    /// The fatal signal number the abort simulates (6 = SIGABRT).
    pub signal: i32,
}

/// Stable name for the signals the chaos planner and the fleet supervisor
/// classify (anything else renders as `SIG<n>` by number only).
pub fn signal_name(signal: i32) -> &'static str {
    match signal {
        4 => "SIGILL",
        6 => "SIGABRT",
        8 => "SIGFPE",
        9 => "SIGKILL",
        11 => "SIGSEGV",
        15 => "SIGTERM",
        24 => "SIGXCPU",
        _ => "SIG?",
    }
}

/// The deterministic `Crashed` detail string for a fatal signal on a
/// testbed — shared by the contained in-process path and the jailed
/// worker path so both produce bit-identical reports.
pub fn fatal_signal_message(signal: i32, testbed: &str) -> String {
    format!("fatal signal {signal} ({}) on {testbed}", signal_name(signal))
}

/// A raw fault surfaced by [`Testbed::run_attempt`](crate::Testbed::run_attempt)
/// before the isolation layer maps it to a deterministic [`RunResult`]
/// outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawFault {
    /// A retryable transient failure (I/O-flake analogue).
    Transient {
        /// Human-readable failure description.
        message: String,
    },
    /// The run wedged for `millis` of wall-clock time and would never have
    /// produced a result on its own.
    Wedged {
        /// How long the run slept before reporting itself hung.
        millis: u64,
    },
}

/// A deterministic fault-injection plan: per-run fault probabilities drawn
/// from a content-addressed hash, so the same (seed, program, attempt)
/// triple always yields the same decision regardless of scheduling.
///
/// Rates are cumulative bands over one uniform draw in `[0, 1)`: a plan
/// with `panic_rate = 0.10` and `hang_rate = 0.05` panics on draws below
/// 0.10 and hangs on draws in `[0.10, 0.15)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan seed. [`FaultPlan::DERIVE`] means "derive from the campaign
    /// seed" when the plan is attached through a campaign config.
    pub seed: u64,
    /// Probability a run dies by (or, contained, simulates) a fatal
    /// signal. Checked before every other band.
    pub abort_rate: f64,
    /// The signal an abort fault raises (default 6 = SIGABRT).
    pub abort_signal: i32,
    /// Probability a run panics.
    pub panic_rate: f64,
    /// Probability a run wedges.
    pub hang_rate: f64,
    /// Probability a run emits garbage output.
    pub garbage_rate: f64,
    /// Probability a run fails transiently (retry succeeds).
    pub transient_rate: f64,
    /// How many attempts a transient fault persists for (1 = the first
    /// retry succeeds; larger values exhaust small retry budgets).
    pub transient_persistence: u32,
    /// Wall-clock sleep for injected hangs, in milliseconds. Kept small by
    /// default so chaos campaigns stay fast.
    pub hang_millis: u64,
    /// Size of injected garbage output, in bytes.
    pub garbage_bytes: usize,
}

impl FaultPlan {
    /// Sentinel seed meaning "derive my seed from the campaign seed".
    pub const DERIVE: u64 = 0;

    /// A plan with the given seed and all fault rates zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            abort_rate: 0.0,
            abort_signal: 6,
            panic_rate: 0.0,
            hang_rate: 0.0,
            garbage_rate: 0.0,
            transient_rate: 0.0,
            transient_persistence: 1,
            hang_millis: 20,
            garbage_bytes: 64,
        }
    }

    /// A plan whose seed is derived (splitmix64) from a campaign seed, so
    /// "the chaos schedule" is a pure function of the campaign config.
    pub fn derived_from(campaign_seed: u64) -> Self {
        FaultPlan::new(splitmix64(campaign_seed ^ 0xC4A0_5C4A_05C4_A05C))
    }

    /// Sets the fatal-signal probability.
    pub fn abort_rate(mut self, rate: f64) -> Self {
        self.abort_rate = rate;
        self
    }

    /// Sets the signal an abort fault raises.
    pub fn abort_signal(mut self, signal: i32) -> Self {
        self.abort_signal = signal;
        self
    }

    /// Sets the panic probability.
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the hang probability.
    pub fn hang_rate(mut self, rate: f64) -> Self {
        self.hang_rate = rate;
        self
    }

    /// Sets the garbage-output probability.
    pub fn garbage_rate(mut self, rate: f64) -> Self {
        self.garbage_rate = rate;
        self
    }

    /// Sets the transient-failure probability.
    pub fn transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate;
        self
    }

    /// Sets how many attempts a transient fault persists for.
    pub fn transient_persistence(mut self, attempts: u32) -> Self {
        self.transient_persistence = attempts.max(1);
        self
    }

    /// Sets the injected-hang duration in milliseconds.
    pub fn hang_millis(mut self, millis: u64) -> Self {
        self.hang_millis = millis;
        self
    }

    /// `true` when every rate lies in `[0, 1]` and their sum does too
    /// (the bands must fit one uniform draw).
    pub fn rates_valid(&self) -> bool {
        let rates = [
            self.abort_rate,
            self.panic_rate,
            self.hang_rate,
            self.garbage_rate,
            self.transient_rate,
        ];
        rates.iter().all(|r| (0.0..=1.0).contains(r) && r.is_finite())
            && rates.iter().sum::<f64>() <= 1.0
    }

    /// Decides the fault (if any) for running `program` at `attempt`
    /// (0 = first try). Pure function of `(seed, program text, attempt)` —
    /// never of wall-clock time or scheduling.
    pub fn decide(&self, program: &Program, attempt: u32) -> Option<FaultKind> {
        let draw = self.draw(program);
        let mut band = self.abort_rate;
        if draw < band {
            return Some(FaultKind::Abort);
        }
        band += self.panic_rate;
        if draw < band {
            return Some(FaultKind::Panic);
        }
        band += self.hang_rate;
        if draw < band {
            return Some(FaultKind::Hang);
        }
        band += self.garbage_rate;
        if draw < band {
            return Some(FaultKind::Garbage);
        }
        band += self.transient_rate;
        if draw < band && attempt < self.transient_persistence {
            return Some(FaultKind::Transient);
        }
        None
    }

    /// Deterministic garbage output for a garbage fault on `program`.
    pub fn garbage_output(&self, program: &Program) -> String {
        let mut state = splitmix64(self.content_hash(program) ^ 0x6A5B_9C3D);
        let mut out = String::with_capacity(self.garbage_bytes);
        const ALPHABET: &[u8] = b"\x00\x7f#@!~GARBAGE0123456789abcdef\n";
        while out.len() < self.garbage_bytes {
            state = splitmix64(state);
            out.push(ALPHABET[(state % ALPHABET.len() as u64) as usize] as char);
        }
        out
    }

    fn content_hash(&self, program: &Program) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        print_program(program).hash(&mut hasher);
        hasher.finish()
    }

    fn draw(&self, program: &Program) -> f64 {
        // Top 53 bits → uniform in [0, 1).
        (splitmix64(self.content_hash(program)) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 mixer (same scheme the executor uses for shard seeds).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_syntax::parse;

    fn program(src: &str) -> Program {
        parse(src).expect("test source parses")
    }

    #[test]
    fn decisions_are_deterministic_and_content_addressed() {
        let plan = FaultPlan::new(7).panic_rate(0.5).hang_rate(0.25);
        let a = program("print(1);");
        let b = program("print(2);");
        assert_eq!(plan.decide(&a, 0), plan.decide(&a, 0));
        // Different programs draw independently; over many programs both
        // faulting and clean runs must occur at these rates.
        let decisions: Vec<_> =
            (0..64).map(|i| plan.decide(&program(&format!("print({i});")), 0)).collect();
        assert!(decisions.iter().any(|d| d.is_some()));
        assert!(decisions.iter().any(|d| d.is_none()));
        let _ = b;
    }

    #[test]
    fn rate_bands_partition_in_order() {
        // A certain-fault plan: the first band wins.
        let plan = FaultPlan::new(1).abort_rate(1.0);
        assert_eq!(plan.decide(&program("print(1);"), 0), Some(FaultKind::Abort));
        let plan = FaultPlan::new(1).panic_rate(1.0);
        assert_eq!(plan.decide(&program("print(1);"), 0), Some(FaultKind::Panic));
        let plan = FaultPlan::new(1).hang_rate(1.0);
        assert_eq!(plan.decide(&program("print(1);"), 0), Some(FaultKind::Hang));
        // Abort outranks panic on the same draw.
        let plan = FaultPlan::new(1).abort_rate(1.0).panic_rate(1.0);
        assert!(!plan.rates_valid(), "bands exceed one draw");
        let plan = FaultPlan::new(1).abort_rate(0.5).panic_rate(0.5);
        assert!(plan.rates_valid());
    }

    #[test]
    fn fatal_signal_messages_are_deterministic_and_named() {
        assert_eq!(
            fatal_signal_message(6, "jsc-sim [chaos]"),
            fatal_signal_message(6, "jsc-sim [chaos]")
        );
        assert!(fatal_signal_message(6, "t").contains("SIGABRT"));
        assert!(fatal_signal_message(11, "t").contains("SIGSEGV"));
        assert!(fatal_signal_message(9, "t").contains("SIGKILL"));
        assert!(fatal_signal_message(64, "t").contains("SIG?"));
    }

    #[test]
    fn transient_faults_respect_persistence() {
        let plan = FaultPlan::new(3).transient_rate(1.0).transient_persistence(2);
        let p = program("print(1);");
        assert_eq!(plan.decide(&p, 0), Some(FaultKind::Transient));
        assert_eq!(plan.decide(&p, 1), Some(FaultKind::Transient));
        assert_eq!(plan.decide(&p, 2), None, "attempt beyond persistence succeeds");
    }

    #[test]
    fn garbage_is_deterministic_and_sized() {
        let plan = FaultPlan::new(9);
        let p = program("print(1);");
        assert_eq!(plan.garbage_output(&p), plan.garbage_output(&p));
        assert!(plan.garbage_output(&p).len() >= plan.garbage_bytes);
    }

    #[test]
    fn rate_validation() {
        assert!(FaultPlan::new(1).panic_rate(0.5).rates_valid());
        assert!(!FaultPlan::new(1).panic_rate(0.7).hang_rate(0.7).rates_valid());
        assert!(!FaultPlan::new(1).panic_rate(-0.1).rates_valid());
    }

    #[test]
    fn derived_seed_is_stable() {
        assert_eq!(FaultPlan::derived_from(42).seed, FaultPlan::derived_from(42).seed);
        assert_ne!(FaultPlan::derived_from(42).seed, FaultPlan::derived_from(43).seed);
    }
}
