//! The isolation harness: panic containment, watchdog, output caps, and
//! transient-fault retry around every testbed run.
//!
//! [`run_isolated_compiled`] is the hardened execution entry point. It wraps
//! [`Testbed::run_attempt_compiled`](crate::Testbed::run_attempt_compiled)
//! so that *no* misbehaviour of a testbed — a panic, a wedge, unbounded
//! output, or a flaky transient error — can escape as anything other than a
//! deterministic [`RunResult`] plus a [`FaultObserved`] classification.
//! `Testbed::run_compiled` delegates here with default policies, so every
//! call site (reduction, version probing, examples) is contained for free.
//! The chunk is an `Arc`, so handing a run to the watchdog thread costs a
//! reference-count bump instead of a deep program clone.

use crate::chaos::{fatal_signal_message, ChaosAbort, ChaosPanic, RawFault};
use crate::Testbed;
use comfort_interp::{compile, CompiledChunk, RunOptions, RunResult, RunStatus};
use comfort_syntax::Program;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

/// Containment knobs for one testbed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationPolicy {
    /// Catch panics inside the run and map them to [`RunStatus::Crashed`].
    pub contain_panics: bool,
    /// Optional wall-clock watchdog: when set, the run executes on a helper
    /// thread and is abandoned (reported as a hang) if it exceeds this many
    /// milliseconds. Fuel already bounds well-behaved evaluators, so the
    /// watchdog defaults to off; enable it when testbeds may wedge outside
    /// the fuel accounting.
    pub watchdog_millis: Option<u64>,
    /// Output size cap in bytes; larger outputs are truncated (with a
    /// marker) and flagged [`FaultObserved::OutputTruncated`].
    pub max_output_bytes: usize,
}

impl Default for IsolationPolicy {
    fn default() -> Self {
        IsolationPolicy { contain_panics: true, watchdog_millis: None, max_output_bytes: 1 << 20 }
    }
}

// The retry policy moved to the dependency-free telemetry crate so the
// durable `JsonlSink` can share it; the original path stays valid.
pub use comfort_telemetry::retry::RetryPolicy;

/// How a contained run misbehaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultObserved {
    /// The run panicked; the panic was contained and mapped to
    /// [`RunStatus::Crashed`].
    Panic,
    /// The run wedged (self-reported or watchdog-detected) and was mapped
    /// to [`RunStatus::OutOfFuel`] — the deterministic timeout outcome.
    Hang,
    /// Transient faults persisted through the whole retry budget; the run
    /// was mapped to [`RunStatus::Crashed`].
    TransientExhausted,
    /// The run completed but its output exceeded the cap and was
    /// truncated. A *soft* fault: the (truncated) result still votes.
    OutputTruncated,
}

impl FaultObserved {
    /// Stable label used in telemetry (`FaultInjected.kind`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultObserved::Panic => "panic",
            FaultObserved::Hang => "hang",
            FaultObserved::TransientExhausted => "transient-exhausted",
            FaultObserved::OutputTruncated => "output-truncated",
        }
    }

    /// Hard faults feed the quarantine circuit breaker; soft faults don't.
    pub fn is_hard(self) -> bool {
        !matches!(self, FaultObserved::OutputTruncated)
    }
}

/// The outcome of one isolated run: always a usable [`RunResult`], plus
/// fault provenance the resilience layer needs for health tracking.
#[derive(Debug)]
pub struct IsolatedRun {
    /// The (possibly synthesized) run result. Panics become
    /// [`RunStatus::Crashed`], hangs become [`RunStatus::OutOfFuel`].
    pub result: RunResult,
    /// The fault observed, if any.
    pub fault: Option<FaultObserved>,
    /// Transient retries consumed before the final outcome.
    pub retries: u32,
}

/// Marker appended to truncated output (kept inside the cap).
pub const TRUNCATION_MARKER: &str = "\n…[output truncated by harness]";

/// Installs (once, process-wide) a panic hook that keeps *injected* chaos
/// panics off stderr while delegating every other panic to the previous
/// hook. Containment itself never depends on this — it only silences
/// expected noise during chaos campaigns.
pub fn silence_chaos_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none()
                && info.payload().downcast_ref::<ChaosAbort>().is_none()
            {
                previous(info);
            }
        }));
    });
}

/// Compiles `program` once and runs it under full containment.
#[deprecated(note = "compile once with `compile` and execute with `run_isolated_compiled`")]
pub fn run_isolated(
    testbed: &Testbed,
    program: &Program,
    options: &RunOptions,
    isolation: &IsolationPolicy,
    retry: &RetryPolicy,
) -> IsolatedRun {
    run_isolated_compiled(testbed, &compile(program), options, isolation, retry)
}

/// Runs a compiled `chunk` on `testbed` under full containment. Never panics
/// and never blocks longer than the watchdog allows (plus backoff sleeps).
pub fn run_isolated_compiled(
    testbed: &Testbed,
    chunk: &Arc<CompiledChunk>,
    options: &RunOptions,
    isolation: &IsolationPolicy,
    retry: &RetryPolicy,
) -> IsolatedRun {
    let mut last_transient = String::new();
    for attempt in 0..=retry.max_retries {
        if attempt > 0 && retry.backoff_base_millis > 0 {
            thread::sleep(Duration::from_millis(
                retry.backoff_base_millis << (attempt - 1).min(16),
            ));
        }
        let outcome = execute_once(testbed, chunk, options, isolation, attempt);
        match outcome {
            Execution::Done(result) => {
                let mut run = IsolatedRun { result, fault: None, retries: attempt };
                cap_output(&mut run, isolation.max_output_bytes);
                return run;
            }
            Execution::Wedged => {
                return IsolatedRun {
                    result: timeout_result(options),
                    fault: Some(FaultObserved::Hang),
                    retries: attempt,
                };
            }
            Execution::Panicked(message) => {
                return IsolatedRun {
                    result: crash_result(format!("contained panic: {message}")),
                    fault: Some(FaultObserved::Panic),
                    retries: attempt,
                };
            }
            Execution::Transient(message) => {
                last_transient = message;
            }
        }
    }
    IsolatedRun {
        result: crash_result(format!("transient fault persisted: {last_transient}")),
        fault: Some(FaultObserved::TransientExhausted),
        retries: retry.max_retries,
    }
}

enum Execution {
    Done(RunResult),
    Wedged,
    Panicked(String),
    Transient(String),
}

fn execute_once(
    testbed: &Testbed,
    chunk: &Arc<CompiledChunk>,
    options: &RunOptions,
    isolation: &IsolationPolicy,
    attempt: u32,
) -> Execution {
    match isolation.watchdog_millis {
        Some(limit) => execute_with_watchdog(testbed, chunk, options, attempt, limit),
        None if isolation.contain_panics => {
            match panic::catch_unwind(AssertUnwindSafe(|| {
                testbed.run_attempt_compiled(chunk, options, attempt)
            })) {
                Ok(raw) => raw_to_execution(raw),
                Err(payload) => Execution::Panicked(panic_message(payload.as_ref())),
            }
        }
        None => raw_to_execution(testbed.run_attempt_compiled(chunk, options, attempt)),
    }
}

/// Runs one attempt on a helper thread and abandons it if the wall-clock
/// limit passes. The helper is detached (not scoped): joining a wedged
/// thread would just move the hang into the harness. The chunk crosses the
/// thread boundary as an `Arc` clone — no program copy.
fn execute_with_watchdog(
    testbed: &Testbed,
    chunk: &Arc<CompiledChunk>,
    options: &RunOptions,
    attempt: u32,
    limit_millis: u64,
) -> Execution {
    let (tx, rx) = mpsc::channel();
    let testbed = testbed.clone();
    let chunk = Arc::clone(chunk);
    let options = options.clone();
    thread::spawn(move || {
        let outcome = match panic::catch_unwind(AssertUnwindSafe(|| {
            testbed.run_attempt_compiled(&chunk, &options, attempt)
        })) {
            Ok(raw) => raw_to_execution(raw),
            Err(payload) => Execution::Panicked(panic_message(payload.as_ref())),
        };
        // The receiver may have timed out and gone; a failed send is fine.
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(Duration::from_millis(limit_millis)) {
        Ok(outcome) => outcome,
        Err(_) => Execution::Wedged,
    }
}

fn raw_to_execution(raw: Result<RunResult, RawFault>) -> Execution {
    match raw {
        Ok(result) => Execution::Done(result),
        Err(RawFault::Transient { message }) => Execution::Transient(message),
        Err(RawFault::Wedged { .. }) => Execution::Wedged,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(chaos) = payload.downcast_ref::<ChaosPanic>() {
        format!("injected chaos panic on {}", chaos.testbed)
    } else if let Some(abort) = payload.downcast_ref::<ChaosAbort>() {
        fatal_signal_message(abort.signal, &abort.testbed)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn cap_output(run: &mut IsolatedRun, max_bytes: usize) {
    if run.result.output.len() <= max_bytes {
        return;
    }
    let keep = max_bytes.saturating_sub(TRUNCATION_MARKER.len());
    let mut cut = keep;
    while cut > 0 && !run.result.output.is_char_boundary(cut) {
        cut -= 1;
    }
    run.result.output.truncate(cut);
    run.result.output.push_str(TRUNCATION_MARKER);
    run.fault = Some(FaultObserved::OutputTruncated);
}

/// The deterministic outcome substituted for a hung run: the same shape a
/// fuel exhaustion produces, so voting treats both as `Timeout`.
fn timeout_result(options: &RunOptions) -> RunResult {
    RunResult {
        status: RunStatus::OutOfFuel,
        output: String::new(),
        fuel_used: options.fuel,
        coverage: None,
    }
}

fn crash_result(message: String) -> RunResult {
    RunResult {
        status: RunStatus::Crashed(message),
        output: String::new(),
        fuel_used: 0,
        coverage: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use crate::{Engine, EngineName};
    use comfort_syntax::parse;

    fn chaotic(plan: FaultPlan) -> Testbed {
        Testbed::new(Engine::latest(EngineName::V8), false).with_chaos(plan)
    }

    fn chunk(src: &str) -> Arc<CompiledChunk> {
        compile(&parse(src).expect("test source parses"))
    }

    #[test]
    fn injected_panic_is_contained_as_crash() {
        let bed = chaotic(FaultPlan::new(1).panic_rate(1.0));
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(1);"),
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        assert!(matches!(run.result.status, RunStatus::Crashed(_)), "{:?}", run.result.status);
        assert_eq!(run.fault, Some(FaultObserved::Panic));
    }

    #[test]
    fn injected_hang_maps_to_timeout() {
        let bed = chaotic(FaultPlan::new(1).hang_rate(1.0).hang_millis(1));
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(1);"),
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        assert_eq!(run.result.status, RunStatus::OutOfFuel);
        assert_eq!(run.fault, Some(FaultObserved::Hang));
    }

    #[test]
    fn watchdog_abandons_wedged_run() {
        let bed = chaotic(FaultPlan::new(1).hang_rate(1.0).hang_millis(5_000));
        let isolation = IsolationPolicy { watchdog_millis: Some(25), ..IsolationPolicy::default() };
        let start = std::time::Instant::now();
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(1);"),
            &RunOptions::default(),
            &isolation,
            &RetryPolicy::default(),
        );
        assert_eq!(run.fault, Some(FaultObserved::Hang));
        assert!(start.elapsed() < Duration::from_millis(2_500), "watchdog did not fire");
    }

    #[test]
    fn transient_faults_retry_to_success() {
        let bed = chaotic(FaultPlan::new(1).transient_rate(1.0).transient_persistence(1));
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(1);"),
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        assert!(run.result.status.is_completed(), "{:?}", run.result.status);
        assert_eq!(run.retries, 1);
        assert!(run.fault.is_none());
    }

    #[test]
    fn transient_exhaustion_becomes_hard_fault() {
        let bed = chaotic(FaultPlan::new(1).transient_rate(1.0).transient_persistence(10));
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(1);"),
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy { max_retries: 2, backoff_base_millis: 0 },
        );
        assert!(matches!(run.result.status, RunStatus::Crashed(_)));
        assert_eq!(run.fault, Some(FaultObserved::TransientExhausted));
        assert!(run.fault.expect("fault").is_hard());
    }

    #[test]
    fn oversized_output_is_truncated_and_flagged() {
        let bed = Testbed::new(Engine::latest(EngineName::V8), false);
        let src = "for (var i = 0; i < 200; i++) { print('xxxxxxxxxx'); }";
        let isolation = IsolationPolicy { max_output_bytes: 100, ..IsolationPolicy::default() };
        let run = run_isolated_compiled(
            &bed,
            &chunk(src),
            &RunOptions::default(),
            &isolation,
            &RetryPolicy::default(),
        );
        assert!(run.result.output.len() <= 100);
        assert!(run.result.output.ends_with(TRUNCATION_MARKER));
        assert_eq!(run.fault, Some(FaultObserved::OutputTruncated));
        assert!(!run.fault.expect("fault").is_hard());
    }

    #[test]
    fn clean_runs_pass_through_unchanged() {
        let bed = Testbed::new(Engine::latest(EngineName::V8), false);
        let run = run_isolated_compiled(
            &bed,
            &chunk("print(41 + 1);"),
            &RunOptions::default(),
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        );
        assert_eq!(run.result.output, "42\n");
        assert!(run.fault.is_none());
        assert_eq!(run.retries, 0);
    }
}
