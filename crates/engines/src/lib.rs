#![warn(missing_docs)]

//! Simulated JavaScript engines for the COMFORT reproduction.
//!
//! The paper tests ten production engines across 51 version configurations
//! and 102 testbeds (normal + strict per configuration, §4.1–4.2). This crate
//! simulates that matrix: every engine version is the reference interpreter
//! (`comfort-interp`) configured with the *seeded conformance bugs* of
//! [`catalog`], so engines deviate from ECMA-262 in hidden, input-dependent
//! ways — exactly the kind of defect differential conformance testing must
//! surface.
//!
//! # Examples
//!
//! Running the paper's Figure 2 test case on conforming engines and on
//! Rhino (which carries the `substr(start, undefined)` bug):
//!
//! ```
//! use comfort_engines::{Engine, EngineName};
//! use comfort_interp::{compile, RunOptions};
//!
//! let program = comfort_syntax::parse(
//!     "var s = 'Name: Albert'; print(s.substr(6, undefined));",
//! ).expect("valid JS");
//! let chunk = compile(&program); // compile once, run everywhere
//!
//! let opts = RunOptions::default();
//! let v8 = Engine::latest(EngineName::V8);
//! let rhino = Engine::latest(EngineName::Rhino);
//! assert_eq!(v8.run_compiled(&chunk, &opts).output, "Albert\n");
//! assert_eq!(rhino.run_compiled(&chunk, &opts).output, "\n"); // the seeded Figure-2 bug
//! ```

pub mod catalog;
pub mod chaos;
pub mod harness;
mod profile;
pub mod registry;

pub use catalog::{quota, ApiType, BugId, Component, Discovery, Effect, SeededBug, Trigger};
pub use chaos::{
    fatal_signal_message, signal_name, ChaosAbort, ChaosPanic, FaultKind, FaultPlan, RawFault,
};
#[allow(deprecated)]
pub use harness::run_isolated;
pub use harness::{
    run_isolated_compiled, silence_chaos_panics, FaultObserved, IsolatedRun, IsolationPolicy,
    RetryPolicy,
};
pub use profile::{BugBehavior, EngineProfile};
pub use registry::{all_versions, versions_of, EngineName, EngineVersion, EsEdition};

use comfort_interp::run_chunk;
pub use comfort_interp::{
    compile, Backend, CompiledChunk, RunOptions, RunOptionsBuilder, RunResult,
};
use comfort_syntax::Program;
use std::sync::{Arc, OnceLock};

/// The shared, lazily-built bug catalog (deterministic; see [`catalog`]).
pub fn shared_catalog() -> &'static [SeededBug] {
    static CATALOG: OnceLock<Vec<SeededBug>> = OnceLock::new();
    CATALOG.get_or_init(catalog::build_catalog)
}

/// One runnable engine version.
#[derive(Debug, Clone)]
pub struct Engine {
    profile: EngineProfile,
}

impl Engine {
    /// Builds the engine for a specific [`EngineVersion`].
    pub fn new(version: EngineVersion) -> Self {
        Engine { profile: EngineProfile::new(version, shared_catalog()) }
    }

    /// The latest version of `name` (the trunk build in Table 1).
    pub fn latest(name: EngineName) -> Self {
        let version = *versions_of(name).last().expect("every engine has versions");
        Engine::new(version)
    }

    /// The oldest version of `name`.
    pub fn oldest(name: EngineName) -> Self {
        let version = versions_of(name)[0];
        Engine::new(version)
    }

    /// Engine name.
    pub fn name(&self) -> EngineName {
        self.profile.engine()
    }

    /// Version metadata.
    pub fn version(&self) -> &EngineVersion {
        self.profile.version()
    }

    /// Seeded bugs active in this version (test/debug introspection).
    pub fn active_bugs(&self) -> &[SeededBug] {
        self.profile.bugs()
    }

    /// Ids of active bugs that `footprint` cannot rule out for a chunk
    /// (see [`EngineProfile::relevant_bugs`]). Engines whose relevant-bug
    /// sets are equal behave identically on that chunk.
    pub fn relevant_bugs(&self, footprint: &comfort_interp::ApiFootprint) -> Vec<BugId> {
        self.profile.relevant_bugs(footprint)
    }

    /// Semantic descriptions of the bugs `footprint` cannot rule out (see
    /// [`EngineProfile::relevant_behavior`]). Comparable *across* engines:
    /// equal sequences mean identical behaviour on the chunk.
    pub fn relevant_behavior(
        &self,
        footprint: &comfort_interp::ApiFootprint,
        strict_sites: bool,
    ) -> Vec<profile::BugBehavior<'_>> {
        self.profile.relevant_behavior(footprint, strict_sites)
    }

    /// Runs a compiled chunk with the given options. This is the execution
    /// entry point: fuel, strict mode, coverage, and the backend knob all
    /// travel in [`RunOptions`] (`&RunOptions::default()` for a plain
    /// normal-mode run). Compile once with [`compile`], then call this for
    /// every engine — the chunk is shared read-only.
    pub fn run_compiled(&self, chunk: &Arc<CompiledChunk>, options: &RunOptions) -> RunResult {
        run_chunk(chunk, &self.profile, options)
    }

    /// Compiles and runs `program` in one step.
    #[deprecated(note = "compile once with `compile` and execute with `run_compiled`")]
    pub fn run(&self, program: &Program, options: &RunOptions) -> RunResult {
        self.run_compiled(&compile(program), options)
    }
}

/// A testbed = engine version × mode (§4.2). 51 versions × 2 modes = 102.
///
/// A testbed may additionally carry a chaos [`FaultPlan`] (see
/// [`Testbed::with_chaos`]): a "ChaosTestbed" is an ordinary testbed whose
/// runs deterministically panic, hang, emit garbage, or fail transiently —
/// the adversarial input the hardened execution layer is tested against.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The engine version.
    pub engine: Engine,
    /// `true` for the strict-mode testbed.
    pub strict: bool,
    /// Seeded fault injection, when this is a chaos testbed.
    pub chaos: Option<FaultPlan>,
}

impl Testbed {
    /// A well-behaved testbed.
    pub fn new(engine: Engine, strict: bool) -> Self {
        Testbed { engine, strict, chaos: None }
    }

    /// Attaches a fault-injection plan, turning this into a chaos testbed.
    /// Also installs the process-wide hook keeping injected panics quiet.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        silence_chaos_panics();
        self.chaos = Some(plan);
        self
    }

    /// `true` when a fault plan is attached.
    pub fn is_chaotic(&self) -> bool {
        self.chaos.is_some()
    }

    /// `true` when the attached chaos plan injects a fault for this chunk
    /// on the *first* attempt. Such a testbed must not share an execution
    /// with classmates: even a Garbage fault silently alters output. A
    /// `None` decision at attempt 0 means the run is clean and no retries
    /// occur (retries only follow an injected fault), so sharing is safe.
    pub fn has_pending_fault(&self, chunk: &Arc<CompiledChunk>) -> bool {
        self.chaos.as_ref().is_some_and(|plan| plan.decide(&chunk.program, 0).is_some())
    }

    /// Display label, e.g. `"Rhino v1.7.12 [strict]"`.
    pub fn label(&self) -> String {
        let base = if self.strict {
            format!("{} [strict]", self.engine.version().label())
        } else {
            self.engine.version().label()
        };
        if self.is_chaotic() {
            format!("{base} [chaos]")
        } else {
            base
        }
    }

    /// Runs a compiled chunk on this testbed. The testbed's mode is merged
    /// into the options: a strict testbed always runs strict, regardless of
    /// `options.strict`.
    ///
    /// This is the *contained* entry point: it delegates to
    /// [`run_isolated_compiled`] with default policies, so panics surface as
    /// [`comfort_interp::RunStatus::Crashed`] and wedges as
    /// [`comfort_interp::RunStatus::OutOfFuel`] instead of escaping.
    pub fn run_compiled(&self, chunk: &Arc<CompiledChunk>, options: &RunOptions) -> RunResult {
        run_isolated_compiled(
            self,
            chunk,
            options,
            &IsolationPolicy::default(),
            &RetryPolicy::default(),
        )
        .result
    }

    /// Compiles and runs `program` in one step.
    #[deprecated(note = "compile once with `compile` and execute with `run_compiled`")]
    pub fn run(&self, program: &Program, options: &RunOptions) -> RunResult {
        self.run_compiled(&compile(program), options)
    }

    /// One raw, *uncontained* execution attempt: applies the chaos plan (if
    /// any) and runs the engine. Injected panics really panic and injected
    /// hangs really sleep — callers are expected to go through
    /// [`run_isolated_compiled`] (or [`Testbed::run_compiled`]) rather than
    /// call this directly.
    ///
    /// Fault decisions stay content-addressed on the *program*, which the
    /// chunk embeds — so a chaos testbed misbehaves identically whether a
    /// case arrives as an AST or as a compiled chunk.
    pub fn run_attempt_compiled(
        &self,
        chunk: &Arc<CompiledChunk>,
        options: &RunOptions,
        attempt: u32,
    ) -> Result<RunResult, RawFault> {
        if let Some(plan) = &self.chaos {
            match plan.decide(&chunk.program, attempt) {
                Some(FaultKind::Abort) => {
                    if chaos_signals_are_real() {
                        // A jailed worker process dies for real so the
                        // supervisor can exercise signal-death handling.
                        raise_fatal_signal(plan.abort_signal);
                    }
                    std::panic::panic_any(chaos::ChaosAbort {
                        testbed: self.label(),
                        signal: plan.abort_signal,
                    })
                }
                Some(FaultKind::Panic) => {
                    std::panic::panic_any(ChaosPanic { testbed: self.label() })
                }
                Some(FaultKind::Hang) => {
                    std::thread::sleep(std::time::Duration::from_millis(plan.hang_millis));
                    return Err(RawFault::Wedged { millis: plan.hang_millis });
                }
                Some(FaultKind::Garbage) => {
                    return Ok(RunResult {
                        status: comfort_interp::RunStatus::Completed,
                        output: plan.garbage_output(&chunk.program),
                        fuel_used: 0,
                        coverage: None,
                    });
                }
                Some(FaultKind::Transient) => {
                    return Err(RawFault::Transient {
                        message: format!("simulated transient fault on {}", self.label()),
                    });
                }
                None => {}
            }
        }
        Ok(self.engine.run_compiled(
            chunk,
            &options.to_builder().strict(self.strict || options.strict).build(),
        ))
    }

    /// Compiling variant of [`Testbed::run_attempt_compiled`].
    #[deprecated(note = "compile once with `compile` and execute with `run_attempt_compiled`")]
    pub fn run_attempt(
        &self,
        program: &Program,
        options: &RunOptions,
        attempt: u32,
    ) -> Result<RunResult, RawFault> {
        self.run_attempt_compiled(&compile(program), options, attempt)
    }
}

/// Process-wide "chaos signals are real" flag. Jailed worker processes set
/// this (`comfortd --worker-once --jail`) so injected abort faults raise
/// the actual signal and kill the process — the whole point of process
/// isolation. Everywhere else abort faults are contained panics with a
/// deterministic `Crashed` outcome.
static CHAOS_SIGNALS_REAL: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Makes injected abort faults raise their real signal in this process.
pub fn arm_real_chaos_signals() {
    CHAOS_SIGNALS_REAL.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// `true` when [`arm_real_chaos_signals`] was called in this process.
pub fn chaos_signals_are_real() -> bool {
    CHAOS_SIGNALS_REAL.load(std::sync::atomic::Ordering::SeqCst)
}

/// Raises `signal` on the current process. `std` links libc, so the raw
/// extern resolves without adding a dependency (same pattern as the
/// `signal()` handler registration in `comfortd`).
fn raise_fatal_signal(signal: i32) {
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    unsafe {
        raise(signal);
    }
    // SIGKILL/SIGABRT never return; for ignorable signals fall through to
    // the contained panic path so the run still fails deterministically.
}

/// All 102 testbeds (Table 1 × {normal, strict}).
pub fn all_testbeds() -> Vec<Testbed> {
    let mut out = Vec::with_capacity(102);
    for version in all_versions() {
        for strict in [false, true] {
            out.push(Testbed::new(Engine::new(version), strict));
        }
    }
    out
}

/// The *latest-version* testbeds only (one normal testbed per engine), the
/// default comparison set for differential runs.
pub fn latest_testbeds() -> Vec<Testbed> {
    EngineName::ALL.into_iter().map(|name| Testbed::new(Engine::latest(name), false)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use comfort_interp::{ErrorKind, RunStatus};
    use comfort_syntax::parse;

    fn run_on(engine: &Engine, src: &str) -> RunResult {
        let chunk = compile(&parse(src).expect("test source parses"));
        engine.run_compiled(&chunk, &RunOptions::default())
    }

    #[test]
    fn testbed_matrix_size() {
        assert_eq!(all_testbeds().len(), 102);
        assert_eq!(latest_testbeds().len(), 10);
    }

    #[test]
    fn figure2_rhino_substr_bug() {
        let src = r#"
function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var name = foo("Name: Albert", 6, undefined);
print(name);
"#;
        assert_eq!(run_on(&Engine::latest(EngineName::V8), src).output, "Albert\n");
        assert_eq!(run_on(&Engine::latest(EngineName::Rhino), src).output, "\n");
    }

    #[test]
    fn listing1_v8_defineproperty_bug() {
        let src = r#"
var arrobj = [0, 1];
Object.defineProperty(arrobj, "length", { value: 1, configurable: true });
print("no error");
"#;
        // V8 and Graaljs silently accept; conforming engines throw TypeError.
        assert_eq!(run_on(&Engine::latest(EngineName::V8), src).output, "no error\n");
        assert_eq!(run_on(&Engine::latest(EngineName::GraalJs), src).output, "no error\n");
        let jsc = run_on(&Engine::latest(EngineName::Jsc), src);
        assert!(
            matches!(jsc.status, RunStatus::Threw { kind: Some(ErrorKind::Type), .. }),
            "JSC should throw, got {:?}",
            jsc.status
        );
    }

    #[test]
    fn listing2_hermes_perf_bug() {
        let src = r#"
var foo = function(size) {
  var array = new Array(size);
  while (size--) { array[size] = 0; }
}
var parameter = 300000;
foo(parameter);
print("done");
"#;
        // Hermes v0.1.1 times out; v0.3.0+ (fixed) completes.
        let old = Engine::oldest(EngineName::Hermes);
        assert_eq!(run_on(&old, src).status, RunStatus::OutOfFuel);
        let new = Engine::latest(EngineName::Hermes);
        assert_eq!(run_on(&new, src).output, "done\n");
        let v8 = Engine::latest(EngineName::V8);
        assert_eq!(run_on(&v8, src).output, "done\n");
    }

    #[test]
    fn listing3_spidermonkey_uint32array_bug() {
        let src = "var a = new Uint32Array(3.14); print(a.length);";
        let old = Engine::oldest(EngineName::SpiderMonkey); // v1.7, bug present
        assert!(matches!(
            run_on(&old, src).status,
            RunStatus::Threw { kind: Some(ErrorKind::Type), .. }
        ));
        let new = Engine::latest(EngineName::SpiderMonkey); // ≥ v52.9, fixed
        assert_eq!(run_on(&new, src).output, "3\n");
    }

    #[test]
    fn listing4_rhino_tofixed_bug() {
        let src = "var p = (-634619).toFixed(-2); print(p);";
        assert_eq!(run_on(&Engine::latest(EngineName::Rhino), src).output, "-634619\n");
        assert!(matches!(
            run_on(&Engine::latest(EngineName::V8), src).status,
            RunStatus::Threw { kind: Some(ErrorKind::Range), .. }
        ));
    }

    #[test]
    fn listing5_jsc_typedarray_set_bug() {
        let src = "var e = '123'; var A = new Uint8Array(5); A.set(e); print(A);";
        // JSC trunk builds prior to 261782 threw; 261782 is fixed.
        let old = Engine::new(versions_of(EngineName::Jsc)[2]);
        assert!(matches!(
            run_on(&old, src).status,
            RunStatus::Threw { kind: Some(ErrorKind::Type), .. }
        ));
        let fixed = Engine::latest(EngineName::Jsc);
        assert_eq!(run_on(&fixed, src).output, "1,2,3,0,0\n");
        // Graaljs carries the same bug (unfixed).
        assert!(matches!(
            run_on(&Engine::latest(EngineName::GraalJs), src).status,
            RunStatus::Threw { .. }
        ));
    }

    #[test]
    fn listing6_quickjs_array_key_bug() {
        let src = r#"
var property = true;
var obj = [1,2,5];
obj[property] = 10;
print(obj);
print(obj[property]);
"#;
        let quickjs = run_on(&Engine::latest(EngineName::QuickJs), src);
        assert_eq!(quickjs.output, "1,2,5,10\nundefined\n");
        let v8 = run_on(&Engine::latest(EngineName::V8), src);
        assert_eq!(v8.output, "1,2,5\n10\n");
    }

    #[test]
    fn listing7_chakracore_eval_bug() {
        let src = "var a = eval(\"for(var i = 0; i < 1; ++i)\"); print('ran');";
        assert_eq!(run_on(&Engine::latest(EngineName::ChakraCore), src).output, "ran\n");
        assert!(matches!(
            run_on(&Engine::latest(EngineName::V8), src).status,
            RunStatus::Threw { kind: Some(ErrorKind::Syntax), .. }
        ));
    }

    #[test]
    fn listing8_jerryscript_split_bug() {
        let src = "var a = \"anA\".split(/^A/); print(a);";
        assert_eq!(run_on(&Engine::latest(EngineName::JerryScript), src).output, "an\n");
        assert_eq!(run_on(&Engine::latest(EngineName::V8), src).output, "anA\n");
    }

    #[test]
    fn listing9_quickjs_normalize_crash() {
        let src = "var s = ''; s.normalize(true);";
        let r = run_on(&Engine::latest(EngineName::QuickJs), src);
        assert!(matches!(r.status, RunStatus::Crashed(_)), "got {:?}", r.status);
        // Conforming engines throw a RangeError for the invalid form.
        assert!(matches!(
            run_on(&Engine::latest(EngineName::V8), src).status,
            RunStatus::Threw { kind: Some(ErrorKind::Range), .. }
        ));
    }

    #[test]
    fn strict_testbed_differs_from_normal() {
        let bed_normal = Testbed::new(Engine::latest(EngineName::V8), false);
        let bed_strict = Testbed::new(Engine::latest(EngineName::V8), true);
        let chunk = compile(&parse("x = 1; print(x);").expect("parses"));
        let opts = RunOptions::with_fuel(100_000);
        assert!(bed_normal.run_compiled(&chunk, &opts).status.is_completed());
        assert!(!bed_strict.run_compiled(&chunk, &opts).status.is_completed());
        assert!(bed_strict.label().contains("[strict]"));
    }

    #[test]
    fn engines_agree_on_conforming_programs() {
        // A program exercising no seeded bug must be identical on all ten.
        let chunk = compile(
            &parse(
                "var a = [5, 3, 9]; var t = 0; for (var i = 0; i < a.length; i++) { t += a[i]; } print(t);",
            )
            .expect("parses"),
        );
        let outputs: Vec<String> = latest_testbeds()
            .iter()
            .map(|t| t.run_compiled(&chunk, &RunOptions::with_fuel(1_000_000)).output)
            .collect();
        assert!(outputs.iter().all(|o| o == "17\n"), "{outputs:?}");
    }

    #[test]
    fn active_bug_counts_follow_catalog() {
        let rhino = Engine::latest(EngineName::Rhino);
        // Rhino's latest version carries the lion's share of its 44 bugs.
        assert!(rhino.active_bugs().len() >= 40, "{}", rhino.active_bugs().len());
        let sm = Engine::latest(EngineName::SpiderMonkey);
        assert!(sm.active_bugs().len() <= 3);
    }
}
