//! A minimal JSON parser **and canonical serializer** for telemetry and
//! report output.
//!
//! The workspace builds offline (no serde); tests and CI still need to
//! assert that `JsonlSink` output *parses* and that its fields reconcile
//! with the campaign report. This is a small, strict, recursive-descent
//! parser over the JSON grammar — ample for one-line event objects — plus
//! [`JsonValue::to_json`], the one shared emitter every machine-readable
//! artifact of the workspace (telemetry events, checkpoint journals,
//! `BENCH_*.json` perf reports) renders through instead of growing bespoke
//! serializers.
//!
//! The rendering is **canonical**: object keys in sorted (`BTreeMap`)
//! order, integers exact, floats in Rust's shortest round-trip form. For
//! any value produced by [`parse`], `parse(v.to_json())` re-renders
//! byte-identically — the invariant the `BENCH_*.json` golden tests pin.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any non-integral (or exponent-form) JSON number.
    Number(f64),
    /// An integral JSON number, kept exact. `f64` silently rounds integers
    /// past 2^53 — fatal for journaled 64-bit shard seeds — so the parser
    /// routes plain integer tokens here and only falls back to [`Number`]
    /// for fractions and exponent forms.
    ///
    /// [`Number`]: JsonValue::Number
    Int(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (keys sorted by `BTreeMap`).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => i64::try_from(*i).ok(),
            JsonValue::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an exact `i128`, if it is an integral number.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Number(n) if n.fract() == 0.0 => Some(*n as i128),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as canonical JSON: object keys in sorted order,
    /// integers exact, floats in shortest round-trip form (non-finite
    /// floats, which JSON cannot represent, render as `null`). Parsing the
    /// output and re-rendering it is byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Number(n) if !n.is_finite() => out.push_str("null"),
            JsonValue::Number(n) => {
                // `{}` on f64 is the shortest string that parses back to the
                // same bits, so emit → parse → re-emit is stable. Integral
                // floats would print without a fraction and re-parse as
                // `Int`; keep them in the float lane with an explicit `.0`.
                if n.fract() == 0.0 && n.abs() < 1e19 {
                    let _ = write!(out, "{n:.1}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => out.push_str(&escape_string(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape_string(key));
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Builds an object from `(key, value)` pairs (later duplicates win).
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Quotes and escapes `s` as a JSON string literal (the escaping used by
/// every serializer in the workspace — see `event::json_string`).
pub fn escape_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogate pairs are not needed for telemetry
                        // output; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("control char in string".into()),
                Some(b) => {
                    // Reassemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += len;
                    if self.pos > self.bytes.len() {
                        return Err("truncated utf-8".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain integer tokens stay exact (i128 covers the full u64 range);
        // fractions and exponent forms fall back to f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_event_shaped_objects() {
        let v = parse(
            r#"{"shard":0,"seq":12,"type":"deviation","case_id":3,"engine":"Rhino","kind":"WrongOutput"}"#,
        )
        .expect("parses");
        assert_eq!(v.get("seq").and_then(JsonValue::as_u64), Some(12));
        assert_eq!(v.get("engine").and_then(JsonValue::as_str), Some("Rhino"));
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"s":"x\"\nA"}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\"\nA"));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_bool), Some(true));
        let JsonValue::Array(items) = v.get("a").unwrap() else { panic!("array") };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_i64(), Some(-3));
    }

    #[test]
    fn integers_past_2_pow_53_stay_exact() {
        let seed = u64::MAX - 12345;
        let v = parse(&format!("{{\"seed\":{seed}}}")).unwrap();
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(seed));
        // Fractions and exponent forms still parse as floats.
        let v = parse("[2.5,1e3]").unwrap();
        let JsonValue::Array(items) = &v else { panic!("array") };
        assert_eq!(items[0].as_f64(), Some(2.5));
        assert_eq!(items[1].as_f64(), Some(1000.0));
        assert_eq!(items[0].as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn canonical_rendering_is_parse_stable() {
        // parse → to_json → parse → to_json must be byte-identical, across
        // exact big integers, fractional and integral floats, escapes, and
        // nesting — the invariant the BENCH_*.json golden tests rely on.
        let v = JsonValue::object([
            ("seed", JsonValue::Int((u64::MAX - 7) as i128)),
            ("ratio", JsonValue::from(2.5)),
            ("whole", JsonValue::from(1.0)),
            ("tiny", JsonValue::from(1.25e-7)),
            ("label", JsonValue::from("a\"b\nc\td\u{1}")),
            ("flags", JsonValue::from(vec![true, false])),
            (
                "nested",
                JsonValue::object([
                    ("xs", JsonValue::from(vec![1u64, 2, 3])),
                    ("none", JsonValue::Null),
                ]),
            ),
        ]);
        let first = v.to_json();
        let reparsed = parse(&first).expect("canonical output parses");
        assert_eq!(reparsed.to_json(), first);
        let again = parse(&reparsed.to_json()).unwrap();
        assert_eq!(again, reparsed);
    }

    #[test]
    fn integral_floats_stay_in_the_float_lane() {
        // 1.0 must render as "1.0" (not "1") so re-parsing keeps it a
        // Number; otherwise emit → parse → re-emit would flip lanes.
        assert_eq!(JsonValue::Number(1.0).to_json(), "1.0");
        assert_eq!(JsonValue::Number(-3.0).to_json(), "-3.0");
        assert_eq!(JsonValue::Number(2.5).to_json(), "2.5");
        assert_eq!(JsonValue::Int(1).to_json(), "1");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
        let v = parse("1.0").unwrap();
        assert!(matches!(v, JsonValue::Number(_)));
        assert_eq!(v.to_json(), "1.0");
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = parse(r#"{"zeta":1,"alpha":2,"mid":3}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"alpha":2,"mid":3,"zeta":1}"#);
    }

    #[test]
    fn escape_string_matches_parser() {
        let raw = "plain \"quoted\" back\\slash\nnew\ttab\u{2} unicode é";
        let escaped = escape_string(raw);
        let v = parse(&escaped).expect("escaped string parses");
        assert_eq!(v.as_str(), Some(raw));
    }

    #[test]
    fn roundtrips_rendered_events() {
        use crate::event::{Event, EventKind, LogicalClock};
        let e = Event {
            clock: LogicalClock { shard: 1, seq: 4 },
            kind: EventKind::CaseGenerated {
                case_id: 9,
                base: 2,
                origin: "ecma-mutation".into(),
                mutant: true,
            },
        };
        let v = parse(&e.to_json()).expect("rendered events parse");
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("case_generated"));
        assert_eq!(v.get("mutant").and_then(JsonValue::as_bool), Some(true));
    }
}
