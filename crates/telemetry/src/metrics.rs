//! Per-stage counters and histograms, aggregated per campaign.
//!
//! [`CampaignMetrics`] embeds in the campaign report and merges across
//! shards **conservation-exactly**: every additive counter of a merged
//! metrics value equals the sum of the shard values (the cross-shard bug
//! dedup pass moves bugs from `bugs_reported` to `bugs_deduped`, preserving
//! their sum). Wall-clock fields (`wall_nanos`) are measurement-only and
//! excluded from determinism comparisons via
//! [`CampaignMetrics::without_wall_clock`].

use crate::event::Stage;

/// A log₂-bucketed histogram of per-invocation logical cost.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` (bucket 0 also takes
/// zero); the last bucket is open-ended. Buckets are additive under merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostHistogram {
    /// Observation counts per power-of-two bucket.
    pub buckets: [u64; Self::BUCKETS],
}

impl CostHistogram {
    /// Number of buckets (costs ≥ 2³¹ land in the last).
    pub const BUCKETS: usize = 32;

    /// Records one observation.
    pub fn record(&mut self, cost: u64) {
        let bucket = (64 - cost.leading_zeros() as usize).min(Self::BUCKETS).saturating_sub(1);
        self.buckets[bucket] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds `other`'s buckets into `self`.
    pub fn merge_from(&mut self, other: &CostHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Counters for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageMetrics {
    /// Times the stage ran.
    pub invocations: u64,
    /// Items the stage processed (stage-specific unit: programs, testbed
    /// runs, filter observations, …).
    pub items: u64,
    /// Deterministic cost units consumed.
    pub logical_cost: u64,
    /// Wall-clock nanoseconds spent (measurement-only; excluded from
    /// determinism comparisons).
    pub wall_nanos: u64,
    /// Distribution of per-invocation logical cost.
    pub cost_histogram: CostHistogram,
}

impl StageMetrics {
    /// Records one invocation.
    pub fn record(&mut self, items: u64, logical_cost: u64, wall_nanos: u64) {
        self.invocations += 1;
        self.items += items;
        self.logical_cost += logical_cost;
        self.wall_nanos += wall_nanos;
        self.cost_histogram.record(logical_cost);
    }

    /// Adds `other` into `self` (all fields are additive).
    pub fn merge_from(&mut self, other: &StageMetrics) {
        self.invocations += other.invocations;
        self.items += other.items;
        self.logical_cost += other.logical_cost;
        self.wall_nanos += other.wall_nanos;
        self.cost_histogram.merge_from(&other.cost_histogram);
    }
}

/// Aggregated campaign metrics: one [`StageMetrics`] per pipeline stage
/// plus campaign-level counters. Embedded in `CampaignReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignMetrics {
    /// Per-stage counters, indexed by [`Stage::index`].
    pub stages: [StageMetrics; Stage::ALL.len()],
    /// Cases enqueued for execution (base programs + mutants).
    pub cases_generated: u64,
    /// Generated sources rejected by the validity filter.
    pub cases_rejected: u64,
    /// Cases actually executed against the budget.
    pub cases_run: u64,
    /// Raw deviation observations before deduplication.
    pub deviations_observed: u64,
    /// Unique bugs reported (reconciles with the report's bug list).
    pub bugs_reported: u64,
    /// Observations discarded as duplicates (within-shard and, after a
    /// merge, cross-shard).
    pub bugs_deduped: u64,
    /// Harness-level faults observed on testbed runs (contained panics,
    /// hangs, transient-retry exhaustion, output truncation).
    pub faults_observed: u64,
    /// Testbed runs that needed at least one transient-fault retry.
    pub runs_retried: u64,
    /// Testbed runs skipped because the testbed was quarantined.
    pub runs_skipped: u64,
    /// Quarantine transitions (circuit breaker openings).
    pub testbeds_quarantined: u64,
    /// Quarantined testbeds reinstated by a successful half-open probe.
    pub testbeds_reinstated: u64,
    /// Mode-group votes taken (or skipped) below full membership.
    pub quorum_degraded: u64,
    /// Shards merged into this value (1 for an unmerged shard).
    pub shards: u64,
    /// Physical executions avoided by footprint-based equivalence classing
    /// (logical runs minus representatives actually executed).
    /// Execution-strategy observability only: excluded from determinism
    /// comparisons via [`CampaignMetrics::without_wall_clock`] because the
    /// same campaign produces identical reports with dedup on or off.
    pub executions_saved: u64,
    /// Equivalence classes formed on cases where classing saved at least one
    /// execution. Excluded from determinism comparisons like
    /// `executions_saved`.
    pub equivalence_classes: u64,
}

impl CampaignMetrics {
    /// Fresh metrics for a single shard.
    pub fn new() -> Self {
        CampaignMetrics { shards: 1, ..CampaignMetrics::default() }
    }

    /// The metrics of `stage`.
    pub fn stage(&self, stage: Stage) -> &StageMetrics {
        &self.stages[stage.index()]
    }

    /// Mutable access to the metrics of `stage`.
    pub fn stage_mut(&mut self, stage: Stage) -> &mut StageMetrics {
        &mut self.stages[stage.index()]
    }

    /// Adds `other` into `self`. Every counter is additive, so merged
    /// totals are exactly the sums of the inputs.
    pub fn merge_from(&mut self, other: &CampaignMetrics) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge_from(b);
        }
        self.cases_generated += other.cases_generated;
        self.cases_rejected += other.cases_rejected;
        self.cases_run += other.cases_run;
        self.deviations_observed += other.deviations_observed;
        self.bugs_reported += other.bugs_reported;
        self.bugs_deduped += other.bugs_deduped;
        self.faults_observed += other.faults_observed;
        self.runs_retried += other.runs_retried;
        self.runs_skipped += other.runs_skipped;
        self.testbeds_quarantined += other.testbeds_quarantined;
        self.testbeds_reinstated += other.testbeds_reinstated;
        self.quorum_degraded += other.quorum_degraded;
        self.shards += other.shards;
        self.executions_saved += other.executions_saved;
        self.equivalence_classes += other.equivalence_classes;
    }

    /// Reclassifies one reported bug as a cross-shard duplicate (used by
    /// the shard-merge pass). Conserves `bugs_reported + bugs_deduped`.
    pub fn dedup_reported_bug(&mut self) {
        self.bugs_reported = self.bugs_reported.saturating_sub(1);
        self.bugs_deduped += 1;
    }

    /// A copy with every wall-clock field zeroed — the form compared in
    /// determinism tests. Also zeroes the execution-dedup counters: they
    /// describe *how* the campaign was executed (how many physical runs the
    /// classing layer skipped), not *what* it observed, and must not perturb
    /// report checksums when dedup is toggled.
    pub fn without_wall_clock(&self) -> CampaignMetrics {
        let mut m = self.clone();
        for stage in &mut m.stages {
            stage.wall_nanos = 0;
        }
        m.executions_saved = 0;
        m.equivalence_classes = 0;
        m
    }

    /// Renders the per-stage table as JSON (embedded in JSONL summaries).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"stages\":{");
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let s = self.stage(stage);
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"invocations\":{},\"items\":{},\"logical_cost\":{}}}",
                stage.as_str(),
                s.invocations,
                s.items,
                s.logical_cost
            );
        }
        let _ = write!(
            out,
            "}},\"cases_generated\":{},\"cases_rejected\":{},\"cases_run\":{},\
             \"deviations_observed\":{},\"bugs_reported\":{},\"bugs_deduped\":{},\
             \"faults_observed\":{},\"runs_retried\":{},\"runs_skipped\":{},\
             \"testbeds_quarantined\":{},\"testbeds_reinstated\":{},\
             \"quorum_degraded\":{},\"shards\":{}",
            self.cases_generated,
            self.cases_rejected,
            self.cases_run,
            self.deviations_observed,
            self.bugs_reported,
            self.bugs_deduped,
            self.faults_observed,
            self.runs_retried,
            self.runs_skipped,
            self.testbeds_quarantined,
            self.testbeds_reinstated,
            self.quorum_degraded,
            self.shards
        );
        // Dedup counters are omitted when zero so that reports from
        // campaigns without execution classing (and determinism-stripped
        // forms, where they are zeroed) keep their historical byte layout.
        if self.executions_saved > 0 {
            let _ = write!(out, ",\"executions_saved\":{}", self.executions_saved);
        }
        if self.equivalence_classes > 0 {
            let _ = write!(out, ",\"equivalence_classes\":{}", self.equivalence_classes);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = CostHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.count(), 5);
        h.record(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[CostHistogram::BUCKETS - 1], 1);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = CampaignMetrics::new();
        a.stage_mut(Stage::Generation).record(1, 100, 5);
        a.cases_generated = 4;
        a.bugs_reported = 2;
        let mut b = CampaignMetrics::new();
        b.stage_mut(Stage::Generation).record(2, 50, 7);
        b.cases_generated = 3;
        b.bugs_deduped = 1;

        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.stage(Stage::Generation).invocations, 2);
        assert_eq!(merged.stage(Stage::Generation).items, 3);
        assert_eq!(merged.stage(Stage::Generation).logical_cost, 150);
        assert_eq!(merged.stage(Stage::Generation).wall_nanos, 12);
        assert_eq!(merged.cases_generated, 7);
        assert_eq!(merged.bugs_reported, 2);
        assert_eq!(merged.bugs_deduped, 1);
        assert_eq!(merged.shards, 2);
    }

    #[test]
    fn dedup_conserves_bug_total() {
        let mut m = CampaignMetrics::new();
        m.bugs_reported = 3;
        m.bugs_deduped = 1;
        m.dedup_reported_bug();
        assert_eq!(m.bugs_reported + m.bugs_deduped, 4);
        assert_eq!(m.bugs_reported, 2);
    }

    #[test]
    fn without_wall_clock_zeroes_only_wall_fields() {
        let mut m = CampaignMetrics::new();
        m.stage_mut(Stage::Reduction).record(1, 9, 1234);
        let stripped = m.without_wall_clock();
        assert_eq!(stripped.stage(Stage::Reduction).wall_nanos, 0);
        assert_eq!(stripped.stage(Stage::Reduction).logical_cost, 9);
    }

    #[test]
    fn json_rendering_parses() {
        let mut m = CampaignMetrics::new();
        m.stage_mut(Stage::Differential).record(10, 100, 0);
        m.cases_run = 10;
        let parsed = crate::json::parse(&m.to_json()).expect("valid json");
        assert_eq!(parsed.get("cases_run").and_then(|v| v.as_u64()), Some(10));
        let diff = parsed.get("stages").and_then(|s| s.get("differential")).expect("stage");
        assert_eq!(diff.get("invocations").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(diff.get("items").and_then(|v| v.as_u64()), Some(10));
    }
}
