//! Event sinks and the emitting [`Recorder`].
//!
//! A [`Sink`] consumes [`Event`]s; a cloneable [`SinkHandle`] travels
//! through campaign configuration structs (which must stay `Clone +
//! Debug`); a [`Recorder`] stamps logical clocks at the emission site.
//!
//! The sharded executor guarantees that sinks observe events in **logical
//! order** (shard-major, then sequence): each shard's stream is buffered
//! and flushed as soon as every earlier shard has flushed, so a `JsonlSink`
//! file is byte-identical (modulo wall-clock fields) at every thread count.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind, LogicalClock};
use crate::retry::RetryPolicy;

/// A durable-sink failure, surfaced as a typed value instead of being
/// silently swallowed. Telemetry writes stay best-effort — a full disk
/// degrades observability, never aborts a campaign — but every degradation
/// is now counted and queryable through [`JsonlSink::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// The underlying writer kept failing after `retries` extra attempts.
    Write {
        /// Retries consumed before giving up (bounded by the sink's
        /// [`RetryPolicy`]).
        retries: u32,
        /// The final I/O error, rendered.
        message: String,
    },
    /// The event could not be framed for the crash-safe journal format.
    Frame(String),
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Write { retries, message } => {
                write!(f, "sink write failed after {retries} retries: {message}")
            }
            SinkError::Frame(msg) => write!(f, "sink framing failed: {msg}"),
        }
    }
}

impl std::error::Error for SinkError {}

/// Health counters for a durable sink, updated on every failed write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkHealth {
    /// Events dropped after exhausting the retry budget.
    pub events_dropped: u64,
    /// Total retry attempts consumed (including those that eventually
    /// succeeded).
    pub retries: u64,
    /// The most recent error, when any write has ever failed.
    pub last_error: Option<SinkError>,
}

impl SinkHealth {
    /// `true` once at least one event has been dropped — the stream on disk
    /// is no longer complete.
    pub fn degraded(&self) -> bool {
        self.events_dropped > 0
    }
}

/// Consumes telemetry events. Implementations must be thread-safe: shards
/// run in parallel and the executor flushes completed shard streams from
/// worker threads.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
}

/// Discards every event (the default sink; zero observable cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Captures events in memory. Cloning shares the underlying buffer, so a
/// clone can be handed to a campaign while the original is later drained.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A snapshot of every event captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drains the buffer, returning the captured events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// `true` when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink poisoned").push(event.clone());
    }
}

/// A file writer that flushes OS buffers to stable storage (`sync_all`)
/// when dropped, so a JSONL stream survives the process exiting normally
/// right before a power cut.
struct SyncOnDropFile {
    file: std::fs::File,
}

impl Write for SyncOnDropFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

impl Drop for SyncOnDropFile {
    fn drop(&mut self) {
        let _ = self.file.sync_all();
    }
}

/// What [`JsonlSink::load`] salvaged from a (possibly torn) event stream.
#[derive(Debug, Clone, Default)]
pub struct JsonlRead {
    /// Every event parsed from an intact leading line, in file order.
    pub events: Vec<Event>,
    /// Bytes dropped from the torn or garbled tail (0 for a clean file).
    pub dropped_tail_bytes: usize,
    /// Why the tail was dropped, when it was.
    pub tail_error: Option<String>,
}

/// Writes one JSON object per line to an arbitrary writer (a file, a pipe,
/// an in-memory buffer). Clones share the writer.
///
/// In **framed** mode ([`JsonlSink::create_framed`]) every line additionally
/// carries the `J1 <len> <crc> ` header from [`crate::frame`] and is
/// appended unbuffered with a single `write` call, so a crash mid-append can
/// corrupt only the final line and [`JsonlSink::load`] salvages everything
/// before it.
#[derive(Clone)]
pub struct JsonlSink {
    out: Arc<Mutex<Box<dyn Write + Send>>>,
    framed: bool,
    retry: RetryPolicy,
    health: Arc<Mutex<SinkHealth>>,
}

impl JsonlSink {
    /// Wraps a writer.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Arc::new(Mutex::new(Box::new(writer))),
            framed: false,
            retry: RetryPolicy::default(),
            health: Arc::new(Mutex::new(SinkHealth::default())),
        }
    }

    /// Creates (truncating) a JSONL file at `path`. Buffered; flushed and
    /// synced to stable storage when the last clone drops.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = SyncOnDropFile { file: std::fs::File::create(path)? };
        Ok(JsonlSink::new(std::io::BufWriter::new(file)))
    }

    /// Creates (truncating) a **framed, crash-safe** JSONL file at `path`:
    /// each event line is checksummed and written with one unbuffered
    /// `write` call, so at most the final line can be torn by a crash.
    pub fn create_framed(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = SyncOnDropFile { file: std::fs::File::create(path)? };
        Ok(JsonlSink {
            out: Arc::new(Mutex::new(Box::new(file))),
            framed: true,
            retry: RetryPolicy::default(),
            health: Arc::new(Mutex::new(SinkHealth::default())),
        })
    }

    /// Overrides the bounded retry applied to failing writes (default:
    /// [`RetryPolicy::default`], two zero-backoff retries).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A snapshot of the sink's write-failure counters. Shared across
    /// clones, so the campaign can hand a clone to the executor and query
    /// degradation afterwards.
    pub fn health(&self) -> SinkHealth {
        self.health.lock().expect("jsonl sink poisoned").clone()
    }

    /// Writes one event, retrying transient failures under the sink's
    /// [`RetryPolicy`]. On exhaustion the typed error is returned *and*
    /// recorded in [`JsonlSink::health`]; the stream on disk is missing
    /// the event but remains well-formed.
    pub fn try_emit(&self, event: &Event) -> Result<(), SinkError> {
        let line = if self.framed {
            match crate::frame::frame_line(&event.to_json()) {
                Ok(line) => line,
                Err(e) => {
                    let err = SinkError::Frame(e.to_string());
                    self.record_failure(err.clone());
                    return Err(err);
                }
            }
        } else {
            let mut line = event.to_json();
            line.push('\n');
            line
        };
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        match self.retry.run(|| out.write_all(line.as_bytes())) {
            Ok(((), retries)) => {
                if retries > 0 {
                    self.health.lock().expect("jsonl sink poisoned").retries += retries as u64;
                }
                Ok(())
            }
            Err((io, retries)) => {
                drop(out);
                self.health.lock().expect("jsonl sink poisoned").retries += retries as u64;
                let err = SinkError::Write { retries, message: io.to_string() };
                self.record_failure(err.clone());
                Err(err)
            }
        }
    }

    fn record_failure(&self, err: SinkError) {
        let mut health = self.health.lock().expect("jsonl sink poisoned");
        health.events_dropped += 1;
        health.last_error = Some(err);
    }

    /// Loads an event stream written by this sink (framed or plain),
    /// salvaging every intact leading line and dropping a torn or garbled
    /// tail instead of poisoning the whole stream.
    ///
    /// Framing is auto-detected per line. For plain files the tail check is
    /// weaker (no checksum): an unterminated or unparseable final line is
    /// dropped; a bad line *before* intact ones is an error, because plain
    /// torn writes can only affect the tail.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlRead> {
        let bytes = std::fs::read(path)?;
        let mut out = JsonlRead::default();
        let mut pos = 0;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                out.dropped_tail_bytes = bytes.len() - pos;
                out.tail_error = Some("unterminated final line".to_string());
                return Ok(out);
            };
            let parsed = std::str::from_utf8(&bytes[pos..pos + nl])
                .map_err(|_| "invalid utf-8".to_string())
                .and_then(|line| {
                    let payload = if line.starts_with("J1 ") {
                        crate::frame::parse_frame(line).map_err(|e| e.to_string())?
                    } else {
                        line
                    };
                    Event::parse(payload)
                });
            match parsed {
                Ok(event) => out.events.push(event),
                Err(e) => {
                    // By the append-only invariant a bad line starts the
                    // torn tail; drop it and everything after.
                    out.dropped_tail_bytes = bytes.len() - pos;
                    out.tail_error = Some(e);
                    return Ok(out);
                }
            }
            pos += nl + 1;
        }
        Ok(out)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("jsonl sink poisoned").flush()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink(..)")
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        // A full pipe/disk is not a reason to abort a campaign; the error
        // is retried, then counted in `health` rather than propagated.
        let _ = self.try_emit(event);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// A cheaply cloneable, `Debug`-able handle to a shared [`Sink`] — the form
/// a sink takes inside configuration structs.
#[derive(Clone)]
pub struct SinkHandle {
    sink: Arc<dyn Sink>,
}

impl SinkHandle {
    /// Wraps a sink.
    pub fn new(sink: impl Sink + 'static) -> Self {
        SinkHandle { sink: Arc::new(sink) }
    }

    /// The discarding default.
    pub fn null() -> Self {
        SinkHandle::new(NullSink)
    }

    /// Forwards one event to the sink.
    pub fn emit(&self, event: &Event) {
        self.sink.emit(event);
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::null()
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

/// Stamps events with a shard-local logical clock and forwards them to a
/// sink. One recorder per shard; the sequence number is the per-shard event
/// count, which depends only on the shard's (deterministic) case stream.
#[derive(Debug, Clone)]
pub struct Recorder {
    sink: SinkHandle,
    shard: u64,
    seq: u64,
}

impl Recorder {
    /// A recorder for `shard`, emitting into `sink` starting at sequence 0.
    pub fn new(sink: SinkHandle, shard: u64) -> Self {
        Recorder { sink, shard, seq: 0 }
    }

    /// The shard this recorder stamps.
    pub fn shard(&self) -> u64 {
        self.shard
    }

    /// Stamps and emits one event.
    pub fn emit(&mut self, kind: EventKind) {
        let event = Event { clock: LogicalClock { shard: self.shard, seq: self.seq }, kind };
        self.seq += 1;
        self.sink.emit(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    #[test]
    fn recorder_assigns_consecutive_seqs() {
        let mem = MemorySink::new();
        let mut rec = Recorder::new(SinkHandle::new(mem.clone()), 3);
        for _ in 0..4 {
            rec.emit(EventKind::CaseRejected { base: 0, kept: false });
        }
        let events = mem.events();
        assert_eq!(events.len(), 4);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.clock.shard, 3);
            assert_eq!(e.clock.seq, i as u64);
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonlSink::new(buf.clone());
        let mut rec = Recorder::new(SinkHandle::new(sink), 0);
        rec.emit(EventKind::StageTiming {
            stage: Stage::Filter,
            invocations: 1,
            items: 1,
            logical_cost: 1,
            wall_nanos: None,
        });
        rec.emit(EventKind::CaseRejected { base: 9, kept: true });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("stage_timing"));
        assert!(lines[1].contains("case_rejected"));
    }

    #[test]
    fn framed_sink_survives_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("comfort-sink-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("framed.jsonl");
        {
            let sink = JsonlSink::create_framed(&path).unwrap();
            let mut rec = Recorder::new(SinkHandle::new(sink), 0);
            for base in 0..3 {
                rec.emit(EventKind::CaseRejected { base, kept: false });
            }
        }
        // Simulate a crash mid-append: tack on half a frame.
        let intact = std::fs::metadata(&path).unwrap().len() as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"J1 57 0badf00d {\"shard\":0,\"seq\":3,\"ty");
        std::fs::write(&path, &bytes).unwrap();

        let read = JsonlSink::load(&path).unwrap();
        assert_eq!(read.events.len(), 3);
        assert_eq!(read.dropped_tail_bytes, bytes.len() - intact);
        assert!(read.tail_error.is_some());
        for (i, e) in read.events.iter().enumerate() {
            assert_eq!(e.kind, EventKind::CaseRejected { base: i as u64, kept: false });
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plain_sink_load_drops_unterminated_tail() {
        let dir = std::env::temp_dir().join(format!("comfort-sink-plain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            let mut rec = Recorder::new(SinkHandle::new(sink), 1);
            rec.emit(EventKind::CaseRejected { base: 7, kept: true });
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"shard\":1,\"seq\":1,\"type\":\"case_re"); // no newline
        std::fs::write(&path, &bytes).unwrap();
        let read = JsonlSink::load(&path).unwrap();
        assert_eq!(read.events.len(), 1);
        assert!(read.tail_error.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A writer that fails its first `failures` writes, then succeeds.
    #[derive(Clone)]
    struct FlakyWriter {
        failures: Arc<Mutex<u32>>,
        written: Arc<Mutex<Vec<u8>>>,
    }

    impl FlakyWriter {
        fn new(failures: u32) -> Self {
            FlakyWriter {
                failures: Arc::new(Mutex::new(failures)),
                written: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let mut left = self.failures.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(std::io::Error::other("disk full"));
            }
            self.written.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_retries_transient_write_failures() {
        let writer = FlakyWriter::new(2);
        let sink = JsonlSink::new(writer.clone())
            .with_retry(RetryPolicy { max_retries: 3, backoff_base_millis: 0 });
        sink.try_emit(&Event {
            clock: LogicalClock { shard: 0, seq: 0 },
            kind: EventKind::CaseRejected { base: 1, kept: false },
        })
        .expect("retry should absorb two transient failures");
        let health = sink.health();
        assert_eq!(health.retries, 2);
        assert_eq!(health.events_dropped, 0);
        assert!(!health.degraded());
        assert!(!writer.written.lock().unwrap().is_empty());
    }

    #[test]
    fn jsonl_sink_exhausted_retries_degrade_without_aborting() {
        let writer = FlakyWriter::new(u32::MAX);
        let sink = JsonlSink::new(writer)
            .with_retry(RetryPolicy { max_retries: 2, backoff_base_millis: 0 });
        let event = Event {
            clock: LogicalClock { shard: 0, seq: 0 },
            kind: EventKind::CaseRejected { base: 1, kept: false },
        };
        // The Sink-trait path must not panic or propagate.
        sink.emit(&event);
        let err = sink.try_emit(&event).expect_err("writer always fails");
        assert!(matches!(err, SinkError::Write { retries: 2, .. }), "got {err:?}");
        let health = sink.health();
        assert_eq!(health.events_dropped, 2);
        assert_eq!(health.retries, 4);
        assert!(health.degraded());
        assert!(health.last_error.unwrap().to_string().contains("disk full"));
    }

    #[test]
    fn sink_health_is_shared_across_clones() {
        let sink = JsonlSink::new(FlakyWriter::new(u32::MAX)).with_retry(RetryPolicy::NONE);
        let clone = sink.clone();
        clone.emit(&Event {
            clock: LogicalClock { shard: 0, seq: 0 },
            kind: EventKind::CaseRejected { base: 1, kept: false },
        });
        assert!(sink.health().degraded());
    }

    #[test]
    fn memory_sink_take_drains() {
        let mem = MemorySink::new();
        let mut rec = Recorder::new(SinkHandle::new(mem.clone()), 0);
        rec.emit(EventKind::CaseRejected { base: 1, kept: false });
        assert_eq!(mem.take().len(), 1);
        assert!(mem.is_empty());
    }
}
