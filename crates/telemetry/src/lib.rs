#![warn(missing_docs)]

//! Structured campaign telemetry for the COMFORT pipeline.
//!
//! A long differential campaign is a black box until its `CampaignReport`
//! lands; this crate makes the run observable while it happens, without
//! giving up the executor's determinism contract:
//!
//! * [`event`] — the typed event taxonomy ([`Event`]/[`EventKind`]): one
//!   event per pipeline action (case generated, case rejected, differential
//!   run, deviation, bug dedup, shard lifecycle, per-stage timing), each
//!   stamped with a [`LogicalClock`] of `(shard, seq)` so the stream has a
//!   total logical order that is independent of thread count. Wall-clock
//!   durations live in *optional* fields excluded from determinism
//!   comparisons ([`Event::to_json_deterministic`]).
//! * [`sink`] — the [`Sink`] trait and its three stock implementations:
//!   [`NullSink`] (default, zero cost), [`MemorySink`] (in-process capture),
//!   and [`JsonlSink`] (one JSON object per line, machine-readable). A
//!   cloneable [`SinkHandle`] travels through the campaign configuration;
//!   a [`Recorder`] assigns logical clocks at the emission site.
//! * [`metrics`] — per-stage counters and log₂ cost histograms aggregated
//!   into a [`CampaignMetrics`] that embeds in the campaign report and
//!   merges across shards conservation-exactly.
//! * [`progress`] — a polling [`ProgressHandle`] (cases done, bugs found,
//!   per-shard throughput) safe to read from any thread while a campaign
//!   runs.
//! * [`frame`] — crash-safe line framing (`J1 <len> <crc32> <payload>`)
//!   shared by the durable [`JsonlSink`] mode and the campaign checkpoint
//!   journal in `comfort-core`: a torn write corrupts at most the final
//!   line, and loaders salvage everything before it.
//! * [`json`] — a minimal JSON value parser used to validate JSONL output
//!   in tests and CI (the workspace is offline; there is no serde).
//!
//! # Example
//!
//! ```
//! use comfort_telemetry::{Event, EventKind, MemorySink, Recorder, SinkHandle, Stage};
//!
//! let mem = MemorySink::new();
//! let mut recorder = Recorder::new(SinkHandle::new(mem.clone()), 0);
//! recorder.emit(EventKind::CaseGenerated {
//!     case_id: 0,
//!     base: 1,
//!     origin: "program-gen".into(),
//!     mutant: false,
//! });
//! recorder.emit(EventKind::StageTiming {
//!     stage: Stage::Generation,
//!     invocations: 1,
//!     items: 1,
//!     logical_cost: 42,
//!     wall_nanos: Some(1_000),
//! });
//! let events: Vec<Event> = mem.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].clock.seq, 1);
//! // Deterministic rendering strips the wall-clock field:
//! assert!(!events[1].to_json_deterministic().contains("wall_nanos"));
//! ```

pub mod event;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod retry;
pub mod sink;

pub use event::{
    event_from_json, Event, EventKind, LogicalClock, Stage, CONTROL_SHARD, MERGE_SHARD,
    SERVICE_SHARD,
};
pub use frame::{crc32, frame_line, parse_frame, read_framed, FrameError, FramedRead};
pub use json::JsonValue;
pub use metrics::{CampaignMetrics, CostHistogram, StageMetrics};
pub use progress::{ProgressHandle, ProgressSnapshot, ShardSnapshot};
pub use retry::RetryPolicy;
pub use sink::{
    JsonlRead, JsonlSink, MemorySink, NullSink, Recorder, Sink, SinkError, SinkHandle, SinkHealth,
};
