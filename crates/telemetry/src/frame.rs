//! Crash-safe line framing for durable append-only files.
//!
//! The checkpoint journal and durable JSONL streams share one framing: each
//! record is a single line
//!
//! ```text
//! J1 <payload-len> <crc32-hex> <payload>\n
//! ```
//!
//! written with one `write` call, so a crash mid-append can corrupt **only
//! the final line**. On load, [`read_framed`] walks the file front to back
//! and stops at the first line that fails the length or CRC check — by the
//! append-only invariant that line (and anything after it) can only be the
//! torn tail of the last in-flight write, so every earlier record is intact.
//!
//! Payloads must not contain raw newlines (JSON one-liners never do; the
//! framer rejects them defensively).

/// Frame tag identifying the format version.
const TAG: &str = "J1";

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// Hand-rolled so the workspace stays dependency-free; byte-at-a-time over a
/// lazily built table is ample for journal-sized inputs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A payload rejected by [`frame_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The payload contains a raw newline and cannot be framed as one line.
    EmbeddedNewline,
    /// The line does not carry the `J1` tag.
    BadTag,
    /// The line's header fields are malformed.
    BadHeader,
    /// The declared length does not match the payload.
    LengthMismatch {
        /// Length declared by the frame header.
        declared: usize,
        /// Actual payload length on the line.
        actual: usize,
    },
    /// The payload's CRC-32 does not match the declared checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::EmbeddedNewline => write!(f, "payload contains a raw newline"),
            FrameError::BadTag => write!(f, "missing J1 frame tag"),
            FrameError::BadHeader => write!(f, "malformed frame header"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "frame length mismatch: declared {declared}, actual {actual}")
            }
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frames `payload` as one durable line (including the trailing newline).
///
/// The returned string is meant to be appended with a **single** `write`
/// call: partial writes then only ever produce a torn final line, which
/// [`read_framed`] drops cleanly.
pub fn frame_line(payload: &str) -> Result<String, FrameError> {
    if payload.contains('\n') {
        return Err(FrameError::EmbeddedNewline);
    }
    Ok(format!("{TAG} {} {:08x} {payload}\n", payload.len(), crc32(payload.as_bytes())))
}

/// Parses one framed line (without its trailing newline) back to its
/// payload, verifying length and checksum.
pub fn parse_frame(line: &str) -> Result<&str, FrameError> {
    let rest = line.strip_prefix(TAG).ok_or(FrameError::BadTag)?;
    let rest = rest.strip_prefix(' ').ok_or(FrameError::BadHeader)?;
    let (len_str, rest) = rest.split_once(' ').ok_or(FrameError::BadHeader)?;
    let (crc_str, payload) = rest.split_once(' ').ok_or(FrameError::BadHeader)?;
    let declared: usize = len_str.parse().map_err(|_| FrameError::BadHeader)?;
    let declared_crc = u32::from_str_radix(crc_str, 16).map_err(|_| FrameError::BadHeader)?;
    if payload.len() != declared {
        return Err(FrameError::LengthMismatch { declared, actual: payload.len() });
    }
    if crc32(payload.as_bytes()) != declared_crc {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(payload)
}

/// What [`read_framed`] salvaged from a (possibly torn) framed file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FramedRead {
    /// Payloads of every intact record, in file order.
    pub records: Vec<String>,
    /// Byte offset of each intact record's line start (parallel to
    /// `records`). Lets a payload-level loader that rejects record `i`
    /// truncate the file back to `offsets[i]`, dropping the whole garbled
    /// trailing run rather than just the final frame.
    pub offsets: Vec<usize>,
    /// Bytes dropped from the tail (the torn or garbled final write).
    pub dropped_tail_bytes: usize,
    /// Why the tail was dropped, when it was.
    pub tail_error: Option<String>,
}

impl FramedRead {
    /// `true` when the file ended mid-record and bytes were discarded.
    pub fn tail_dropped(&self) -> bool {
        self.dropped_tail_bytes > 0
    }
}

/// Reads a framed file, salvaging every intact leading record and dropping
/// the torn tail (if any).
///
/// Operates on raw bytes: a write torn mid-UTF-8-sequence is still confined
/// to the final line and is dropped like any other checksum failure.
pub fn read_framed(bytes: &[u8]) -> FramedRead {
    let mut out = FramedRead::default();
    let mut pos = 0;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // No newline: the final write never completed.
            out.dropped_tail_bytes = bytes.len() - pos;
            out.tail_error = Some("unterminated final line".to_string());
            return out;
        };
        let line_bytes = &bytes[pos..pos + nl];
        let parsed = std::str::from_utf8(line_bytes)
            .map_err(|_| FrameError::BadHeader.to_string())
            .and_then(|line| parse_frame(line).map_err(|e| e.to_string()));
        match parsed {
            Ok(payload) => {
                out.records.push(payload.to_string());
                out.offsets.push(pos);
            }
            Err(e) => {
                // A bad line can only be the torn tail of the last append
                // (the append-only invariant); drop it and everything after.
                out.dropped_tail_bytes = bytes.len() - pos;
                out.tail_error = Some(e);
                return out;
            }
        }
        pos += nl + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let payload = r#"{"type":"shard","index":3}"#;
        let line = frame_line(payload).expect("frames");
        assert!(line.ends_with('\n'));
        assert_eq!(parse_frame(line.trim_end_matches('\n')).expect("parses"), payload);
    }

    #[test]
    fn newlines_are_rejected() {
        assert_eq!(frame_line("a\nb"), Err(FrameError::EmbeddedNewline));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let line = frame_line("hello world").unwrap();
        let bad = line.replace("hello", "jello");
        assert_eq!(parse_frame(bad.trim_end_matches('\n')), Err(FrameError::ChecksumMismatch));
    }

    #[test]
    fn read_framed_salvages_intact_prefix() {
        let mut file = String::new();
        for i in 0..4 {
            file.push_str(&frame_line(&format!("record {i}")).unwrap());
        }
        let read = read_framed(file.as_bytes());
        assert_eq!(read.records.len(), 4);
        assert!(!read.tail_dropped());
    }

    #[test]
    fn read_framed_reports_record_offsets() {
        let mut file = String::new();
        let mut starts = Vec::new();
        for i in 0..3 {
            starts.push(file.len());
            file.push_str(&frame_line(&format!("record {i}")).unwrap());
        }
        let read = read_framed(file.as_bytes());
        assert_eq!(read.offsets, starts);
    }

    #[test]
    fn read_framed_drops_only_the_torn_tail() {
        let mut file = String::new();
        for i in 0..3 {
            file.push_str(&frame_line(&format!("record {i}")).unwrap());
        }
        let intact = file.len();
        file.push_str("J1 40 deadbeef {\"type\":\"shard\",\"ind"); // torn write
        let read = read_framed(file.as_bytes());
        assert_eq!(read.records, vec!["record 0", "record 1", "record 2"]);
        assert_eq!(read.dropped_tail_bytes, file.len() - intact);
        assert!(read.tail_dropped());
    }

    #[test]
    fn every_truncation_point_keeps_the_intact_prefix() {
        let mut file = String::new();
        let mut boundaries = vec![0usize];
        for i in 0..3 {
            file.push_str(&frame_line(&format!("payload number {i}")).unwrap());
            boundaries.push(file.len());
        }
        for cut in 0..file.len() {
            let read = read_framed(&file.as_bytes()[..cut]);
            // The salvage is exactly the records whose full line fits.
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(read.records.len(), complete, "cut at byte {cut}");
        }
    }
}
