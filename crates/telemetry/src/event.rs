//! The typed event taxonomy and its deterministic JSON rendering.
//!
//! Every event carries a [`LogicalClock`]: the shard that produced it and a
//! per-shard sequence number assigned by the emitting
//! [`Recorder`](crate::sink::Recorder). Sorting a stream by `(shard, seq)`
//! therefore yields the same total order at every thread count — the
//! executor already delivers events to sinks in that order. Wall-clock
//! durations are *optional* fields; [`Event::to_json_deterministic`] omits
//! them so streams can be compared bit-for-bit across runs and thread
//! counts.

use std::fmt::Write as _;

/// A deterministic event timestamp: `(shard, seq)`.
///
/// `seq` counts events within one shard's stream; `shard` is the shard's
/// merge-order index ([`MERGE_SHARD`] for events emitted by the cross-shard
/// merge itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalClock {
    /// Shard index in merge order.
    pub shard: u64,
    /// Position within the shard's event stream.
    pub seq: u64,
}

/// The `shard` value used for events emitted during the cross-shard merge
/// (which runs after every per-shard stream, in deterministic merge order).
pub const MERGE_SHARD: u64 = u64::MAX;

/// The `shard` value used for **control-plane** events — checkpoint writes,
/// resume/interrupt lifecycle — which describe how one particular execution
/// unfolded rather than what the campaign computed. Control events are
/// excluded from the determinism contract (a resumed run legitimately emits
/// a `campaign_resumed` event an uninterrupted run does not); filter them
/// with [`Event::is_control`] before comparing streams.
pub const CONTROL_SHARD: u64 = u64::MAX - 1;

/// The `shard` value used for **service-plane** events — lease grants and
/// reclaims, admission decisions, drains — emitted by the `comfort-service`
/// supervisor rather than by any campaign's pipeline. Like
/// [`CONTROL_SHARD`], service events describe one particular execution of
/// the daemon and are excluded from the determinism contract; they render
/// as shard `-3` and are flagged by [`Event::is_control`].
pub const SERVICE_SHARD: u64 = u64::MAX - 2;

/// The six pipeline stages metrics and timings are keyed by, in pipeline
/// order: generation → validity filter → data-gen mutation → differential
/// voting → reduction → identical-bug filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// LM program generation (§3.2).
    Generation,
    /// Front-end validity filtering of generated sources.
    Validity,
    /// ECMA-262-guided test-data mutation (Algorithm 1).
    Datagen,
    /// Differential execution + majority voting (§3.4).
    Differential,
    /// Bug-exposing test-case reduction (§3.5).
    Reduction,
    /// Three-layer identical-bug filtering (§3.6).
    Filter,
}

impl Stage {
    /// All stages in pipeline order (also the metrics array layout).
    pub const ALL: [Stage; 6] = [
        Stage::Generation,
        Stage::Validity,
        Stage::Datagen,
        Stage::Differential,
        Stage::Reduction,
        Stage::Filter,
    ];

    /// Stable snake-case label (used in JSONL output).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Generation => "generation",
            Stage::Validity => "validity",
            Stage::Datagen => "datagen",
            Stage::Differential => "differential",
            Stage::Reduction => "reduction",
            Stage::Filter => "filter",
        }
    }

    /// Parses the stable label produced by [`Stage::as_str`].
    pub fn parse_label(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|stage| stage.as_str() == s)
    }

    /// Index into [`Stage::ALL`] (and the per-stage metrics array).
    pub fn index(self) -> usize {
        match self {
            Stage::Generation => 0,
            Stage::Validity => 1,
            Stage::Datagen => 2,
            Stage::Differential => 3,
            Stage::Reduction => 4,
            Stage::Filter => 5,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened (the payload of an [`Event`]).
///
/// Engine names, deviation kinds, and bug keys travel as plain strings so
/// this crate stays dependency-free and the JSONL output is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A shard began executing its slice of the case budget.
    ShardStarted {
        /// The shard's derived campaign seed.
        seed: u64,
        /// The shard's share of `max_cases`.
        case_budget: u64,
    },
    /// A shard finished.
    ShardFinished {
        /// Cases the shard executed.
        cases_run: u64,
        /// Unique bugs the shard reported.
        bugs_reported: u64,
        /// Wall-clock shard duration (excluded from determinism
        /// comparisons).
        wall_nanos: Option<u64>,
    },
    /// A test case entered the execution queue.
    CaseGenerated {
        /// Campaign-unique case id.
        case_id: u64,
        /// Id of the base generated program this case derives from.
        base: u64,
        /// Provenance label (`"program-gen"` / `"ecma-mutation"`).
        origin: String,
        /// `true` for data-mutation cases, `false` for the base program.
        mutant: bool,
    },
    /// A generated source failed the validity filter (front-end rejection).
    CaseRejected {
        /// Generation counter of the rejected source.
        base: u64,
        /// `true` when the invalid program was kept as a parser test
        /// (§3.2 keeps 20%).
        kept: bool,
    },
    /// One case ran across the testbed matrix and was voted on.
    DifferentialRun {
        /// The case.
        case_id: u64,
        /// Number of testbeds that voted.
        testbeds: u64,
        /// Outcome label (`"pass"`, `"deviations"`, `"parse-error"`,
        /// `"all-timeout"`).
        outcome: String,
    },
    /// The execution-dedup layer collapsed a case's testbed matrix:
    /// `classes` physical executions served `classes + saved` logical runs
    /// (emitted only when `saved > 0`).
    ExecutionDeduped {
        /// The case.
        case_id: u64,
        /// Behaviour-equivalence classes (= physical executions).
        classes: u64,
        /// Executions avoided (logical runs − physical executions).
        saved: u64,
    },
    /// One engine deviated from the majority on one case.
    Deviation {
        /// The case.
        case_id: u64,
        /// Deviating engine.
        engine: String,
        /// Deviation class label.
        kind: String,
    },
    /// The identical-bug filter discarded an observation as a duplicate.
    BugDeduped {
        /// Engine layer of the duplicate key.
        engine: String,
        /// Full `engine / api / behavior` key.
        key: String,
        /// `true` when the duplicate was found while merging shard
        /// reports (the bug was first reported by an earlier shard).
        cross_shard: bool,
    },
    /// A harness-level fault was observed on one testbed run (contained
    /// panic, wedge/watchdog timeout, transient-retry exhaustion, or
    /// output-cap truncation). Distinct from [`EventKind::Deviation`]:
    /// faults describe *testbed* misbehaviour, deviations describe voting
    /// outcomes.
    FaultInjected {
        /// The case being executed when the fault was observed.
        case_id: u64,
        /// Label of the faulting testbed.
        testbed: String,
        /// Fault class label (`"panic"`, `"hang"`, `"transient-exhausted"`,
        /// `"output-truncated"`).
        kind: String,
    },
    /// A testbed run hit transient faults and was retried to completion
    /// (emitted once per retried run, carrying the attempt count).
    RunRetried {
        /// The case.
        case_id: u64,
        /// Label of the retried testbed.
        testbed: String,
        /// Number of extra attempts the run needed.
        retries: u64,
    },
    /// The circuit breaker sidelined a testbed after consecutive hard
    /// faults; it casts no further votes in this shard.
    TestbedQuarantined {
        /// The case whose fault tripped the breaker.
        case_id: u64,
        /// Label of the quarantined testbed.
        testbed: String,
        /// Consecutive hard faults observed at the moment of quarantine.
        hard_faults: u64,
    },
    /// A mode group voted with fewer than its full membership (members
    /// quarantined), or was skipped entirely for falling below the quorum
    /// threshold.
    QuorumDegraded {
        /// The case.
        case_id: u64,
        /// `true` for the strict testbed group.
        strict: bool,
        /// Healthy voters that actually cast signatures.
        healthy: u64,
        /// Full membership of the group.
        total: u64,
        /// `false` when the group fell below the quorum threshold and its
        /// vote was skipped.
        voted: bool,
    },
    /// A quarantined testbed passed its half-open probe and rejoined the
    /// voting quorum (see `HealthTracker` probing in `comfort-core`).
    TestbedReinstated {
        /// The case that served as the successful probe.
        case_id: u64,
        /// Label of the reinstated testbed.
        testbed: String,
        /// Cases the testbed sat out in quarantine before this probe.
        skipped: u64,
    },
    /// One shard's result was durably appended to the checkpoint journal
    /// (control-plane; stamped with [`CONTROL_SHARD`]).
    CheckpointWritten {
        /// Index of the checkpointed shard.
        checkpointed_shard: u64,
        /// Cases that shard executed.
        cases_run: u64,
        /// Journal size in bytes after the append (0 when unknown).
        journal_bytes: u64,
    },
    /// A campaign was resumed from a checkpoint journal (control-plane).
    CampaignResumed {
        /// Shards salvaged from the journal.
        shards_salvaged: u64,
        /// Total shards in the plan.
        shards_total: u64,
        /// Torn-tail bytes dropped during recovery.
        dropped_bytes: u64,
    },
    /// A campaign stopped early on cancellation or deadline (control-plane).
    /// Completed shards were checkpointed; in-flight shards were discarded
    /// and will re-run on resume.
    CampaignInterrupted {
        /// Shards fully completed (and journaled, when checkpointing).
        shards_completed: u64,
        /// Total shards in the plan.
        shards_total: u64,
        /// Why the campaign stopped (`"cancelled"` / `"deadline"`).
        reason: String,
    },
    /// A worker acquired a lease on one shard of a supervised campaign
    /// (service-plane; stamped with [`SERVICE_SHARD`]).
    LeaseAcquired {
        /// The leased campaign's id.
        campaign: String,
        /// The leased shard's index within that campaign's plan.
        lease_shard: u64,
        /// The acquiring worker's label.
        worker: String,
        /// Lease time-to-live granted, in milliseconds.
        ttl_millis: u64,
    },
    /// A live worker's lease was renewed by the supervisor heartbeat
    /// (service-plane). Liveness is progress-based: the lease renews only
    /// while the shard's case counter is advancing.
    LeaseRenewed {
        /// The leased campaign's id.
        campaign: String,
        /// The leased shard's index.
        lease_shard: u64,
        /// The holding worker's label.
        worker: String,
    },
    /// A worker completed its shard and released the lease (service-plane).
    LeaseReleased {
        /// The leased campaign's id.
        campaign: String,
        /// The released shard's index.
        lease_shard: u64,
        /// The releasing worker's label.
        worker: String,
    },
    /// A lease outlived its TTL without renewal — the holder is wedged or
    /// dead (service-plane).
    LeaseExpired {
        /// The leased campaign's id.
        campaign: String,
        /// The expired shard's index.
        lease_shard: u64,
        /// The delinquent worker's label.
        worker: String,
    },
    /// The supervisor reclaimed an expired lease so the shard can be
    /// reassigned (service-plane). The fencing sequence number increments,
    /// so a late completion from the old holder is discarded.
    LeaseReclaimed {
        /// The leased campaign's id.
        campaign: String,
        /// The reclaimed shard's index.
        lease_shard: u64,
        /// The worker whose lease was reclaimed.
        worker: String,
        /// How many times this shard's lease has now been reclaimed.
        reclaims: u64,
    },
    /// Admission control accepted a campaign into the run queue
    /// (service-plane).
    CampaignAdmitted {
        /// The admitted campaign's id.
        campaign: String,
        /// The submitting tenant.
        tenant: String,
        /// Shards in the campaign's plan.
        shards: u64,
    },
    /// Admission control rejected a submission — tenant over quota, queue
    /// full, or the daemon is draining (service-plane).
    CampaignRejected {
        /// The rejected tenant.
        tenant: String,
        /// Rejection class (`"quota"` / `"queue_full"` / `"draining"`).
        reason: String,
        /// Suggested client backoff before resubmitting, in milliseconds.
        retry_after_millis: u64,
    },
    /// A supervised campaign reached a terminal state (service-plane).
    CampaignFinished {
        /// The finished campaign's id.
        campaign: String,
        /// Terminal outcome (`"completed"` / `"cancelled"` / `"failed"`).
        outcome: String,
        /// Shards executed by this daemon process (salvaged shards not
        /// included).
        shards_run: u64,
    },
    /// The daemon began a graceful drain: no new leases, in-flight shards
    /// checkpoint, telemetry flushes, then exit 0 (service-plane).
    DrainStarted {
        /// Campaigns still active when the drain began.
        active_campaigns: u64,
    },
    /// The fleet supervisor spawned a jailed worker process for a pool
    /// slot (service-plane).
    WorkerSpawned {
        /// The supervised campaign's id.
        campaign: String,
        /// The spawned worker's label.
        worker: String,
        /// The shard the worker was directed at.
        lease_shard: u64,
        /// The worker's OS process id.
        pid: u64,
    },
    /// A jailed worker process died by signal instead of exiting
    /// (service-plane). Its lease is force-expired and the shard
    /// reclaimed.
    WorkerDied {
        /// The supervised campaign's id.
        campaign: String,
        /// The dead worker's label.
        worker: String,
        /// The shard the worker held when it died.
        lease_shard: u64,
        /// The fatal signal number (SIGKILL=9, SIGSEGV=11, SIGABRT=6, …).
        signal: u64,
    },
    /// A shard killed workers K times consecutively and entered poison
    /// quarantine; bisection localized the poison case (service-plane).
    ShardPoisoned {
        /// The supervised campaign's id.
        campaign: String,
        /// The quarantined shard's index.
        lease_shard: u64,
        /// Consecutive worker deaths that triggered quarantine.
        deaths: u64,
        /// Case index within the shard localized as the poison case.
        poison_case: u64,
        /// The fatal signal the poison case raises.
        signal: u64,
    },
    /// The crash-storm breaker tripped: the supervisor narrowed the pool
    /// instead of spinning through restarts (service-plane).
    PoolDegraded {
        /// Pool width before degradation.
        from_workers: u64,
        /// Pool width after degradation.
        to_workers: u64,
        /// Consecutive signal deaths that tripped the breaker.
        consecutive_deaths: u64,
    },
    /// Aggregated per-stage counters for one shard (emitted at shard end).
    StageTiming {
        /// The pipeline stage.
        stage: Stage,
        /// Times the stage ran.
        invocations: u64,
        /// Items the stage processed.
        items: u64,
        /// Deterministic cost units consumed (stage-specific: bytes
        /// generated, testbed runs, reduction candidates, …).
        logical_cost: u64,
        /// Wall-clock time spent in the stage (excluded from determinism
        /// comparisons).
        wall_nanos: Option<u64>,
    },
}

impl EventKind {
    /// Stable snake-case type tag (the JSONL `"type"` field).
    pub fn type_str(&self) -> &'static str {
        match self {
            EventKind::ShardStarted { .. } => "shard_started",
            EventKind::ShardFinished { .. } => "shard_finished",
            EventKind::CaseGenerated { .. } => "case_generated",
            EventKind::CaseRejected { .. } => "case_rejected",
            EventKind::DifferentialRun { .. } => "differential_run",
            EventKind::ExecutionDeduped { .. } => "execution_deduped",
            EventKind::Deviation { .. } => "deviation",
            EventKind::BugDeduped { .. } => "bug_deduped",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RunRetried { .. } => "run_retried",
            EventKind::TestbedQuarantined { .. } => "testbed_quarantined",
            EventKind::QuorumDegraded { .. } => "quorum_degraded",
            EventKind::TestbedReinstated { .. } => "testbed_reinstated",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CampaignResumed { .. } => "campaign_resumed",
            EventKind::CampaignInterrupted { .. } => "campaign_interrupted",
            EventKind::LeaseAcquired { .. } => "lease_acquired",
            EventKind::LeaseRenewed { .. } => "lease_renewed",
            EventKind::LeaseReleased { .. } => "lease_released",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::LeaseReclaimed { .. } => "lease_reclaimed",
            EventKind::CampaignAdmitted { .. } => "campaign_admitted",
            EventKind::CampaignRejected { .. } => "campaign_rejected",
            EventKind::CampaignFinished { .. } => "campaign_finished",
            EventKind::DrainStarted { .. } => "drain_started",
            EventKind::WorkerSpawned { .. } => "worker_spawned",
            EventKind::WorkerDied { .. } => "worker_died",
            EventKind::ShardPoisoned { .. } => "shard_poisoned",
            EventKind::PoolDegraded { .. } => "pool_degraded",
            EventKind::StageTiming { .. } => "stage_timing",
        }
    }
}

/// One telemetry event: a logical clock plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When, in logical time.
    pub clock: LogicalClock,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON object (one JSONL line, no trailing
    /// newline), including wall-clock fields.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// Renders the event as JSON **without** wall-clock fields — the form
    /// compared in determinism tests (logical content only).
    pub fn to_json_deterministic(&self) -> String {
        self.render(false)
    }

    /// `true` for control-plane ([`CONTROL_SHARD`]) and service-plane
    /// ([`SERVICE_SHARD`]) events — checkpoint/resume lifecycle and
    /// supervisor decisions — which are excluded from the determinism
    /// contract. Filter with this before comparing streams bit-for-bit.
    pub fn is_control(&self) -> bool {
        self.clock.shard == CONTROL_SHARD || self.clock.shard == SERVICE_SHARD
    }

    /// Strips wall-clock fields, leaving only deterministic content.
    pub fn without_wall_clock(&self) -> Event {
        let mut e = self.clone();
        match &mut e.kind {
            EventKind::ShardFinished { wall_nanos, .. }
            | EventKind::StageTiming { wall_nanos, .. } => *wall_nanos = None,
            _ => {}
        }
        e
    }

    fn render(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"shard\":{},\"seq\":{},\"type\":\"{}\"",
            // u64::MAX is not representable in every JSON reader; render the
            // merge pseudo-shard as -1, the control pseudo-shard as -2, and
            // the service pseudo-shard as -3.
            match self.clock.shard {
                MERGE_SHARD => -1i64,
                CONTROL_SHARD => -2i64,
                SERVICE_SHARD => -3i64,
                s => s as i64,
            },
            self.clock.seq,
            self.kind.type_str()
        );
        match &self.kind {
            EventKind::ShardStarted { seed, case_budget } => {
                let _ = write!(out, ",\"seed\":{seed},\"case_budget\":{case_budget}");
            }
            EventKind::ShardFinished { cases_run, bugs_reported, wall_nanos } => {
                let _ = write!(out, ",\"cases_run\":{cases_run},\"bugs_reported\":{bugs_reported}");
                if include_wall {
                    if let Some(w) = wall_nanos {
                        let _ = write!(out, ",\"wall_nanos\":{w}");
                    }
                }
            }
            EventKind::CaseGenerated { case_id, base, origin, mutant } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"base\":{base},\"origin\":{},\"mutant\":{mutant}",
                    json_string(origin)
                );
            }
            EventKind::CaseRejected { base, kept } => {
                let _ = write!(out, ",\"base\":{base},\"kept\":{kept}");
            }
            EventKind::DifferentialRun { case_id, testbeds, outcome } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"testbeds\":{testbeds},\"outcome\":{}",
                    json_string(outcome)
                );
            }
            EventKind::ExecutionDeduped { case_id, classes, saved } => {
                let _ =
                    write!(out, ",\"case_id\":{case_id},\"classes\":{classes},\"saved\":{saved}");
            }
            EventKind::Deviation { case_id, engine, kind } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"engine\":{},\"kind\":{}",
                    json_string(engine),
                    json_string(kind)
                );
            }
            EventKind::BugDeduped { engine, key, cross_shard } => {
                let _ = write!(
                    out,
                    ",\"engine\":{},\"key\":{},\"cross_shard\":{cross_shard}",
                    json_string(engine),
                    json_string(key)
                );
            }
            EventKind::FaultInjected { case_id, testbed, kind } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"testbed\":{},\"kind\":{}",
                    json_string(testbed),
                    json_string(kind)
                );
            }
            EventKind::RunRetried { case_id, testbed, retries } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"testbed\":{},\"retries\":{retries}",
                    json_string(testbed)
                );
            }
            EventKind::TestbedQuarantined { case_id, testbed, hard_faults } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"testbed\":{},\"hard_faults\":{hard_faults}",
                    json_string(testbed)
                );
            }
            EventKind::QuorumDegraded { case_id, strict, healthy, total, voted } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"strict\":{strict},\"healthy\":{healthy},\"total\":{total},\"voted\":{voted}"
                );
            }
            EventKind::TestbedReinstated { case_id, testbed, skipped } => {
                let _ = write!(
                    out,
                    ",\"case_id\":{case_id},\"testbed\":{},\"skipped\":{skipped}",
                    json_string(testbed)
                );
            }
            EventKind::CheckpointWritten { checkpointed_shard, cases_run, journal_bytes } => {
                let _ = write!(
                    out,
                    ",\"checkpointed_shard\":{checkpointed_shard},\"cases_run\":{cases_run},\"journal_bytes\":{journal_bytes}"
                );
            }
            EventKind::CampaignResumed { shards_salvaged, shards_total, dropped_bytes } => {
                let _ = write!(
                    out,
                    ",\"shards_salvaged\":{shards_salvaged},\"shards_total\":{shards_total},\"dropped_bytes\":{dropped_bytes}"
                );
            }
            EventKind::CampaignInterrupted { shards_completed, shards_total, reason } => {
                let _ = write!(
                    out,
                    ",\"shards_completed\":{shards_completed},\"shards_total\":{shards_total},\"reason\":{}",
                    json_string(reason)
                );
            }
            EventKind::LeaseAcquired { campaign, lease_shard, worker, ttl_millis } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"lease_shard\":{lease_shard},\"worker\":{},\"ttl_millis\":{ttl_millis}",
                    json_string(campaign),
                    json_string(worker)
                );
            }
            EventKind::LeaseRenewed { campaign, lease_shard, worker }
            | EventKind::LeaseReleased { campaign, lease_shard, worker }
            | EventKind::LeaseExpired { campaign, lease_shard, worker } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"lease_shard\":{lease_shard},\"worker\":{}",
                    json_string(campaign),
                    json_string(worker)
                );
            }
            EventKind::LeaseReclaimed { campaign, lease_shard, worker, reclaims } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"lease_shard\":{lease_shard},\"worker\":{},\"reclaims\":{reclaims}",
                    json_string(campaign),
                    json_string(worker)
                );
            }
            EventKind::CampaignAdmitted { campaign, tenant, shards } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"tenant\":{},\"shards\":{shards}",
                    json_string(campaign),
                    json_string(tenant)
                );
            }
            EventKind::CampaignRejected { tenant, reason, retry_after_millis } => {
                let _ = write!(
                    out,
                    ",\"tenant\":{},\"reason\":{},\"retry_after_millis\":{retry_after_millis}",
                    json_string(tenant),
                    json_string(reason)
                );
            }
            EventKind::CampaignFinished { campaign, outcome, shards_run } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"outcome\":{},\"shards_run\":{shards_run}",
                    json_string(campaign),
                    json_string(outcome)
                );
            }
            EventKind::DrainStarted { active_campaigns } => {
                let _ = write!(out, ",\"active_campaigns\":{active_campaigns}");
            }
            EventKind::WorkerSpawned { campaign, worker, lease_shard, pid } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"worker\":{},\"lease_shard\":{lease_shard},\"pid\":{pid}",
                    json_string(campaign),
                    json_string(worker)
                );
            }
            EventKind::WorkerDied { campaign, worker, lease_shard, signal } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"worker\":{},\"lease_shard\":{lease_shard},\"signal\":{signal}",
                    json_string(campaign),
                    json_string(worker)
                );
            }
            EventKind::ShardPoisoned { campaign, lease_shard, deaths, poison_case, signal } => {
                let _ = write!(
                    out,
                    ",\"campaign\":{},\"lease_shard\":{lease_shard},\"deaths\":{deaths},\"poison_case\":{poison_case},\"signal\":{signal}",
                    json_string(campaign)
                );
            }
            EventKind::PoolDegraded { from_workers, to_workers, consecutive_deaths } => {
                let _ = write!(
                    out,
                    ",\"from_workers\":{from_workers},\"to_workers\":{to_workers},\"consecutive_deaths\":{consecutive_deaths}"
                );
            }
            EventKind::StageTiming { stage, invocations, items, logical_cost, wall_nanos } => {
                let _ = write!(
                    out,
                    ",\"stage\":\"{}\",\"invocations\":{invocations},\"items\":{items},\"logical_cost\":{logical_cost}",
                    stage.as_str()
                );
                if include_wall {
                    if let Some(w) = wall_nanos {
                        let _ = write!(out, ",\"wall_nanos\":{w}");
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

/// Parses one rendered event line back into an [`Event`] — the inverse of
/// [`Event::to_json`], used when replaying journaled shard streams on
/// resume. Accepts both wall-clock and deterministic renderings.
pub fn event_from_json(v: &crate::json::JsonValue) -> Result<Event, String> {
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field {key:?}"));
    let num = |key: &str| field(key)?.as_u64().ok_or_else(|| format!("field {key:?} not a u64"));
    let string = |key: &str| {
        field(key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("field {key:?} not a string"))
    };
    let boolean =
        |key: &str| field(key)?.as_bool().ok_or_else(|| format!("field {key:?} not a bool"));
    let opt_num = |key: &str| match v.get(key) {
        None => Ok(None),
        Some(w) => w.as_u64().map(Some).ok_or_else(|| format!("field {key:?} not a u64")),
    };

    let shard = match field("shard")?.as_i128().ok_or("field \"shard\" not an integer")? {
        -1 => MERGE_SHARD,
        -2 => CONTROL_SHARD,
        -3 => SERVICE_SHARD,
        s => u64::try_from(s).map_err(|_| format!("shard {s} out of range"))?,
    };
    let clock = LogicalClock { shard, seq: num("seq")? };

    let ty = string("type")?;
    let kind = match ty.as_str() {
        "shard_started" => {
            EventKind::ShardStarted { seed: num("seed")?, case_budget: num("case_budget")? }
        }
        "shard_finished" => EventKind::ShardFinished {
            cases_run: num("cases_run")?,
            bugs_reported: num("bugs_reported")?,
            wall_nanos: opt_num("wall_nanos")?,
        },
        "case_generated" => EventKind::CaseGenerated {
            case_id: num("case_id")?,
            base: num("base")?,
            origin: string("origin")?,
            mutant: boolean("mutant")?,
        },
        "case_rejected" => EventKind::CaseRejected { base: num("base")?, kept: boolean("kept")? },
        "differential_run" => EventKind::DifferentialRun {
            case_id: num("case_id")?,
            testbeds: num("testbeds")?,
            outcome: string("outcome")?,
        },
        "execution_deduped" => EventKind::ExecutionDeduped {
            case_id: num("case_id")?,
            classes: num("classes")?,
            saved: num("saved")?,
        },
        "deviation" => EventKind::Deviation {
            case_id: num("case_id")?,
            engine: string("engine")?,
            kind: string("kind")?,
        },
        "bug_deduped" => EventKind::BugDeduped {
            engine: string("engine")?,
            key: string("key")?,
            cross_shard: boolean("cross_shard")?,
        },
        "fault_injected" => EventKind::FaultInjected {
            case_id: num("case_id")?,
            testbed: string("testbed")?,
            kind: string("kind")?,
        },
        "run_retried" => EventKind::RunRetried {
            case_id: num("case_id")?,
            testbed: string("testbed")?,
            retries: num("retries")?,
        },
        "testbed_quarantined" => EventKind::TestbedQuarantined {
            case_id: num("case_id")?,
            testbed: string("testbed")?,
            hard_faults: num("hard_faults")?,
        },
        "quorum_degraded" => EventKind::QuorumDegraded {
            case_id: num("case_id")?,
            strict: boolean("strict")?,
            healthy: num("healthy")?,
            total: num("total")?,
            voted: boolean("voted")?,
        },
        "testbed_reinstated" => EventKind::TestbedReinstated {
            case_id: num("case_id")?,
            testbed: string("testbed")?,
            skipped: num("skipped")?,
        },
        "checkpoint_written" => EventKind::CheckpointWritten {
            checkpointed_shard: num("checkpointed_shard")?,
            cases_run: num("cases_run")?,
            journal_bytes: num("journal_bytes")?,
        },
        "campaign_resumed" => EventKind::CampaignResumed {
            shards_salvaged: num("shards_salvaged")?,
            shards_total: num("shards_total")?,
            dropped_bytes: num("dropped_bytes")?,
        },
        "campaign_interrupted" => EventKind::CampaignInterrupted {
            shards_completed: num("shards_completed")?,
            shards_total: num("shards_total")?,
            reason: string("reason")?,
        },
        "lease_acquired" => EventKind::LeaseAcquired {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            worker: string("worker")?,
            ttl_millis: num("ttl_millis")?,
        },
        "lease_renewed" => EventKind::LeaseRenewed {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            worker: string("worker")?,
        },
        "lease_released" => EventKind::LeaseReleased {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            worker: string("worker")?,
        },
        "lease_expired" => EventKind::LeaseExpired {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            worker: string("worker")?,
        },
        "lease_reclaimed" => EventKind::LeaseReclaimed {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            worker: string("worker")?,
            reclaims: num("reclaims")?,
        },
        "campaign_admitted" => EventKind::CampaignAdmitted {
            campaign: string("campaign")?,
            tenant: string("tenant")?,
            shards: num("shards")?,
        },
        "campaign_rejected" => EventKind::CampaignRejected {
            tenant: string("tenant")?,
            reason: string("reason")?,
            retry_after_millis: num("retry_after_millis")?,
        },
        "campaign_finished" => EventKind::CampaignFinished {
            campaign: string("campaign")?,
            outcome: string("outcome")?,
            shards_run: num("shards_run")?,
        },
        "drain_started" => EventKind::DrainStarted { active_campaigns: num("active_campaigns")? },
        "worker_spawned" => EventKind::WorkerSpawned {
            campaign: string("campaign")?,
            worker: string("worker")?,
            lease_shard: num("lease_shard")?,
            pid: num("pid")?,
        },
        "worker_died" => EventKind::WorkerDied {
            campaign: string("campaign")?,
            worker: string("worker")?,
            lease_shard: num("lease_shard")?,
            signal: num("signal")?,
        },
        "shard_poisoned" => EventKind::ShardPoisoned {
            campaign: string("campaign")?,
            lease_shard: num("lease_shard")?,
            deaths: num("deaths")?,
            poison_case: num("poison_case")?,
            signal: num("signal")?,
        },
        "pool_degraded" => EventKind::PoolDegraded {
            from_workers: num("from_workers")?,
            to_workers: num("to_workers")?,
            consecutive_deaths: num("consecutive_deaths")?,
        },
        "stage_timing" => EventKind::StageTiming {
            stage: {
                let label = string("stage")?;
                Stage::parse_label(&label).ok_or_else(|| format!("unknown stage {label:?}"))?
            },
            invocations: num("invocations")?,
            items: num("items")?,
            logical_cost: num("logical_cost")?,
            wall_nanos: opt_num("wall_nanos")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(Event { clock, kind })
}

impl Event {
    /// Parses one JSONL line into an [`Event`] (see [`event_from_json`]).
    pub fn parse(line: &str) -> Result<Event, String> {
        event_from_json(&crate::json::parse(line)?)
    }
}

/// Escapes `s` as a JSON string literal (with quotes). Alias for the
/// shared [`crate::json::escape_string`].
pub fn json_string(s: &str) -> String {
    crate::json::escape_string(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_index_matches_all_order() {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }

    #[test]
    fn json_rendering_includes_clock_and_type() {
        let e = Event {
            clock: LogicalClock { shard: 2, seq: 7 },
            kind: EventKind::Deviation {
                case_id: 13,
                engine: "Rhino".into(),
                kind: "WrongOutput".into(),
            },
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"shard\":2,\"seq\":7,\"type\":\"deviation\""), "{j}");
        assert!(j.contains("\"engine\":\"Rhino\""));
    }

    #[test]
    fn deterministic_rendering_strips_wall_clock() {
        let e = Event {
            clock: LogicalClock { shard: 0, seq: 0 },
            kind: EventKind::StageTiming {
                stage: Stage::Differential,
                invocations: 3,
                items: 30,
                logical_cost: 30,
                wall_nanos: Some(12345),
            },
        };
        assert!(e.to_json().contains("wall_nanos"));
        assert!(!e.to_json_deterministic().contains("wall_nanos"));
        assert_eq!(e.without_wall_clock().to_json(), e.to_json_deterministic());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn every_event_kind_roundtrips_through_json() {
        let kinds = vec![
            EventKind::ShardStarted { seed: u64::MAX - 7, case_budget: 20 },
            EventKind::ShardFinished { cases_run: 20, bugs_reported: 3, wall_nanos: Some(99) },
            EventKind::ShardFinished { cases_run: 20, bugs_reported: 3, wall_nanos: None },
            EventKind::CaseGenerated {
                case_id: 1,
                base: 0,
                origin: "program-gen".into(),
                mutant: false,
            },
            EventKind::CaseRejected { base: 4, kept: true },
            EventKind::DifferentialRun { case_id: 2, testbeds: 12, outcome: "pass".into() },
            EventKind::ExecutionDeduped { case_id: 2, classes: 3, saved: 7 },
            EventKind::Deviation { case_id: 2, engine: "JSC".into(), kind: "Crash".into() },
            EventKind::BugDeduped {
                engine: "V8".into(),
                key: "V8 / eval \"x\" / Crash".into(),
                cross_shard: true,
            },
            EventKind::FaultInjected {
                case_id: 3,
                testbed: "V8 v8 [chaos]".into(),
                kind: "hang".into(),
            },
            EventKind::RunRetried { case_id: 3, testbed: "V8 v8".into(), retries: 2 },
            EventKind::TestbedQuarantined { case_id: 5, testbed: "V8 v8".into(), hard_faults: 2 },
            EventKind::QuorumDegraded {
                case_id: 6,
                strict: true,
                healthy: 4,
                total: 6,
                voted: false,
            },
            EventKind::TestbedReinstated { case_id: 9, testbed: "V8 v8".into(), skipped: 7 },
            EventKind::CheckpointWritten {
                checkpointed_shard: 1,
                cases_run: 20,
                journal_bytes: 512,
            },
            EventKind::CampaignResumed { shards_salvaged: 2, shards_total: 3, dropped_bytes: 17 },
            EventKind::CampaignInterrupted {
                shards_completed: 1,
                shards_total: 3,
                reason: "deadline".into(),
            },
            EventKind::LeaseAcquired {
                campaign: "c-0001".into(),
                lease_shard: 2,
                worker: "worker-1".into(),
                ttl_millis: 500,
            },
            EventKind::LeaseRenewed {
                campaign: "c-0001".into(),
                lease_shard: 2,
                worker: "worker-1".into(),
            },
            EventKind::LeaseReleased {
                campaign: "c-0001".into(),
                lease_shard: 2,
                worker: "worker-1".into(),
            },
            EventKind::LeaseExpired {
                campaign: "c-0001".into(),
                lease_shard: 2,
                worker: "worker-1".into(),
            },
            EventKind::LeaseReclaimed {
                campaign: "c-0001".into(),
                lease_shard: 2,
                worker: "worker-1".into(),
                reclaims: 3,
            },
            EventKind::CampaignAdmitted {
                campaign: "c-0001".into(),
                tenant: "tenant-a".into(),
                shards: 4,
            },
            EventKind::CampaignRejected {
                tenant: "tenant-b".into(),
                reason: "queue_full".into(),
                retry_after_millis: 250,
            },
            EventKind::CampaignFinished {
                campaign: "c-0001".into(),
                outcome: "completed".into(),
                shards_run: 4,
            },
            EventKind::DrainStarted { active_campaigns: 2 },
            EventKind::WorkerSpawned {
                campaign: "c-0001".into(),
                worker: "fleet-0".into(),
                lease_shard: 1,
                pid: 4242,
            },
            EventKind::WorkerDied {
                campaign: "c-0001".into(),
                worker: "fleet-0".into(),
                lease_shard: 1,
                signal: 9,
            },
            EventKind::ShardPoisoned {
                campaign: "c-0001".into(),
                lease_shard: 1,
                deaths: 3,
                poison_case: 7,
                signal: 6,
            },
            EventKind::PoolDegraded { from_workers: 4, to_workers: 2, consecutive_deaths: 6 },
            EventKind::StageTiming {
                stage: Stage::Reduction,
                invocations: 1,
                items: 2,
                logical_cost: 3,
                wall_nanos: Some(4),
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            for shard in [0, 3, MERGE_SHARD, CONTROL_SHARD, SERVICE_SHARD] {
                let e = Event { clock: LogicalClock { shard, seq: i as u64 }, kind: kind.clone() };
                let back = Event::parse(&e.to_json()).unwrap_or_else(|err| {
                    panic!("{err} for {}", e.to_json());
                });
                assert_eq!(back, e, "roundtrip of {}", e.to_json());
            }
        }
    }

    #[test]
    fn control_events_are_flagged_and_render_as_minus_two() {
        let e = Event {
            clock: LogicalClock { shard: CONTROL_SHARD, seq: 0 },
            kind: EventKind::CheckpointWritten {
                checkpointed_shard: 0,
                cases_run: 20,
                journal_bytes: 100,
            },
        };
        assert!(e.is_control());
        assert!(e.to_json().starts_with("{\"shard\":-2,"), "{}", e.to_json());
        let data = Event {
            clock: LogicalClock { shard: 1, seq: 0 },
            kind: EventKind::CaseRejected { base: 0, kept: false },
        };
        assert!(!data.is_control());
    }

    #[test]
    fn service_events_are_control_and_render_as_minus_three() {
        let e = Event {
            clock: LogicalClock { shard: SERVICE_SHARD, seq: 5 },
            kind: EventKind::LeaseAcquired {
                campaign: "c-0002".into(),
                lease_shard: 0,
                worker: "w-3".into(),
                ttl_millis: 1000,
            },
        };
        assert!(e.is_control(), "service events are excluded from determinism");
        assert!(e.to_json().starts_with("{\"shard\":-3,"), "{}", e.to_json());
        assert_eq!(Event::parse(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn merge_shard_renders_as_minus_one() {
        let e = Event {
            clock: LogicalClock { shard: MERGE_SHARD, seq: 0 },
            kind: EventKind::BugDeduped {
                engine: "V8".into(),
                key: "V8 / None / Crash".into(),
                cross_shard: true,
            },
        };
        assert!(e.to_json().starts_with("{\"shard\":-1,"), "{}", e.to_json());
    }
}
