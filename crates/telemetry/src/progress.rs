//! Live campaign progress, polled from any thread.
//!
//! A [`ProgressHandle`] is a cheap `Arc` clone over shared atomics: the
//! executor updates it as cases complete, and any other thread can call
//! [`ProgressHandle::snapshot`] while the campaign runs. Progress is
//! observability-only — it never feeds back into scheduling, so polling
//! cannot perturb the deterministic event stream or report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Default, Clone)]
struct ShardState {
    budget: u64,
    done: u64,
    bugs: u64,
    started: Option<Instant>,
    finished: Option<Instant>,
}

#[derive(Debug, Default)]
struct ProgressState {
    total_cases: AtomicU64,
    cases_done: AtomicU64,
    bugs_found: AtomicU64,
    shards_done: AtomicU64,
    shards: Mutex<Vec<ShardState>>,
}

/// A cloneable, thread-safe view of a running campaign.
///
/// Counters only ever increase within one run; [`ProgressHandle::reset`]
/// re-arms the same handle for a new run (the `Comfort` facade does this
/// per budget so handles stay valid across runs).
#[derive(Debug, Clone, Default)]
pub struct ProgressHandle {
    state: Arc<ProgressState>,
}

impl ProgressHandle {
    /// A fresh, unarmed handle (all counters zero).
    pub fn new() -> Self {
        ProgressHandle::default()
    }

    /// Re-arms the handle for a run over `shard_budgets` (cases per shard,
    /// in merge order). Zeroes every counter.
    pub fn reset(&self, shard_budgets: &[u64]) {
        let mut shards = self.state.shards.lock().expect("progress poisoned");
        *shards =
            shard_budgets.iter().map(|&b| ShardState { budget: b, ..Default::default() }).collect();
        self.state.total_cases.store(shard_budgets.iter().sum(), Ordering::Relaxed);
        self.state.cases_done.store(0, Ordering::Relaxed);
        self.state.bugs_found.store(0, Ordering::Relaxed);
        self.state.shards_done.store(0, Ordering::Relaxed);
    }

    /// Marks `shard` as started (starts its throughput clock).
    pub fn shard_started(&self, shard: usize) {
        let mut shards = self.state.shards.lock().expect("progress poisoned");
        if let Some(s) = shards.get_mut(shard) {
            s.started = Some(Instant::now());
        }
    }

    /// Records one completed case on `shard`.
    pub fn case_done(&self, shard: usize) {
        self.state.cases_done.fetch_add(1, Ordering::Relaxed);
        let mut shards = self.state.shards.lock().expect("progress poisoned");
        if let Some(s) = shards.get_mut(shard) {
            s.done += 1;
        }
    }

    /// Records one reported bug on `shard`.
    pub fn bug_found(&self, shard: usize) {
        self.state.bugs_found.fetch_add(1, Ordering::Relaxed);
        let mut shards = self.state.shards.lock().expect("progress poisoned");
        if let Some(s) = shards.get_mut(shard) {
            s.bugs += 1;
        }
    }

    /// Marks `shard` as finished (freezes its throughput clock).
    pub fn shard_finished(&self, shard: usize) {
        self.state.shards_done.fetch_add(1, Ordering::Relaxed);
        let mut shards = self.state.shards.lock().expect("progress poisoned");
        if let Some(s) = shards.get_mut(shard) {
            s.finished = Some(Instant::now());
        }
    }

    /// Cases completed so far (monotonically non-decreasing within a run).
    pub fn cases_done(&self) -> u64 {
        self.state.cases_done.load(Ordering::Relaxed)
    }

    /// Unique bugs reported so far.
    pub fn bugs_found(&self) -> u64 {
        self.state.bugs_found.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time view of the whole run.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let shards = self.state.shards.lock().expect("progress poisoned");
        let per_shard: Vec<ShardSnapshot> = shards
            .iter()
            .enumerate()
            .map(|(index, s)| {
                let elapsed = s.started.map(|start| {
                    s.finished.map_or_else(|| start.elapsed(), |end| end.duration_since(start))
                });
                let throughput = elapsed.and_then(|e| {
                    let secs = e.as_secs_f64();
                    (secs > 0.0).then(|| s.done as f64 / secs)
                });
                ShardSnapshot {
                    index,
                    case_budget: s.budget,
                    cases_done: s.done,
                    bugs_found: s.bugs,
                    finished: s.finished.is_some(),
                    throughput,
                }
            })
            .collect();
        ProgressSnapshot {
            total_cases: self.state.total_cases.load(Ordering::Relaxed),
            cases_done: self.state.cases_done.load(Ordering::Relaxed),
            bugs_found: self.state.bugs_found.load(Ordering::Relaxed),
            shards_done: self.state.shards_done.load(Ordering::Relaxed),
            shards: per_shard,
        }
    }
}

/// Point-in-time progress of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index (merge order).
    pub index: usize,
    /// The shard's case budget.
    pub case_budget: u64,
    /// Cases the shard has completed.
    pub cases_done: u64,
    /// Bugs the shard has reported.
    pub bugs_found: u64,
    /// `true` once the shard's report is in.
    pub finished: bool,
    /// Cases per wall-clock second (`None` before the shard starts).
    pub throughput: Option<f64>,
}

/// Point-in-time progress of a whole campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// The run's total case budget.
    pub total_cases: u64,
    /// Cases completed across all shards.
    pub cases_done: u64,
    /// Bugs reported across all shards.
    pub bugs_found: u64,
    /// Shards that have delivered their report.
    pub shards_done: u64,
    /// Per-shard detail, in merge order.
    pub shards: Vec<ShardSnapshot>,
}

impl ProgressSnapshot {
    /// Completed fraction of the case budget in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.total_cases == 0 {
            0.0
        } else {
            self.cases_done as f64 / self.total_cases as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let handle = ProgressHandle::new();
        handle.reset(&[10, 20]);
        handle.shard_started(0);
        handle.case_done(0);
        handle.case_done(1);
        handle.bug_found(1);
        let snap = handle.snapshot();
        assert_eq!(snap.total_cases, 30);
        assert_eq!(snap.cases_done, 2);
        assert_eq!(snap.bugs_found, 1);
        assert_eq!(snap.shards[0].cases_done, 1);
        assert_eq!(snap.shards[1].bugs_found, 1);
        assert!((snap.fraction_done() - 2.0 / 30.0).abs() < 1e-12);

        handle.reset(&[5]);
        let snap = handle.snapshot();
        assert_eq!(snap.total_cases, 5);
        assert_eq!(snap.cases_done, 0);
        assert_eq!(snap.shards.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = ProgressHandle::new();
        a.reset(&[4]);
        let b = a.clone();
        b.case_done(0);
        assert_eq!(a.cases_done(), 1);
    }

    #[test]
    fn finished_shard_freezes_throughput() {
        let handle = ProgressHandle::new();
        handle.reset(&[2]);
        handle.shard_started(0);
        handle.case_done(0);
        handle.case_done(0);
        handle.shard_finished(0);
        let snap = handle.snapshot();
        assert!(snap.shards[0].finished);
        assert_eq!(snap.shards_done, 1);
        // Throughput is measured over the frozen window (may be None only
        // if the window rounds to zero seconds — never on real work, but
        // tolerate it here).
        if let Some(t) = snap.shards[0].throughput {
            assert!(t >= 0.0);
        }
    }
}
