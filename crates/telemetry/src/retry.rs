//! Bounded retry with exponential backoff, shared across the workspace.
//!
//! [`RetryPolicy`] started life in `comfort-engines::harness` (PR 3) as the
//! transient-fault retry knob for testbed runs. The durable telemetry sink
//! needs the identical policy for write errors — a full disk should degrade
//! telemetry, never abort a campaign — so the type lives here, in the
//! dependency-free telemetry crate, and `comfort-engines` re-exports it
//! under its original path.

/// Retry policy for transient faults (testbed runs, sink writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 disables retry).
    pub max_retries: u32,
    /// Base backoff before retry `k` (sleeps `base << (k-1)` ms). Zero —
    /// the default — keeps simulated campaigns fast and deterministic in
    /// wall-clock terms.
    pub backoff_base_millis: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff_base_millis: 0 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub const NONE: RetryPolicy = RetryPolicy { max_retries: 0, backoff_base_millis: 0 };

    /// The backoff to sleep before retry `attempt` (1-based): `base <<
    /// (attempt - 1)` milliseconds, saturating.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let shift = attempt.saturating_sub(1).min(20);
        std::time::Duration::from_millis(self.backoff_base_millis.saturating_mul(1u64 << shift))
    }

    /// Runs `op` up to `1 + max_retries` times, sleeping the backoff
    /// between attempts. Returns the first `Ok`, or the last error along
    /// with the number of retries consumed.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<(T, u32), (E, u32)> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok((v, attempt)),
                Err(e) => {
                    if attempt >= self.max_retries {
                        return Err((e, attempt));
                    }
                    attempt += 1;
                    let backoff = self.backoff(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_retries_until_success() {
        let policy = RetryPolicy { max_retries: 3, backoff_base_millis: 0 };
        let mut failures = 2;
        let result = policy.run(|| {
            if failures > 0 {
                failures -= 1;
                Err("transient")
            } else {
                Ok(42)
            }
        });
        assert_eq!(result, Ok((42, 2)));
    }

    #[test]
    fn run_surfaces_the_last_error_after_exhaustion() {
        let policy = RetryPolicy { max_retries: 2, backoff_base_millis: 0 };
        let mut calls = 0;
        let result: Result<(u32, u32), _> = policy.run(|| {
            calls += 1;
            Err::<u32, _>(calls)
        });
        assert_eq!(result, Err((3, 2)), "three attempts: first + two retries");
    }

    #[test]
    fn none_never_retries() {
        let mut calls = 0;
        let result: Result<((), u32), _> = RetryPolicy::NONE.run(|| {
            calls += 1;
            Err::<(), _>("boom")
        });
        assert_eq!(result, Err(("boom", 0)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let policy = RetryPolicy { max_retries: 4, backoff_base_millis: 3 };
        assert_eq!(policy.backoff(1).as_millis(), 3);
        assert_eq!(policy.backoff(2).as_millis(), 6);
        assert_eq!(policy.backoff(3).as_millis(), 12);
    }
}
