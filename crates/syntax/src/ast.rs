//! Abstract syntax tree for the JavaScript subset COMFORT operates on.
//!
//! Every statement and expression carries a [`NodeId`] (used by the coverage
//! instrumentation in `comfort-interp` and by the test-case reducer in
//! `comfort-core`) and a [`Span`] into the original source.

/// A half-open byte range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The zero span used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };
}

/// Unique id of an AST node within one [`Program`].
///
/// Ids are assigned by the parser in pre-order; synthesized nodes start with
/// [`NodeId::DUMMY`] and gain real ids through [`Program::renumber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Placeholder id for synthesized nodes.
    pub const DUMMY: NodeId = NodeId(u32::MAX);
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A complete parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// `true` if the program starts with a `"use strict"` directive.
    pub strict: bool,
    /// Number of node ids assigned (ids are `0..node_count`).
    pub node_count: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program { body: Vec::new(), strict: false, node_count: 0 }
    }

    /// Reassigns contiguous pre-order [`NodeId`]s to every node.
    ///
    /// Call after structurally editing the tree (mutators and the reducer do).
    pub fn renumber(&mut self) {
        let mut next = 0u32;
        for stmt in &mut self.body {
            renumber_stmt(stmt, &mut next);
        }
        self.node_count = next;
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

/// Kind of a variable declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeclKind {
    /// `var`
    Var,
    /// `let`
    Let,
    /// `const`
    Const,
}

impl std::fmt::Display for DeclKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeclKind::Var => "var",
            DeclKind::Let => "let",
            DeclKind::Const => "const",
        })
    }
}

/// One `name = init` declarator.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// A function definition (declaration, expression, or arrow).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (`None` for anonymous expressions/arrows).
    pub name: Option<String>,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// `true` if the body has a `"use strict"` prologue.
    pub strict: bool,
    /// Node id of the function itself (for function coverage).
    pub id: NodeId,
    /// Source span.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The statement kind.
    pub kind: StmtKind,
}

impl Stmt {
    /// Creates a statement with dummy id/span (for synthesized code).
    pub fn synthesized(kind: StmtKind) -> Self {
        Stmt { id: NodeId::DUMMY, span: Span::DUMMY, kind }
    }
}

/// Statement kinds.
// Variant docs give each field's role via the concrete syntax; inline
// field docs would only repeat them.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `expr;`
    Expr(Expr),
    /// `var/let/const decl, decl;`
    Decl { kind: DeclKind, decls: Vec<Declarator> },
    /// `function f(...) {...}`
    FunctionDecl(Function),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `if (cond) cons else alt`
    If { cond: Expr, cons: Box<Stmt>, alt: Option<Box<Stmt>> },
    /// `while (cond) body`
    While { cond: Expr, body: Box<Stmt> },
    /// `do body while (cond);`
    DoWhile { body: Box<Stmt>, cond: Expr },
    /// `for (init; test; update) body`
    For { init: Option<Box<ForInit>>, test: Option<Expr>, update: Option<Expr>, body: Box<Stmt> },
    /// `for (decl in obj) body` / `for (decl of obj) body`
    ForInOf { kind: ForInOfKind, decl: ForTarget, object: Expr, body: Box<Stmt> },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `throw expr;`
    Throw(Expr),
    /// `try {..} catch (e) {..} finally {..}`
    Try { block: Vec<Stmt>, catch: Option<CatchClause>, finally: Option<Vec<Stmt>> },
    /// `switch (disc) { case t: ... default: ... }`
    Switch { disc: Expr, cases: Vec<SwitchCase> },
    /// `;`
    Empty,
    /// A directive prologue string such as `"use strict";`.
    Directive(String),
}

/// `for-in` vs `for-of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForInOfKind {
    /// `for (x in o)` — enumerates property keys.
    In,
    /// `for (x of o)` — iterates values.
    Of,
}

/// The loop variable of a `for-in`/`for-of`.
#[derive(Debug, Clone, PartialEq)]
pub enum ForTarget {
    /// `for (var x in …)`
    Decl(DeclKind, String),
    /// `for (x in …)` where `x` is an existing binding.
    Ident(String),
}

/// The `init` clause of a classic `for` loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (var i = 0; …)`
    Decl {
        /// `var` / `let` / `const`.
        kind: DeclKind,
        /// The declarators of the init clause.
        decls: Vec<Declarator>,
    },
    /// `for (i = 0; …)`
    Expr(Expr),
}

/// A `catch (param) { body }` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// The catch binding (`None` for ES2019 optional binding).
    pub param: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// `Some(test)` for `case test:`, `None` for `default:`.
    pub test: Option<Expr>,
    /// The arm's statements.
    pub body: Vec<Stmt>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The expression kind.
    pub kind: ExprKind,
}

impl Expr {
    /// Creates an expression with dummy id/span (for synthesized code).
    pub fn synthesized(kind: ExprKind) -> Self {
        Expr { id: NodeId::DUMMY, span: Span::DUMMY, kind }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Numeric literal (always stored as f64, like JS numbers).
    Number(f64),
    /// String literal (cooked value).
    String(String),
    /// `true` / `false`
    Bool(bool),
    /// `null`
    Null,
    /// `/pattern/flags`
    Regex {
        /// Pattern between the slashes.
        pattern: String,
        /// Trailing flag letters.
        flags: String,
    },
}

/// Property in an object literal.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectProp {
    /// Property key.
    pub key: PropKey,
    /// Property value (`None` for shorthand `{x}`).
    pub value: Option<Expr>,
}

/// Key of an object-literal property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropKey {
    /// `{ name: … }`
    Ident(String),
    /// `{ "str": … }`
    String(String),
    /// `{ 42: … }`
    Number(f64),
    /// `{ [expr]: … }`
    Computed(Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Pos,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `typeof x`
    TypeOf,
    /// `void x`
    Void,
    /// `delete x`
    Delete,
}

impl UnaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Pos => "+",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::TypeOf => "typeof",
            UnaryOp::Void => "void",
            UnaryOp::Delete => "delete",
        }
    }
}

/// Binary operators (precedence handled by the parser).
#[allow(missing_docs)] // one-to-one with the JS operator spelled in `as_str`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl,
    Shr,
    UShr,
    BitAnd,
    BitOr,
    BitXor,
    In,
    InstanceOf,
}

impl BinaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Pow => "**",
            BinaryOp::Eq => "==",
            BinaryOp::NotEq => "!=",
            BinaryOp::StrictEq => "===",
            BinaryOp::StrictNotEq => "!==",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::UShr => ">>>",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::In => "in",
            BinaryOp::InstanceOf => "instanceof",
        }
    }
}

/// `&&` / `||`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// `&&`
    And,
    /// `||`
    Or,
}

impl LogicalOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            LogicalOp::And => "&&",
            LogicalOp::Or => "||",
        }
    }
}

/// Assignment operators.
#[allow(missing_docs)] // one-to-one with the JS operator spelled in `as_str`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    UShr,
    BitAnd,
    BitOr,
    BitXor,
}

impl AssignOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
            AssignOp::UShr => ">>>=",
            AssignOp::BitAnd => "&=",
            AssignOp::BitOr => "|=",
            AssignOp::BitXor => "^=",
        }
    }
}

/// Expression kinds.
// Variant docs give each field's role via the concrete syntax; inline
// field docs would only repeat them.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Identifier reference.
    Ident(String),
    /// Literal value.
    Lit(Lit),
    /// `this`
    This,
    /// `[a, b, , c]` — `None` entries are elisions.
    Array(Vec<Option<Expr>>),
    /// `{ k: v, … }`
    Object(Vec<ObjectProp>),
    /// `function (…) {…}` or named function expression.
    Function(Function),
    /// `(a, b) => expr-or-block`
    Arrow { func: Function, expr_body: Option<Box<Expr>> },
    /// Unary operator application.
    Unary { op: UnaryOp, operand: Box<Expr> },
    /// `++x`, `x--`, …
    Update { prefix: bool, inc: bool, target: Box<Expr> },
    /// Binary operator application.
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// `&&` / `||` (short-circuit).
    Logical { op: LogicalOp, left: Box<Expr>, right: Box<Expr> },
    /// `cond ? cons : alt`
    Cond { cond: Box<Expr>, cons: Box<Expr>, alt: Box<Expr> },
    /// Assignment (`target` must be a valid assignment target).
    Assign { op: AssignOp, target: Box<Expr>, value: Box<Expr> },
    /// `a, b` (comma operator).
    Seq(Vec<Expr>),
    /// `f(args…)`
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `new F(args…)`
    New { callee: Box<Expr>, args: Vec<Expr> },
    /// `obj.prop`
    Member { object: Box<Expr>, prop: String },
    /// `obj[expr]`
    Index { object: Box<Expr>, index: Box<Expr> },
    /// `` `a${b}c` `` — alternating quasis and expressions.
    Template { quasis: Vec<String>, exprs: Vec<Expr> },
    /// `(expr)` — kept so the printer round-trips faithfully.
    Paren(Box<Expr>),
}

/// Convenience constructors for synthesized AST nodes (used by the test-data
/// mutator, the baselines, and tests).
pub mod build {
    use super::*;

    /// `name`
    pub fn ident(name: &str) -> Expr {
        Expr::synthesized(ExprKind::Ident(name.to_string()))
    }

    /// Numeric literal.
    pub fn num(v: f64) -> Expr {
        Expr::synthesized(ExprKind::Lit(Lit::Number(v)))
    }

    /// String literal.
    pub fn str(v: &str) -> Expr {
        Expr::synthesized(ExprKind::Lit(Lit::String(v.to_string())))
    }

    /// Boolean literal.
    pub fn bool(v: bool) -> Expr {
        Expr::synthesized(ExprKind::Lit(Lit::Bool(v)))
    }

    /// `null`
    pub fn null() -> Expr {
        Expr::synthesized(ExprKind::Lit(Lit::Null))
    }

    /// `undefined`
    pub fn undefined() -> Expr {
        ident("undefined")
    }

    /// `callee(args…)`
    pub fn call(callee: Expr, args: Vec<Expr>) -> Expr {
        Expr::synthesized(ExprKind::Call { callee: Box::new(callee), args })
    }

    /// `object.prop`
    pub fn member(object: Expr, prop: &str) -> Expr {
        Expr::synthesized(ExprKind::Member { object: Box::new(object), prop: prop.to_string() })
    }

    /// `var name = init;`
    pub fn var_decl(name: &str, init: Expr) -> Stmt {
        Stmt::synthesized(StmtKind::Decl {
            kind: DeclKind::Var,
            decls: vec![Declarator { name: name.to_string(), init: Some(init) }],
        })
    }

    /// `expr;`
    pub fn expr_stmt(expr: Expr) -> Stmt {
        Stmt::synthesized(StmtKind::Expr(expr))
    }
}

// ---------------------------------------------------------------------------
// Renumbering
// ---------------------------------------------------------------------------

fn assign(id: &mut NodeId, next: &mut u32) {
    *id = NodeId(*next);
    *next += 1;
}

fn renumber_stmt(stmt: &mut Stmt, next: &mut u32) {
    assign(&mut stmt.id, next);
    match &mut stmt.kind {
        StmtKind::Expr(e) | StmtKind::Throw(e) => renumber_expr(e, next),
        StmtKind::Decl { decls, .. } => {
            for d in decls {
                if let Some(init) = &mut d.init {
                    renumber_expr(init, next);
                }
            }
        }
        StmtKind::FunctionDecl(f) => renumber_function(f, next),
        StmtKind::Block(body) => body.iter_mut().for_each(|s| renumber_stmt(s, next)),
        StmtKind::If { cond, cons, alt } => {
            renumber_expr(cond, next);
            renumber_stmt(cons, next);
            if let Some(alt) = alt {
                renumber_stmt(alt, next);
            }
        }
        StmtKind::While { cond, body } => {
            renumber_expr(cond, next);
            renumber_stmt(body, next);
        }
        StmtKind::DoWhile { body, cond } => {
            renumber_stmt(body, next);
            renumber_expr(cond, next);
        }
        StmtKind::For { init, test, update, body } => {
            match init.as_deref_mut() {
                Some(ForInit::Decl { decls, .. }) => {
                    for d in decls {
                        if let Some(e) = &mut d.init {
                            renumber_expr(e, next);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => renumber_expr(e, next),
                None => {}
            }
            if let Some(t) = test {
                renumber_expr(t, next);
            }
            if let Some(u) = update {
                renumber_expr(u, next);
            }
            renumber_stmt(body, next);
        }
        StmtKind::ForInOf { object, body, .. } => {
            renumber_expr(object, next);
            renumber_stmt(body, next);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                renumber_expr(e, next);
            }
        }
        StmtKind::Try { block, catch, finally } => {
            block.iter_mut().for_each(|s| renumber_stmt(s, next));
            if let Some(c) = catch {
                c.body.iter_mut().for_each(|s| renumber_stmt(s, next));
            }
            if let Some(f) = finally {
                f.iter_mut().for_each(|s| renumber_stmt(s, next));
            }
        }
        StmtKind::Switch { disc, cases } => {
            renumber_expr(disc, next);
            for c in cases {
                if let Some(t) = &mut c.test {
                    renumber_expr(t, next);
                }
                c.body.iter_mut().for_each(|s| renumber_stmt(s, next));
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Empty | StmtKind::Directive(_) => {}
    }
}

fn renumber_function(f: &mut Function, next: &mut u32) {
    assign(&mut f.id, next);
    f.body.iter_mut().for_each(|s| renumber_stmt(s, next));
}

fn renumber_expr(expr: &mut Expr, next: &mut u32) {
    assign(&mut expr.id, next);
    match &mut expr.kind {
        ExprKind::Ident(_) | ExprKind::Lit(_) | ExprKind::This => {}
        ExprKind::Array(items) => {
            items.iter_mut().flatten().for_each(|e| renumber_expr(e, next));
        }
        ExprKind::Object(props) => {
            for p in props {
                if let PropKey::Computed(k) = &mut p.key {
                    renumber_expr(k, next);
                }
                if let Some(v) = &mut p.value {
                    renumber_expr(v, next);
                }
            }
        }
        ExprKind::Function(f) => renumber_function(f, next),
        ExprKind::Arrow { func, expr_body } => {
            assign(&mut func.id, next);
            func.body.iter_mut().for_each(|s| renumber_stmt(s, next));
            if let Some(e) = expr_body {
                renumber_expr(e, next);
            }
        }
        ExprKind::Unary { operand, .. } => renumber_expr(operand, next),
        ExprKind::Update { target, .. } => renumber_expr(target, next),
        ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
            renumber_expr(left, next);
            renumber_expr(right, next);
        }
        ExprKind::Cond { cond, cons, alt } => {
            renumber_expr(cond, next);
            renumber_expr(cons, next);
            renumber_expr(alt, next);
        }
        ExprKind::Assign { target, value, .. } => {
            renumber_expr(target, next);
            renumber_expr(value, next);
        }
        ExprKind::Seq(items) => items.iter_mut().for_each(|e| renumber_expr(e, next)),
        ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
            renumber_expr(callee, next);
            args.iter_mut().for_each(|e| renumber_expr(e, next));
        }
        ExprKind::Member { object, .. } => renumber_expr(object, next),
        ExprKind::Index { object, index } => {
            renumber_expr(object, next);
            renumber_expr(index, next);
        }
        ExprKind::Template { exprs, .. } => exprs.iter_mut().for_each(|e| renumber_expr(e, next)),
        ExprKind::Paren(inner) => renumber_expr(inner, next),
    }
}
