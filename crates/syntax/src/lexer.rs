//! Hand-written JavaScript lexer.
//!
//! Produces a full token stream up front. The `/`-as-regex-vs-division
//! ambiguity is resolved with the classic previous-token heuristic: a `/`
//! begins a regular-expression literal unless the previous significant token
//! can end an expression (identifier, literal, `)`, `]`, `++`, `--`, or a
//! keyword operand like `this`).

use crate::ast::Span;
use crate::error::SyntaxError;

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Arrow,
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Eq,
    EqEq,
    EqEqEq,
    Bang,
    BangEq,
    BangEqEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl,
    Shr,
    UShr,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    ShlEq,
    ShrEq,
    UShrEq,
    AmpEq,
    PipeEq,
    CaretEq,
}

/// Reserved words recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Var,
    Let,
    Const,
    Function,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    In,
    New,
    Delete,
    TypeOf,
    InstanceOf,
    Void,
    This,
    Null,
    True,
    False,
    Break,
    Continue,
    Throw,
    Try,
    Catch,
    Finally,
    Switch,
    Case,
    Default,
}

impl Keyword {
    fn from_word(w: &str) -> Option<Keyword> {
        Some(match w {
            "var" => Keyword::Var,
            "let" => Keyword::Let,
            "const" => Keyword::Const,
            "function" => Keyword::Function,
            "return" => Keyword::Return,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "in" => Keyword::In,
            "new" => Keyword::New,
            "delete" => Keyword::Delete,
            "typeof" => Keyword::TypeOf,
            "instanceof" => Keyword::InstanceOf,
            "void" => Keyword::Void,
            "this" => Keyword::This,
            "null" => Keyword::Null,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "throw" => Keyword::Throw,
            "try" => Keyword::Try,
            "catch" => Keyword::Catch,
            "finally" => Keyword::Finally,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            _ => return None,
        })
    }

    /// Source text of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Var => "var",
            Keyword::Let => "let",
            Keyword::Const => "const",
            Keyword::Function => "function",
            Keyword::Return => "return",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::For => "for",
            Keyword::In => "in",
            Keyword::New => "new",
            Keyword::Delete => "delete",
            Keyword::TypeOf => "typeof",
            Keyword::InstanceOf => "instanceof",
            Keyword::Void => "void",
            Keyword::This => "this",
            Keyword::Null => "null",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Throw => "throw",
            Keyword::Try => "try",
            Keyword::Catch => "catch",
            Keyword::Finally => "finally",
            Keyword::Switch => "switch",
            Keyword::Case => "case",
            Keyword::Default => "default",
        }
    }
}

/// One part of a template literal.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplatePart {
    /// Cooked literal text.
    Quasi(String),
    /// Raw source of a `${…}` substitution (parsed later by the parser).
    ExprSource(String),
}

/// Token payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (including contextual keywords like `of`).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Numeric literal.
    Number(f64),
    /// String literal (cooked).
    String(String),
    /// Regular-expression literal.
    Regex {
        /// Pattern between the slashes.
        pattern: String,
        /// Trailing flags.
        flags: String,
    },
    /// Template literal parts.
    Template(Vec<TemplatePart>),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// A token with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Source byte range.
    pub span: Span,
    /// `true` if a line terminator appeared before this token (for ASI).
    pub newline_before: bool,
}

/// Tokenizes `src` completely.
///
/// # Errors
///
/// Returns [`SyntaxError`] on any lexical error (unterminated string,
/// malformed number, invalid character, …).
pub fn tokenize(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    pos: usize,
    tokens: Vec<Token>,
    newline_pending: bool,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src, pos: 0, tokens: Vec::new(), newline_pending: false }
    }

    fn error(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError::at(msg, self.pos as u32)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
            newline_before: std::mem::take(&mut self.newline_pending),
        });
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                '0'..='9' => self.lex_number(start)?,
                '.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    self.lex_number(start)?
                }
                '"' | '\'' => self.lex_string(start)?,
                '`' => self.lex_template(start)?,
                '/' if self.regex_allowed() => self.lex_regex(start)?,
                c if is_ident_start(c) => self.lex_word(start),
                _ => self.lex_punct(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(c) if c == '\n' || c == '\r' || c == '\u{2028}' || c == '\u{2029}' => {
                    self.newline_pending = true;
                    self.bump();
                }
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            self.newline_pending = true;
                        }
                        if c == '*' && self.eat('/') {
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(self.error("unterminated block comment"));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// The previous-token heuristic for regex literals.
    fn regex_allowed(&self) -> bool {
        match self.tokens.last().map(|t| &t.kind) {
            None => true,
            Some(TokenKind::Ident(_))
            | Some(TokenKind::Number(_))
            | Some(TokenKind::String(_))
            | Some(TokenKind::Template(_))
            | Some(TokenKind::Regex { .. }) => false,
            Some(TokenKind::Keyword(k)) => {
                !matches!(k, Keyword::This | Keyword::Null | Keyword::True | Keyword::False)
            }
            Some(TokenKind::Punct(p)) => {
                !matches!(p, Punct::RParen | Punct::RBracket | Punct::PlusPlus | Punct::MinusMinus)
            }
            Some(TokenKind::Eof) => true,
        }
    }

    fn lex_word(&mut self, start: usize) {
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        let word = &self.src[start..self.pos];
        let kind = match Keyword::from_word(word) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(word.to_string()),
        };
        self.push(kind, start);
    }

    fn lex_number(&mut self, start: usize) -> Result<(), SyntaxError> {
        #[allow(clippy::needless_late_init)] // two long alternative paths
        let value;
        if self.peek() == Some('0')
            && matches!(
                self.peek2(),
                Some('x') | Some('X') | Some('b') | Some('B') | Some('o') | Some('O')
            )
        {
            self.bump();
            let radix = match self.bump() {
                Some('x') | Some('X') => 16,
                Some('b') | Some('B') => 2,
                _ => 8,
            };
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_digit(radix)) {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.error("missing digits in numeric literal"));
            }
            let digits = &self.src[digits_start..self.pos];
            value = u64::from_str_radix(digits, radix)
                .map_err(|_| self.error("numeric literal overflow"))? as f64;
        } else {
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            if self.peek() == Some('.') {
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some('e') | Some('E')) {
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    self.bump();
                }
                let exp_start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
                if self.pos == exp_start {
                    return Err(self.error("missing exponent digits"));
                }
            }
            value = self.src[start..self.pos]
                .parse::<f64>()
                .map_err(|_| self.error("malformed numeric literal"))?;
        }
        if self.peek().is_some_and(is_ident_start) {
            return Err(self.error("identifier starts immediately after numeric literal"));
        }
        self.push(TokenKind::Number(value), start);
        Ok(())
    }

    fn lex_string(&mut self, start: usize) -> Result<(), SyntaxError> {
        let quote = self.bump().expect("quote present");
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(c) if c == quote => break,
                Some('\n') => return Err(self.error("unterminated string literal")),
                Some('\\') => match self.bump() {
                    None => return Err(self.error("unterminated string literal")),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('v') => out.push('\u{b}'),
                    Some('0') => out.push('\0'),
                    Some('x') => out.push(self.hex_escape(2)?),
                    Some('u') => {
                        if self.eat('{') {
                            let mut v: u32 = 0;
                            while let Some(d) = self.peek().and_then(|c| c.to_digit(16)) {
                                v = v * 16 + d;
                                self.bump();
                            }
                            if !self.eat('}') {
                                return Err(self.error("unterminated \\u{...} escape"));
                            }
                            out.push(
                                char::from_u32(v)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        } else {
                            out.push(self.hex_escape(4)?);
                        }
                    }
                    Some('\n') => {} // line continuation
                    Some(other) => out.push(other),
                },
                Some(c) => out.push(c),
            }
        }
        self.push(TokenKind::String(out), start);
        Ok(())
    }

    fn hex_escape(&mut self, n: usize) -> Result<char, SyntaxError> {
        let mut v: u32 = 0;
        for _ in 0..n {
            let d = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| self.error("invalid hex escape"))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| self.error("invalid code point"))
    }

    fn lex_template(&mut self, start: usize) -> Result<(), SyntaxError> {
        self.bump(); // `
        let mut parts = Vec::new();
        let mut quasi = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated template literal")),
                Some('`') => break,
                Some('\\') => match self.bump() {
                    None => return Err(self.error("unterminated template literal")),
                    Some('n') => quasi.push('\n'),
                    Some('t') => quasi.push('\t'),
                    Some('r') => quasi.push('\r'),
                    Some('`') => quasi.push('`'),
                    Some('$') => quasi.push('$'),
                    Some(other) => quasi.push(other),
                },
                Some('$') if self.peek() == Some('{') => {
                    self.bump(); // {
                    parts.push(TemplatePart::Quasi(std::mem::take(&mut quasi)));
                    let expr_start = self.pos;
                    let mut depth = 1usize;
                    loop {
                        match self.bump() {
                            None => return Err(self.error("unterminated template substitution")),
                            Some('{') => depth += 1,
                            Some('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Some('"') | Some('\'') => {
                                // Skip nested string to avoid counting braces in it.
                                let q = self.src[self.pos - 1..].chars().next().expect("quote");
                                loop {
                                    match self.bump() {
                                        None => {
                                            return Err(
                                                self.error("unterminated template substitution")
                                            )
                                        }
                                        Some('\\') => {
                                            self.bump();
                                        }
                                        Some(c) if c == q => break,
                                        _ => {}
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    let expr_src = &self.src[expr_start..self.pos - 1];
                    parts.push(TemplatePart::ExprSource(expr_src.to_string()));
                }
                Some(c) => quasi.push(c),
            }
        }
        parts.push(TemplatePart::Quasi(quasi));
        self.push(TokenKind::Template(parts), start);
        Ok(())
    }

    fn lex_regex(&mut self, start: usize) -> Result<(), SyntaxError> {
        self.bump(); // /
        let mut pattern = String::new();
        let mut in_class = false;
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated regular expression")),
                Some('\n') => return Err(self.error("unterminated regular expression")),
                Some('\\') => {
                    pattern.push('\\');
                    match self.bump() {
                        None => return Err(self.error("unterminated regular expression")),
                        Some(c) => pattern.push(c),
                    }
                }
                Some('[') => {
                    in_class = true;
                    pattern.push('[');
                }
                Some(']') => {
                    in_class = false;
                    pattern.push(']');
                }
                Some('/') if !in_class => break,
                Some(c) => pattern.push(c),
            }
        }
        let flags_start = self.pos;
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        let flags = self.src[flags_start..self.pos].to_string();
        self.push(TokenKind::Regex { pattern, flags }, start);
        Ok(())
    }

    fn lex_punct(&mut self, start: usize) -> Result<(), SyntaxError> {
        use Punct::*;
        let c = self.bump().expect("char present");
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            '.' => Dot,
            ':' => Colon,
            '?' => Question,
            '~' => Tilde,
            '+' => {
                if self.eat('+') {
                    PlusPlus
                } else if self.eat('=') {
                    PlusEq
                } else {
                    Plus
                }
            }
            '-' => {
                if self.eat('-') {
                    MinusMinus
                } else if self.eat('=') {
                    MinusEq
                } else {
                    Minus
                }
            }
            '*' => {
                if self.eat('*') {
                    StarStar
                } else if self.eat('=') {
                    StarEq
                } else {
                    Star
                }
            }
            '/' => {
                if self.eat('=') {
                    SlashEq
                } else {
                    Slash
                }
            }
            '%' => {
                if self.eat('=') {
                    PercentEq
                } else {
                    Percent
                }
            }
            '=' => {
                if self.eat('=') {
                    if self.eat('=') {
                        EqEqEq
                    } else {
                        EqEq
                    }
                } else if self.eat('>') {
                    Arrow
                } else {
                    Eq
                }
            }
            '!' => {
                if self.eat('=') {
                    if self.eat('=') {
                        BangEqEq
                    } else {
                        BangEq
                    }
                } else {
                    Bang
                }
            }
            '<' => {
                if self.eat('<') {
                    if self.eat('=') {
                        ShlEq
                    } else {
                        Shl
                    }
                } else if self.eat('=') {
                    LtEq
                } else {
                    Lt
                }
            }
            '>' => {
                if self.eat('>') {
                    if self.eat('>') {
                        if self.eat('=') {
                            UShrEq
                        } else {
                            UShr
                        }
                    } else if self.eat('=') {
                        ShrEq
                    } else {
                        Shr
                    }
                } else if self.eat('=') {
                    GtEq
                } else {
                    Gt
                }
            }
            '&' => {
                if self.eat('&') {
                    AmpAmp
                } else if self.eat('=') {
                    AmpEq
                } else {
                    Amp
                }
            }
            '|' => {
                if self.eat('|') {
                    PipePipe
                } else if self.eat('=') {
                    PipeEq
                } else {
                    Pipe
                }
            }
            '^' => {
                if self.eat('=') {
                    CaretEq
                } else {
                    Caret
                }
            }
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        self.push(TokenKind::Punct(p), start);
        Ok(())
    }
}

/// `true` if `c` may start an identifier.
pub fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == '$'
}

/// `true` if `c` may continue an identifier.
pub fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("var x = 1 + 2;");
        assert_eq!(ks.len(), 8); // var x = 1 + 2 ; EOF
        assert!(matches!(ks[0], TokenKind::Keyword(Keyword::Var)));
        assert!(matches!(&ks[1], TokenKind::Ident(n) if n == "x"));
        assert!(matches!(ks[3], TokenKind::Number(n) if n == 1.0));
    }

    #[test]
    fn numbers() {
        assert!(matches!(kinds("0x10")[0], TokenKind::Number(n) if n == 16.0));
        assert!(matches!(kinds("0b101")[0], TokenKind::Number(n) if n == 5.0));
        assert!(matches!(kinds("0o17")[0], TokenKind::Number(n) if n == 15.0));
        assert!(matches!(kinds("2.75")[0], TokenKind::Number(n) if (n - 2.75).abs() < 1e-12));
        assert!(matches!(kinds("1e3")[0], TokenKind::Number(n) if n == 1000.0));
        assert!(matches!(kinds(".5")[0], TokenKind::Number(n) if n == 0.5));
        assert!(tokenize("1abc").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert!(matches!(&kinds(r#""a\nb""#)[0], TokenKind::String(s) if s == "a\nb"));
        assert!(matches!(&kinds(r"'it\'s'")[0], TokenKind::String(s) if s == "it's"));
        assert!(matches!(&kinds(r#""A""#)[0], TokenKind::String(s) if s == "A"));
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn comments_are_trivia() {
        let ks = kinds("a // comment\n/* block */ b");
        assert_eq!(ks.len(), 3);
    }

    #[test]
    fn newline_flag_for_asi() {
        let toks = tokenize("a\nb").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
    }

    #[test]
    fn regex_vs_division() {
        // After `=`, a `/` is a regex.
        let ks = kinds("x = /ab/g");
        assert!(
            matches!(&ks[2], TokenKind::Regex { pattern, flags } if pattern == "ab" && flags == "g")
        );
        // After an identifier it is division.
        let ks = kinds("x / y");
        assert!(matches!(ks[1], TokenKind::Punct(Punct::Slash)));
        // After `)` it is division.
        let ks = kinds("(a) / 2");
        assert!(matches!(ks[3], TokenKind::Punct(Punct::Slash)));
        // After `return` it is a regex.
        let ks = kinds("return /x/");
        assert!(matches!(&ks[1], TokenKind::Regex { .. }));
    }

    #[test]
    fn regex_with_class_containing_slash() {
        let ks = kinds("x = /[/]/");
        assert!(matches!(&ks[2], TokenKind::Regex { pattern, .. } if pattern == "[/]"));
    }

    #[test]
    fn template_literal() {
        let ks = kinds("`a${b}c`");
        match &ks[0] {
            TokenKind::Template(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(parts[0], TemplatePart::Quasi("a".into()));
                assert_eq!(parts[1], TemplatePart::ExprSource("b".into()));
                assert_eq!(parts[2], TemplatePart::Quasi("c".into()));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn template_with_nested_braces() {
        let ks = kinds("`v=${ {a:1}.a }`");
        match &ks[0] {
            TokenKind::Template(parts) => {
                assert_eq!(parts[1], TemplatePart::ExprSource(" {a:1}.a ".into()));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn multi_char_operators() {
        let ks = kinds("a >>>= b === c ** d");
        assert!(matches!(ks[1], TokenKind::Punct(Punct::UShrEq)));
        assert!(matches!(ks[3], TokenKind::Punct(Punct::EqEqEq)));
        assert!(matches!(ks[5], TokenKind::Punct(Punct::StarStar)));
    }

    #[test]
    fn error_on_bad_char() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("/* no end").is_err());
    }
}
