//! Syntax error type shared by the lexer and parser.

use std::error::Error;
use std::fmt;

/// A lexical or parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    offset: u32,
}

impl SyntaxError {
    /// Creates an error at byte `offset`.
    pub fn at(message: impl Into<String>, offset: u32) -> Self {
        SyntaxError { message: message.into(), offset }
    }

    /// Human-readable description (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the source where the error was detected.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// 1-based (line, column) of the error within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.offset as usize).min(src.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto.rsplit('\n').next().map_or(0, str::len) + 1;
        (line, col)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SyntaxError: {} (at byte {})", self.message, self.offset)
    }
}

impl Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col() {
        let err = SyntaxError::at("boom", 6);
        assert_eq!(err.line_col("ab\ncd\nef"), (3, 1));
        assert_eq!(SyntaxError::at("x", 1).line_col("abc"), (1, 2));
    }

    #[test]
    fn display_mentions_message() {
        let err = SyntaxError::at("unexpected token", 0);
        assert!(err.to_string().contains("unexpected token"));
    }
}
