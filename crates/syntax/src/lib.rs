#![warn(missing_docs)]

//! JavaScript front end for the COMFORT reproduction.
//!
//! This crate provides the lexer, the recursive-descent parser, the AST,
//! a precedence-aware pretty-printer, and a read-only visitor. It implements
//! the ES2015-era subset that COMFORT's generators produce and that the
//! simulated engines in `comfort-engines` execute.
//!
//! The parser doubles as the **JSHint substitute** from the paper (§4.3):
//! [`lint`] statically decides whether a generated program is syntactically
//! valid, which feeds the Figure 9 syntax-passing-rate experiment.
//!
//! # Examples
//!
//! ```
//! let src = "function foo(str, start, len) { return str.substr(start, len); }";
//! let program = comfort_syntax::parse(src)?;
//! let printed = comfort_syntax::print_program(&program);
//! // Printing then re-parsing yields the same structure.
//! assert!(comfort_syntax::parse(&printed).is_ok());
//! # Ok::<(), comfort_syntax::SyntaxError>(())
//! ```

pub mod arena;
pub mod ast;
mod error;
pub mod lexer;
mod parser;
pub mod printer;
pub mod visit;

pub use arena::{FuncProto, Node, NodeArena, NodeKind};
pub use ast::{Expr, ExprKind, Program, Stmt, StmtKind};
pub use error::SyntaxError;
pub use parser::parse;
pub use printer::{print_expr, print_program, print_stmt};

/// Statically checks `src` for syntax errors (the JSHint stand-in, §4.3).
///
/// Returns the JSHint-style verdict: `Ok(())` for syntactically valid
/// programs, the first [`SyntaxError`] otherwise.
///
/// # Errors
///
/// Returns the underlying parse error for invalid programs.
///
/// # Examples
///
/// ```
/// assert!(comfort_syntax::lint("var x = 1;").is_ok());
/// assert!(comfort_syntax::lint("var x = ;").is_err());
/// ```
pub fn lint(src: &str) -> Result<(), SyntaxError> {
    parse(src).map(drop)
}

#[cfg(test)]
mod tests {
    use super::ast::*;
    use super::*;

    fn p(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    fn roundtrip(src: &str) {
        let once = print_program(&p(src));
        let twice = print_program(&p(&once));
        assert_eq!(once, twice, "print→parse→print not stable for {src:?}");
    }

    #[test]
    fn parses_paper_figure_2() {
        let src = r#"
function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);
"#;
        let prog = p(src);
        assert_eq!(prog.body.len(), 6);
        assert!(matches!(prog.body[0].kind, StmtKind::FunctionDecl(_)));
        roundtrip(src);
    }

    #[test]
    fn parses_paper_listings() {
        // Listing 1 (defineProperty), 2 (while size--), 5 (TypedArray.set),
        // 6 (obj[property]), 7 (eval for-loop), 8 (split regex).
        for src in [
            r#"var foo = function() {
                 var arrobj = [0, 1];
                 Object.defineProperty(arrobj, "length", { value: 1, configurable: true });
               };
               foo();"#,
            "var foo = function(size) { var array = new Array(size); while (size--) { array[size] = 0; } }\nvar parameter = 904862;\nfoo(parameter);",
            "var foo = function() { var e = '123'; A = new Uint8Array(5); A.set(e); print(A); }; foo();",
            "var foo = function() { var property = true; var obj = [1,2,5]; obj[property] = 10; print(obj); print(obj[property]); }; foo();",
            "var foo = function() { var a = eval(\"for(var i = 0; i < 1; ++i)\"); }; foo();",
            "var foo = function() { var a = \"anA\".split(/^A/); print(a); }; foo();",
        ] {
            let prog = p(src);
            assert!(!prog.body.is_empty());
            roundtrip(src);
        }
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        let src = format!("{}1{};", "(".repeat(5_000), ")".repeat(5_000));
        let err = parse(&src).expect_err("pathological nesting must be rejected");
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn deep_template_tower_errors_instead_of_overflowing() {
        // Each `${` re-enters the parser through an embedded expression; the
        // depth guard must carry across that boundary (it used to reset).
        let src = format!("{}1{};", "`${".repeat(2_000), "}`".repeat(2_000));
        let err = parse(&src).expect_err("template tower must be rejected");
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let parens = format!("var x = {}1{};", "(".repeat(30), ")".repeat(30));
        assert!(parse(&parens).is_ok());
        let templates = format!("var y = {}1{};", "`${".repeat(20), "}`".repeat(20));
        assert!(parse(&templates).is_ok());
    }

    #[test]
    fn directive_prologue_sets_strict() {
        assert!(p("\"use strict\"; var x = 1;").strict);
        assert!(!p("var x = 1; \"use strict\";").strict);
        // A string expression used in arithmetic is not a directive.
        assert!(!p("\"use strict\" + f();").strict);
    }

    #[test]
    fn function_level_strict() {
        let prog = p("function f() { \"use strict\"; return 1; }");
        match &prog.body[0].kind {
            StmtKind::FunctionDecl(f) => assert!(f.strict),
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn asi_cases() {
        assert!(parse("var a = 1\nvar b = 2").is_ok());
        assert!(parse("a = 1").is_ok()); // EOF
        assert!(parse("{ a = 1 }").is_ok()); // before }
        assert!(parse("var a = 1 var b = 2").is_err()); // same line, no ;
    }

    #[test]
    fn return_asi() {
        // `return\nx` returns undefined; the `x` is a separate statement.
        let prog = p("function f() { return\n1; }");
        match &prog.body[0].kind {
            StmtKind::FunctionDecl(f) => {
                assert!(matches!(f.body[0].kind, StmtKind::Return(None)));
                assert_eq!(f.body.len(), 2);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let prog = p("x = 1 + 2 * 3;");
        let printed = print_program(&prog);
        assert!(printed.contains("1 + 2 * 3"));
        let prog = p("x = (1 + 2) * 3;");
        let printed = print_program(&prog);
        assert!(printed.contains("(1 + 2) * 3"));
    }

    #[test]
    fn pow_right_assoc() {
        let prog = p("x = 2 ** 3 ** 2;");
        // Must evaluate as 2 ** (3 ** 2); printing should preserve structure.
        roundtrip("x = 2 ** 3 ** 2;");
        match &prog.body[0].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => match &value.kind {
                    ExprKind::Binary { right, .. } => {
                        assert!(matches!(right.kind, ExprKind::Binary { .. }));
                    }
                    other => panic!("expected binary, got {other:?}"),
                },
                other => panic!("expected assign, got {other:?}"),
            },
            other => panic!("expected expr, got {other:?}"),
        }
    }

    #[test]
    fn for_variants() {
        roundtrip("for (var i = 0; i < 10; i++) { x += i; }");
        roundtrip("for (;;) { break; }");
        roundtrip("for (var k in obj) { print(k); }");
        roundtrip("for (var v of arr) { print(v); }");
        roundtrip("for (k in obj) { print(k); }");
    }

    #[test]
    fn in_operator_outside_for() {
        roundtrip("var b = \"x\" in o;");
    }

    #[test]
    fn arrow_functions() {
        roundtrip("var f = x => x + 1;");
        roundtrip("var f = (a, b) => a * b;");
        roundtrip("var f = () => { return 42; };");
        roundtrip("var f = (a) => ({ v: a });");
        // Paren expr that is NOT an arrow.
        roundtrip("var y = (a + b) * 2;");
    }

    #[test]
    fn object_literals() {
        roundtrip("var o = { a: 1, \"b c\": 2, 3: 4, [k]: 5 };");
        roundtrip("var o = { x };");
        assert!(parse("var o = { 1 };").is_err());
    }

    #[test]
    fn template_literals() {
        roundtrip("var s = `a${1 + 2}b`;");
        let prog = p("var s = `x${v}`;");
        match &prog.body[0].kind {
            StmtKind::Decl { decls, .. } => match &decls[0].init.as_ref().unwrap().kind {
                ExprKind::Template { quasis, exprs } => {
                    assert_eq!(quasis.len(), 2);
                    assert_eq!(exprs.len(), 1);
                }
                other => panic!("expected template, got {other:?}"),
            },
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn try_catch_finally() {
        roundtrip("try { f(); } catch (e) { g(e); } finally { h(); }");
        roundtrip("try { f(); } catch { g(); }");
        assert!(parse("try { f(); }").is_err());
    }

    #[test]
    fn switch_statement() {
        roundtrip("switch (x) { case 1: a(); break; default: b(); }");
        assert!(parse("switch (x) { default: a(); default: b(); }").is_err());
    }

    #[test]
    fn new_expressions() {
        roundtrip("var a = new Uint32Array(3.14);");
        roundtrip("var d = new Date();");
        roundtrip("var x = new ns.Thing(1, 2);");
        roundtrip("var y = new (getCtor())(1);");
    }

    #[test]
    fn keyword_properties() {
        roundtrip("var x = obj.default;");
        roundtrip("var y = map.delete;");
    }

    #[test]
    fn invalid_programs_rejected() {
        for bad in [
            "var = 5;",
            "function () {}", // decl needs a name
            "if (x",
            "var x = ;",
            "a +",
            "x = 1 ** ;",
            "do { } until (x);",
            "5 = x;",
            "++5;",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let src = format!("x = {}1{};", "(".repeat(500), ")".repeat(500));
        assert!(parse(&src).is_err());
    }

    #[test]
    fn node_ids_unique_and_dense() {
        let prog = p("var x = 1 + 2; function f(a) { return a * x; } print(f(3));");
        let mut seen = std::collections::HashSet::new();
        struct Ids<'a>(&'a mut std::collections::HashSet<u32>);
        impl visit::Visitor for Ids<'_> {
            fn visit_stmt(&mut self, s: &Stmt) {
                assert!(self.0.insert(s.id.0), "duplicate id {}", s.id);
            }
            fn visit_expr(&mut self, e: &Expr) {
                assert!(self.0.insert(e.id.0), "duplicate id {}", e.id);
            }
        }
        visit::walk_program(&prog, &mut Ids(&mut seen));
        assert!(seen.len() > 5);
        assert!(seen.iter().all(|&id| id < prog.node_count));
    }

    #[test]
    fn renumber_assigns_fresh_ids() {
        let mut prog = p("var x = 1;");
        prog.body.push(ast::build::expr_stmt(ast::build::call(
            ast::build::ident("print"),
            vec![ast::build::ident("x")],
        )));
        prog.renumber();
        let mut max = 0;
        struct Max<'a>(&'a mut u32);
        impl visit::Visitor for Max<'_> {
            fn visit_stmt(&mut self, s: &Stmt) {
                assert_ne!(s.id, NodeId::DUMMY);
                *self.0 = (*self.0).max(s.id.0);
            }
            fn visit_expr(&mut self, e: &Expr) {
                assert_ne!(e.id, NodeId::DUMMY);
                *self.0 = (*self.0).max(e.id.0);
            }
        }
        visit::walk_program(&prog, &mut Max(&mut max));
        assert!(max < prog.node_count);
    }

    #[test]
    fn called_api_names_collects() {
        let prog = p("var r = s.substr(0, 2); print(parseInt(\"4\"));");
        let names = visit::called_api_names(&prog);
        assert!(names.contains(&"substr".to_string()));
        assert!(names.contains(&"parseInt".to_string()));
        assert!(names.contains(&"print".to_string()));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(printer::fmt_number(5.0), "5");
        assert_eq!(printer::fmt_number(2.75), "2.75");
        assert_eq!(printer::fmt_number(f64::NAN), "NaN");
        assert_eq!(printer::fmt_number(f64::INFINITY), "Infinity");
        assert_eq!(printer::fmt_number(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(printer::fmt_number(-0.0), "0");
    }

    #[test]
    fn negative_literal_roundtrip() {
        // Synthesized negative literals print as unary expressions.
        let e = ast::build::num(-634619.0);
        let printed = print_expr(&e);
        assert!(parse(&format!("x = {printed};")).is_ok());
    }

    #[test]
    fn object_expr_statement_is_parenthesized() {
        let stmt = ast::build::expr_stmt(Expr::synthesized(ExprKind::Object(vec![])));
        let printed = print_stmt(&stmt);
        assert!(printed.starts_with('('), "got {printed}");
        assert!(parse(&printed).is_ok());
    }

    #[test]
    fn lint_matches_parse() {
        assert!(lint("var x = 1;").is_ok());
        assert!(lint("var x = ;").is_err());
    }

    #[test]
    fn duplicate_params_parse_in_sloppy_mode() {
        // Strict-mode enforcement lives in the interpreter.
        assert!(parse("function f(a, a) { return a; }").is_ok());
    }

    #[test]
    fn regex_literal_statement() {
        roundtrip("var re = /^A[0-9]+$/gi;");
    }

    #[test]
    fn comma_in_declarator_is_parenthesized() {
        let src = "var x = (1, 2);";
        roundtrip(src);
        let printed = print_program(&p(src));
        assert!(parse(&printed).is_ok());
        // Must still declare exactly one variable.
        match &p(&printed).body[0].kind {
            StmtKind::Decl { decls, .. } => assert_eq!(decls.len(), 1),
            other => panic!("expected decl, got {other:?}"),
        }
    }
}
