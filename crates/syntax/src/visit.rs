//! Read-only AST visitor.
//!
//! Used by the ECMA-guided data generator (to find API call sites), the
//! identical-bug filter (to extract called API names), and the baselines.

use crate::ast::*;

/// Visitor over statements, expressions, and functions.
///
/// Override the hooks you need; each hook is called *before* the walker
/// descends into the node's children.
pub trait Visitor {
    /// Called for every statement.
    fn visit_stmt(&mut self, _stmt: &Stmt) {}
    /// Called for every expression.
    fn visit_expr(&mut self, _expr: &Expr) {}
    /// Called for every function (declaration, expression, or arrow).
    fn visit_function(&mut self, _func: &Function) {}
}

/// Walks an entire program.
pub fn walk_program<V: Visitor>(program: &Program, v: &mut V) {
    for stmt in &program.body {
        walk_stmt(stmt, v);
    }
}

/// Walks a statement and its children.
pub fn walk_stmt<V: Visitor>(stmt: &Stmt, v: &mut V) {
    v.visit_stmt(stmt);
    match &stmt.kind {
        StmtKind::Expr(e) | StmtKind::Throw(e) => walk_expr(e, v),
        StmtKind::Decl { decls, .. } => {
            for d in decls {
                if let Some(init) = &d.init {
                    walk_expr(init, v);
                }
            }
        }
        StmtKind::FunctionDecl(f) => walk_function(f, v),
        StmtKind::Block(body) => body.iter().for_each(|s| walk_stmt(s, v)),
        StmtKind::If { cond, cons, alt } => {
            walk_expr(cond, v);
            walk_stmt(cons, v);
            if let Some(alt) = alt {
                walk_stmt(alt, v);
            }
        }
        StmtKind::While { cond, body } => {
            walk_expr(cond, v);
            walk_stmt(body, v);
        }
        StmtKind::DoWhile { body, cond } => {
            walk_stmt(body, v);
            walk_expr(cond, v);
        }
        StmtKind::For { init, test, update, body } => {
            match init.as_deref() {
                Some(ForInit::Decl { decls, .. }) => {
                    for d in decls {
                        if let Some(e) = &d.init {
                            walk_expr(e, v);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => walk_expr(e, v),
                None => {}
            }
            if let Some(t) = test {
                walk_expr(t, v);
            }
            if let Some(u) = update {
                walk_expr(u, v);
            }
            walk_stmt(body, v);
        }
        StmtKind::ForInOf { object, body, .. } => {
            walk_expr(object, v);
            walk_stmt(body, v);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk_expr(e, v);
            }
        }
        StmtKind::Try { block, catch, finally } => {
            block.iter().for_each(|s| walk_stmt(s, v));
            if let Some(c) = catch {
                c.body.iter().for_each(|s| walk_stmt(s, v));
            }
            if let Some(f) = finally {
                f.iter().for_each(|s| walk_stmt(s, v));
            }
        }
        StmtKind::Switch { disc, cases } => {
            walk_expr(disc, v);
            for c in cases {
                if let Some(t) = &c.test {
                    walk_expr(t, v);
                }
                c.body.iter().for_each(|s| walk_stmt(s, v));
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Empty | StmtKind::Directive(_) => {}
    }
}

/// Walks a function: its body statements.
pub fn walk_function<V: Visitor>(func: &Function, v: &mut V) {
    v.visit_function(func);
    func.body.iter().for_each(|s| walk_stmt(s, v));
}

/// Walks an expression and its children.
pub fn walk_expr<V: Visitor>(expr: &Expr, v: &mut V) {
    v.visit_expr(expr);
    match &expr.kind {
        ExprKind::Ident(_) | ExprKind::Lit(_) | ExprKind::This => {}
        ExprKind::Array(items) => items.iter().flatten().for_each(|e| walk_expr(e, v)),
        ExprKind::Object(props) => {
            for p in props {
                if let PropKey::Computed(k) = &p.key {
                    walk_expr(k, v);
                }
                if let Some(val) = &p.value {
                    walk_expr(val, v);
                }
            }
        }
        ExprKind::Function(f) => walk_function(f, v),
        ExprKind::Arrow { func, expr_body } => {
            v.visit_function(func);
            func.body.iter().for_each(|s| walk_stmt(s, v));
            if let Some(e) = expr_body {
                walk_expr(e, v);
            }
        }
        ExprKind::Unary { operand, .. } => walk_expr(operand, v),
        ExprKind::Update { target, .. } => walk_expr(target, v),
        ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
            walk_expr(left, v);
            walk_expr(right, v);
        }
        ExprKind::Cond { cond, cons, alt } => {
            walk_expr(cond, v);
            walk_expr(cons, v);
            walk_expr(alt, v);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr(target, v);
            walk_expr(value, v);
        }
        ExprKind::Seq(items) => items.iter().for_each(|e| walk_expr(e, v)),
        ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
            walk_expr(callee, v);
            args.iter().for_each(|e| walk_expr(e, v));
        }
        ExprKind::Member { object, .. } => walk_expr(object, v),
        ExprKind::Index { object, index } => {
            walk_expr(object, v);
            walk_expr(index, v);
        }
        ExprKind::Template { exprs, .. } => exprs.iter().for_each(|e| walk_expr(e, v)),
        ExprKind::Paren(inner) => walk_expr(inner, v),
    }
}

/// Collects the names of every API called as `recv.method(...)` or as a bare
/// `fn(...)` in `program`, e.g. `"substr"` or `"parseInt"`.
///
/// Used by the test-data generator (§3.3) and the identical-bug filter (§3.6).
pub fn called_api_names(program: &Program) -> Vec<String> {
    struct Collector {
        names: Vec<String>,
    }
    impl Visitor for Collector {
        fn visit_expr(&mut self, expr: &Expr) {
            if let ExprKind::Call { callee, .. } = &expr.kind {
                match &callee.kind {
                    ExprKind::Member { prop, .. } => self.names.push(prop.clone()),
                    ExprKind::Ident(name) => self.names.push(name.clone()),
                    _ => {}
                }
            }
        }
    }
    let mut c = Collector { names: Vec::new() };
    walk_program(program, &mut c);
    c.names
}

/// Counts every statement and expression node in `program`.
pub fn count_nodes(program: &Program) -> usize {
    struct Counter {
        n: usize,
    }
    impl Visitor for Counter {
        fn visit_stmt(&mut self, _: &Stmt) {
            self.n += 1;
        }
        fn visit_expr(&mut self, _: &Expr) {
            self.n += 1;
        }
    }
    let mut c = Counter { n: 0 };
    walk_program(program, &mut c);
    c.n
}
