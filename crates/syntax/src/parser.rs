//! Recursive-descent parser producing the [`crate::ast`] tree.
//!
//! Implements the ES2015-era subset COMFORT generates, including restricted
//! automatic semicolon insertion (a missing `;` is tolerated before `}`, at
//! end of input, or when the next token sits on a new line — the cases our
//! generators can produce).

use crate::ast::*;
use crate::error::SyntaxError;
use crate::lexer::{tokenize, Keyword, Punct, Token, TokenKind};

/// Parses a full program.
///
/// # Errors
///
/// Returns [`SyntaxError`] if `src` is not syntactically valid in the
/// supported subset.
///
/// # Examples
///
/// ```
/// let program = comfort_syntax::parse("var x = 1 + 2; print(x);").unwrap();
/// assert_eq!(program.body.len(), 2);
/// ```
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0, next_id: 0, depth: 0 };
    let (body, strict) = parser.parse_body(true)?;
    parser.expect_eof()?;
    Ok(Program { body, strict, node_count: parser.next_id })
}

const MAX_DEPTH: u32 = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    depth: u32,
}

impl Parser {
    // -- token plumbing ----------------------------------------------------

    fn tok(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn kind(&self) -> &TokenKind {
        &self.tok().kind
    }

    fn span_start(&self) -> u32 {
        self.tok().span.start
    }

    fn prev_end(&self) -> u32 {
        if self.pos == 0 {
            0
        } else {
            self.tokens[self.pos - 1].span.end
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tok().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, p: Punct) -> bool {
        matches!(self.kind(), TokenKind::Punct(q) if *q == p)
    }

    fn is_kw(&self, k: Keyword) -> bool {
        matches!(self.kind(), TokenKind::Keyword(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.is_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct, what: &str) -> Result<(), SyntaxError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SyntaxError> {
        match self.kind() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if matches!(self.kind(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error("unexpected token after program"))
        }
    }

    fn error(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError::at(msg, self.span_start())
    }

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn enter(&mut self) -> Result<(), SyntaxError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.error("nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Automatic semicolon insertion: a real `;`, or a `}` / EOF / newline.
    fn expect_semi(&mut self) -> Result<(), SyntaxError> {
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        if self.is_punct(Punct::RBrace)
            || matches!(self.kind(), TokenKind::Eof)
            || self.tok().newline_before
        {
            return Ok(());
        }
        Err(self.error("expected `;`"))
    }

    // -- statements --------------------------------------------------------

    /// Parses a statement list up to `}` or EOF; returns (body, strict).
    fn parse_body(&mut self, _top_level: bool) -> Result<(Vec<Stmt>, bool), SyntaxError> {
        let mut body = Vec::new();
        let mut strict = false;
        let mut in_prologue = true;
        while !self.is_punct(Punct::RBrace) && !matches!(self.kind(), TokenKind::Eof) {
            let stmt = self.parse_stmt()?;
            if in_prologue {
                if let StmtKind::Directive(d) = &stmt.kind {
                    if d == "use strict" {
                        strict = true;
                    }
                } else {
                    in_prologue = false;
                }
            }
            body.push(stmt);
        }
        Ok((body, strict))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, SyntaxError> {
        self.enter()?;
        let result = self.parse_stmt_inner();
        self.leave();
        result
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, SyntaxError> {
        let start = self.span_start();
        let id = self.id();
        let kind = match self.kind().clone() {
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                StmtKind::Empty
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let (body, _) = self.parse_body(false)?;
                self.expect_punct(Punct::RBrace, "`}`")?;
                StmtKind::Block(body)
            }
            TokenKind::Keyword(Keyword::Var) => self.parse_decl_stmt(DeclKind::Var)?,
            TokenKind::Keyword(Keyword::Let) => self.parse_decl_stmt(DeclKind::Let)?,
            TokenKind::Keyword(Keyword::Const) => self.parse_decl_stmt(DeclKind::Const)?,
            TokenKind::Keyword(Keyword::Function) => {
                self.bump();
                let name = self.expect_ident()?;
                let func = self.parse_function_rest(Some(name), start)?;
                StmtKind::FunctionDecl(func)
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let cond = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                let cons = Box::new(self.parse_stmt()?);
                let alt = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                StmtKind::If { cond, cons, alt }
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let cond = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                let body = Box::new(self.parse_stmt()?);
                StmtKind::While { cond, body }
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                if !self.eat_kw(Keyword::While) {
                    return Err(self.error("expected `while` after do-body"));
                }
                self.expect_punct(Punct::LParen, "`(`")?;
                let cond = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                self.expect_semi()?;
                StmtKind::DoWhile { body, cond }
            }
            TokenKind::Keyword(Keyword::For) => self.parse_for()?,
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let arg = if self.is_punct(Punct::Semi)
                    || self.is_punct(Punct::RBrace)
                    || matches!(self.kind(), TokenKind::Eof)
                    || self.tok().newline_before
                {
                    None
                } else {
                    Some(self.parse_expr(true)?)
                };
                self.expect_semi()?;
                StmtKind::Return(arg)
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_semi()?;
                StmtKind::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_semi()?;
                StmtKind::Continue
            }
            TokenKind::Keyword(Keyword::Throw) => {
                self.bump();
                if self.tok().newline_before {
                    return Err(self.error("illegal newline after throw"));
                }
                let arg = self.parse_expr(true)?;
                self.expect_semi()?;
                StmtKind::Throw(arg)
            }
            TokenKind::Keyword(Keyword::Try) => {
                self.bump();
                self.expect_punct(Punct::LBrace, "`{`")?;
                let (block, _) = self.parse_body(false)?;
                self.expect_punct(Punct::RBrace, "`}`")?;
                let catch = if self.eat_kw(Keyword::Catch) {
                    let param = if self.eat_punct(Punct::LParen) {
                        let p = self.expect_ident()?;
                        self.expect_punct(Punct::RParen, "`)`")?;
                        Some(p)
                    } else {
                        None
                    };
                    self.expect_punct(Punct::LBrace, "`{`")?;
                    let (body, _) = self.parse_body(false)?;
                    self.expect_punct(Punct::RBrace, "`}`")?;
                    Some(CatchClause { param, body })
                } else {
                    None
                };
                let finally = if self.eat_kw(Keyword::Finally) {
                    self.expect_punct(Punct::LBrace, "`{`")?;
                    let (body, _) = self.parse_body(false)?;
                    self.expect_punct(Punct::RBrace, "`}`")?;
                    Some(body)
                } else {
                    None
                };
                if catch.is_none() && finally.is_none() {
                    return Err(self.error("missing catch or finally after try"));
                }
                StmtKind::Try { block, catch, finally }
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let disc = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                self.expect_punct(Punct::LBrace, "`{`")?;
                let mut cases = Vec::new();
                let mut saw_default = false;
                while !self.eat_punct(Punct::RBrace) {
                    let test = if self.eat_kw(Keyword::Case) {
                        let t = self.parse_expr(true)?;
                        Some(t)
                    } else if self.eat_kw(Keyword::Default) {
                        if saw_default {
                            return Err(self.error("multiple default clauses"));
                        }
                        saw_default = true;
                        None
                    } else {
                        return Err(self.error("expected `case` or `default`"));
                    };
                    self.expect_punct(Punct::Colon, "`:`")?;
                    let mut body = Vec::new();
                    while !self.is_kw(Keyword::Case)
                        && !self.is_kw(Keyword::Default)
                        && !self.is_punct(Punct::RBrace)
                    {
                        body.push(self.parse_stmt()?);
                    }
                    cases.push(SwitchCase { test, body });
                }
                StmtKind::Switch { disc, cases }
            }
            TokenKind::String(s) if self.string_is_directive() => {
                self.bump();
                self.expect_semi()?;
                StmtKind::Directive(s)
            }
            _ => {
                let expr = self.parse_expr(true)?;
                self.expect_semi()?;
                StmtKind::Expr(expr)
            }
        };
        Ok(Stmt { id, span: Span::new(start, self.prev_end()), kind })
    }

    /// A string literal statement is a directive only if followed by a
    /// statement boundary (so `"a" + f();` stays an expression statement).
    fn string_is_directive(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1).map(|t| (&t.kind, t.newline_before)),
            Some((TokenKind::Punct(Punct::Semi), _))
                | Some((TokenKind::Punct(Punct::RBrace), _))
                | Some((TokenKind::Eof, _))
                | Some((_, true))
        )
    }

    fn parse_decl_stmt(&mut self, kind: DeclKind) -> Result<StmtKind, SyntaxError> {
        self.bump(); // keyword
        let decls = self.parse_declarators(true)?;
        self.expect_semi()?;
        Ok(StmtKind::Decl { kind, decls })
    }

    fn parse_declarators(&mut self, allow_in: bool) -> Result<Vec<Declarator>, SyntaxError> {
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init =
                if self.eat_punct(Punct::Eq) { Some(self.parse_assign(allow_in)?) } else { None };
            decls.push(Declarator { name, init });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    fn parse_for(&mut self) -> Result<StmtKind, SyntaxError> {
        self.bump(); // for
        self.expect_punct(Punct::LParen, "`(`")?;

        // Empty init: `for (;…`.
        if self.eat_punct(Punct::Semi) {
            return self.parse_for_rest(None);
        }

        // Declaration-form init: `for (var x …`.
        let decl_kind = if self.is_kw(Keyword::Var) {
            Some(DeclKind::Var)
        } else if self.is_kw(Keyword::Let) {
            Some(DeclKind::Let)
        } else if self.is_kw(Keyword::Const) {
            Some(DeclKind::Const)
        } else {
            None
        };
        if let Some(kind) = decl_kind {
            self.bump();
            // Might be for-in / for-of with a single undeclared name.
            if let TokenKind::Ident(name) = self.kind().clone() {
                let in_of = self.peek_in_of(1);
                if let Some(io) = in_of {
                    self.bump(); // name
                    self.bump(); // in/of
                    let object = self.parse_expr(true)?;
                    self.expect_punct(Punct::RParen, "`)`")?;
                    let body = Box::new(self.parse_stmt()?);
                    return Ok(StmtKind::ForInOf {
                        kind: io,
                        decl: ForTarget::Decl(kind, name),
                        object,
                        body,
                    });
                }
            }
            let decls = self.parse_declarators(false)?;
            self.expect_punct(Punct::Semi, "`;`")?;
            return self.parse_for_rest(Some(Box::new(ForInit::Decl { kind, decls })));
        }

        // Expression-form init; might still be `for (x in o)`.
        if let TokenKind::Ident(name) = self.kind().clone() {
            if let Some(io) = self.peek_in_of(1) {
                self.bump();
                self.bump();
                let object = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                let body = Box::new(self.parse_stmt()?);
                return Ok(StmtKind::ForInOf {
                    kind: io,
                    decl: ForTarget::Ident(name),
                    object,
                    body,
                });
            }
        }
        let init = self.parse_expr(false)?;
        // `for (expr in o)` with a complex target (e.g. member expression) is
        // not in our subset; `no_in` parsing above prevents ambiguity.
        self.expect_punct(Punct::Semi, "`;`")?;
        self.parse_for_rest(Some(Box::new(ForInit::Expr(init))))
    }

    fn peek_in_of(&self, offset: usize) -> Option<ForInOfKind> {
        match self.tokens.get(self.pos + offset).map(|t| &t.kind) {
            Some(TokenKind::Keyword(Keyword::In)) => Some(ForInOfKind::In),
            Some(TokenKind::Ident(w)) if w == "of" => Some(ForInOfKind::Of),
            _ => None,
        }
    }

    fn parse_for_rest(&mut self, init: Option<Box<ForInit>>) -> Result<StmtKind, SyntaxError> {
        let test = if self.is_punct(Punct::Semi) { None } else { Some(self.parse_expr(true)?) };
        self.expect_punct(Punct::Semi, "`;`")?;
        let update = if self.is_punct(Punct::RParen) { None } else { Some(self.parse_expr(true)?) };
        self.expect_punct(Punct::RParen, "`)`")?;
        let body = Box::new(self.parse_stmt()?);
        Ok(StmtKind::For { init, test, update, body })
    }

    fn parse_function_rest(
        &mut self,
        name: Option<String>,
        start: u32,
    ) -> Result<Function, SyntaxError> {
        let id = self.id();
        self.expect_punct(Punct::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.is_punct(Punct::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen, "`)`")?;
        self.expect_punct(Punct::LBrace, "`{`")?;
        let (body, strict) = self.parse_body(false)?;
        self.expect_punct(Punct::RBrace, "`}`")?;
        Ok(Function { name, params, body, strict, id, span: Span::new(start, self.prev_end()) })
    }

    // -- expressions -------------------------------------------------------

    /// Full expression including the comma operator.
    fn parse_expr(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        self.enter()?;
        let result = (|| {
            let start = self.span_start();
            let first = self.parse_assign(allow_in)?;
            if !self.is_punct(Punct::Comma) {
                return Ok(first);
            }
            let mut items = vec![first];
            while self.eat_punct(Punct::Comma) {
                items.push(self.parse_assign(allow_in)?);
            }
            Ok(Expr {
                id: self.id(),
                span: Span::new(start, self.prev_end()),
                kind: ExprKind::Seq(items),
            })
        })();
        self.leave();
        result
    }

    fn parse_assign(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        self.enter()?;
        let result = self.parse_assign_inner(allow_in);
        self.leave();
        result
    }

    fn parse_assign_inner(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        // Arrow function lookahead: `ident =>` or `( params ) =>`.
        if let Some(expr) = self.try_parse_arrow()? {
            return Ok(expr);
        }
        let start = self.span_start();
        let left = self.parse_cond(allow_in)?;
        let op = match self.kind() {
            TokenKind::Punct(Punct::Eq) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusEq) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusEq) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarEq) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashEq) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentEq) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::ShlEq) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrEq) => Some(AssignOp::Shr),
            TokenKind::Punct(Punct::UShrEq) => Some(AssignOp::UShr),
            TokenKind::Punct(Punct::AmpEq) => Some(AssignOp::BitAnd),
            TokenKind::Punct(Punct::PipeEq) => Some(AssignOp::BitOr),
            TokenKind::Punct(Punct::CaretEq) => Some(AssignOp::BitXor),
            _ => None,
        };
        let Some(op) = op else { return Ok(left) };
        if !is_assign_target(&left) {
            return Err(self.error("invalid assignment target"));
        }
        self.bump();
        let value = self.parse_assign(allow_in)?;
        Ok(Expr {
            id: self.id(),
            span: Span::new(start, self.prev_end()),
            kind: ExprKind::Assign { op, target: Box::new(left), value: Box::new(value) },
        })
    }

    fn try_parse_arrow(&mut self) -> Result<Option<Expr>, SyntaxError> {
        let start = self.span_start();
        // `x => …`
        if let TokenKind::Ident(name) = self.kind().clone() {
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Punct(Punct::Arrow))
            ) {
                self.bump();
                self.bump();
                return Ok(Some(self.parse_arrow_body(vec![name], start)?));
            }
            return Ok(None);
        }
        // `( a, b ) => …` — requires a simple ident list then `) =>`.
        if self.is_punct(Punct::LParen) {
            let snapshot = self.pos;
            let saved_id = self.next_id;
            if let Some(params) = self.scan_arrow_params() {
                return Ok(Some(self.parse_arrow_body(params, start)?));
            }
            self.pos = snapshot;
            self.next_id = saved_id;
        }
        Ok(None)
    }

    /// Attempts to consume `( ident, … ) =>`; returns the params on success.
    fn scan_arrow_params(&mut self) -> Option<Vec<String>> {
        let snapshot = self.pos;
        self.bump(); // (
        let mut params = Vec::new();
        if !self.is_punct(Punct::RParen) {
            loop {
                match self.kind().clone() {
                    TokenKind::Ident(name) => {
                        params.push(name);
                        self.bump();
                    }
                    _ => {
                        self.pos = snapshot;
                        return None;
                    }
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        if !self.eat_punct(Punct::RParen) || !self.eat_punct(Punct::Arrow) {
            self.pos = snapshot;
            return None;
        }
        Some(params)
    }

    fn parse_arrow_body(&mut self, params: Vec<String>, start: u32) -> Result<Expr, SyntaxError> {
        let id = self.id();
        let fid = self.id();
        if self.eat_punct(Punct::LBrace) {
            let (body, strict) = self.parse_body(false)?;
            self.expect_punct(Punct::RBrace, "`}`")?;
            let span = Span::new(start, self.prev_end());
            let func = Function { name: None, params, body, strict, id: fid, span };
            Ok(Expr { id, span, kind: ExprKind::Arrow { func, expr_body: None } })
        } else {
            let body_expr = self.parse_assign(true)?;
            let span = Span::new(start, self.prev_end());
            let func =
                Function { name: None, params, body: Vec::new(), strict: false, id: fid, span };
            Ok(Expr {
                id,
                span,
                kind: ExprKind::Arrow { func, expr_body: Some(Box::new(body_expr)) },
            })
        }
    }

    fn parse_cond(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        let start = self.span_start();
        let cond = self.parse_binary(0, allow_in)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let cons = self.parse_assign(true)?;
        self.expect_punct(Punct::Colon, "`:`")?;
        let alt = self.parse_assign(allow_in)?;
        Ok(Expr {
            id: self.id(),
            span: Span::new(start, self.prev_end()),
            kind: ExprKind::Cond { cond: Box::new(cond), cons: Box::new(cons), alt: Box::new(alt) },
        })
    }

    fn binary_op(&self, allow_in: bool) -> Option<(u8, BinOrLogical)> {
        use BinaryOp::*;
        let (bp, op) = match self.kind() {
            TokenKind::Punct(Punct::PipePipe) => (1, BinOrLogical::Logical(LogicalOp::Or)),
            TokenKind::Punct(Punct::AmpAmp) => (2, BinOrLogical::Logical(LogicalOp::And)),
            TokenKind::Punct(Punct::Pipe) => (3, BinOrLogical::Binary(BitOr)),
            TokenKind::Punct(Punct::Caret) => (4, BinOrLogical::Binary(BitXor)),
            TokenKind::Punct(Punct::Amp) => (5, BinOrLogical::Binary(BitAnd)),
            TokenKind::Punct(Punct::EqEq) => (6, BinOrLogical::Binary(Eq)),
            TokenKind::Punct(Punct::BangEq) => (6, BinOrLogical::Binary(NotEq)),
            TokenKind::Punct(Punct::EqEqEq) => (6, BinOrLogical::Binary(StrictEq)),
            TokenKind::Punct(Punct::BangEqEq) => (6, BinOrLogical::Binary(StrictNotEq)),
            TokenKind::Punct(Punct::Lt) => (7, BinOrLogical::Binary(Lt)),
            TokenKind::Punct(Punct::LtEq) => (7, BinOrLogical::Binary(LtEq)),
            TokenKind::Punct(Punct::Gt) => (7, BinOrLogical::Binary(Gt)),
            TokenKind::Punct(Punct::GtEq) => (7, BinOrLogical::Binary(GtEq)),
            TokenKind::Keyword(Keyword::InstanceOf) => (7, BinOrLogical::Binary(InstanceOf)),
            TokenKind::Keyword(Keyword::In) if allow_in => (7, BinOrLogical::Binary(In)),
            TokenKind::Punct(Punct::Shl) => (8, BinOrLogical::Binary(Shl)),
            TokenKind::Punct(Punct::Shr) => (8, BinOrLogical::Binary(Shr)),
            TokenKind::Punct(Punct::UShr) => (8, BinOrLogical::Binary(UShr)),
            TokenKind::Punct(Punct::Plus) => (9, BinOrLogical::Binary(Add)),
            TokenKind::Punct(Punct::Minus) => (9, BinOrLogical::Binary(Sub)),
            TokenKind::Punct(Punct::Star) => (10, BinOrLogical::Binary(Mul)),
            TokenKind::Punct(Punct::Slash) => (10, BinOrLogical::Binary(Div)),
            TokenKind::Punct(Punct::Percent) => (10, BinOrLogical::Binary(Rem)),
            TokenKind::Punct(Punct::StarStar) => (11, BinOrLogical::Binary(Pow)),
            _ => return None,
        };
        Some((bp, op))
    }

    fn parse_binary(&mut self, min_bp: u8, allow_in: bool) -> Result<Expr, SyntaxError> {
        self.enter()?;
        let result = (|| {
            let start = self.span_start();
            let mut left = self.parse_unary(allow_in)?;
            while let Some((bp, op)) = self.binary_op(allow_in) {
                if bp < min_bp {
                    break;
                }
                self.bump();
                // `**` is right-associative; everything else left.
                let next_bp = if bp == 11 { bp } else { bp + 1 };
                let right = self.parse_binary(next_bp, allow_in)?;
                let kind = match op {
                    BinOrLogical::Binary(op) => {
                        ExprKind::Binary { op, left: Box::new(left), right: Box::new(right) }
                    }
                    BinOrLogical::Logical(op) => {
                        ExprKind::Logical { op, left: Box::new(left), right: Box::new(right) }
                    }
                };
                left = Expr { id: self.id(), span: Span::new(start, self.prev_end()), kind };
            }
            Ok(left)
        })();
        self.leave();
        result
    }

    fn parse_unary(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        self.enter()?;
        let result = self.parse_unary_inner(allow_in);
        self.leave();
        result
    }

    fn parse_unary_inner(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        let start = self.span_start();
        let op = match self.kind() {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Pos),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Keyword(Keyword::TypeOf) => Some(UnaryOp::TypeOf),
            TokenKind::Keyword(Keyword::Void) => Some(UnaryOp::Void),
            TokenKind::Keyword(Keyword::Delete) => Some(UnaryOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary(allow_in)?;
            return Ok(Expr {
                id: self.id(),
                span: Span::new(start, self.prev_end()),
                kind: ExprKind::Unary { op, operand: Box::new(operand) },
            });
        }
        if self.is_punct(Punct::PlusPlus) || self.is_punct(Punct::MinusMinus) {
            let inc = self.is_punct(Punct::PlusPlus);
            self.bump();
            let target = self.parse_unary(allow_in)?;
            if !is_assign_target(&target) {
                return Err(self.error("invalid increment/decrement target"));
            }
            return Ok(Expr {
                id: self.id(),
                span: Span::new(start, self.prev_end()),
                kind: ExprKind::Update { prefix: true, inc, target: Box::new(target) },
            });
        }
        let mut expr = self.parse_postfix(allow_in)?;
        // Postfix update: no newline allowed between operand and operator.
        if (self.is_punct(Punct::PlusPlus) || self.is_punct(Punct::MinusMinus))
            && !self.tok().newline_before
        {
            if !is_assign_target(&expr) {
                return Err(self.error("invalid increment/decrement target"));
            }
            let inc = self.is_punct(Punct::PlusPlus);
            self.bump();
            expr = Expr {
                id: self.id(),
                span: Span::new(start, self.prev_end()),
                kind: ExprKind::Update { prefix: false, inc, target: Box::new(expr) },
            };
        }
        Ok(expr)
    }

    /// Member/call chain on top of a primary expression.
    fn parse_postfix(&mut self, _allow_in: bool) -> Result<Expr, SyntaxError> {
        let start = self.span_start();
        let mut expr =
            if self.is_kw(Keyword::New) { self.parse_new()? } else { self.parse_primary()? };
        loop {
            if self.eat_punct(Punct::Dot) {
                let prop = self.parse_property_name()?;
                expr = Expr {
                    id: self.id(),
                    span: Span::new(start, self.prev_end()),
                    kind: ExprKind::Member { object: Box::new(expr), prop },
                };
            } else if self.eat_punct(Punct::LBracket) {
                let index = self.parse_expr(true)?;
                self.expect_punct(Punct::RBracket, "`]`")?;
                expr = Expr {
                    id: self.id(),
                    span: Span::new(start, self.prev_end()),
                    kind: ExprKind::Index { object: Box::new(expr), index: Box::new(index) },
                };
            } else if self.is_punct(Punct::LParen) {
                let args = self.parse_args()?;
                expr = Expr {
                    id: self.id(),
                    span: Span::new(start, self.prev_end()),
                    kind: ExprKind::Call { callee: Box::new(expr), args },
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_new(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span_start();
        self.bump(); // new
        self.enter()?;
        let callee = if self.is_kw(Keyword::New) { self.parse_new() } else { self.parse_primary() };
        self.leave();
        let mut callee = callee?;
        // Member accesses bind tighter than the `new` arguments.
        loop {
            if self.eat_punct(Punct::Dot) {
                let prop = self.parse_property_name()?;
                callee = Expr {
                    id: self.id(),
                    span: Span::new(start, self.prev_end()),
                    kind: ExprKind::Member { object: Box::new(callee), prop },
                };
            } else if self.eat_punct(Punct::LBracket) {
                let index = self.parse_expr(true)?;
                self.expect_punct(Punct::RBracket, "`]`")?;
                callee = Expr {
                    id: self.id(),
                    span: Span::new(start, self.prev_end()),
                    kind: ExprKind::Index { object: Box::new(callee), index: Box::new(index) },
                };
            } else {
                break;
            }
        }
        let args = if self.is_punct(Punct::LParen) { self.parse_args()? } else { Vec::new() };
        Ok(Expr {
            id: self.id(),
            span: Span::new(start, self.prev_end()),
            kind: ExprKind::New { callee: Box::new(callee), args },
        })
    }

    /// `.prop` names may be keywords (`obj.default`, `obj.in`).
    fn parse_property_name(&mut self) -> Result<String, SyntaxError> {
        match self.kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            TokenKind::Keyword(k) => {
                self.bump();
                Ok(k.as_str().to_string())
            }
            _ => Err(self.error("expected property name")),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>, SyntaxError> {
        self.expect_punct(Punct::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.is_punct(Punct::RParen) {
            loop {
                args.push(self.parse_assign(true)?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen, "`)`")?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span_start();
        let id = self.id();
        let kind = match self.kind().clone() {
            TokenKind::Number(n) => {
                self.bump();
                ExprKind::Lit(Lit::Number(n))
            }
            TokenKind::String(s) => {
                self.bump();
                ExprKind::Lit(Lit::String(s))
            }
            TokenKind::Regex { pattern, flags } => {
                self.bump();
                ExprKind::Lit(Lit::Regex { pattern, flags })
            }
            TokenKind::Template(parts) => {
                self.bump();
                let mut quasis = Vec::new();
                let mut exprs = Vec::new();
                for part in parts {
                    match part {
                        crate::lexer::TemplatePart::Quasi(q) => quasis.push(q),
                        crate::lexer::TemplatePart::ExprSource(src) => {
                            let sub = parse_embedded_expr(&src, self.depth)
                                .map_err(|e| self.error(e.message().to_string()))?;
                            exprs.push(sub);
                        }
                    }
                }
                ExprKind::Template { quasis, exprs }
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                ExprKind::Lit(Lit::Bool(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                ExprKind::Lit(Lit::Bool(false))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                ExprKind::Lit(Lit::Null)
            }
            TokenKind::Keyword(Keyword::This) => {
                self.bump();
                ExprKind::This
            }
            TokenKind::Keyword(Keyword::Function) => {
                self.bump();
                let name = match self.kind().clone() {
                    TokenKind::Ident(n) => {
                        self.bump();
                        Some(n)
                    }
                    _ => None,
                };
                let func = self.parse_function_rest(name, start)?;
                ExprKind::Function(func)
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Ident(name)
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.parse_expr(true)?;
                self.expect_punct(Punct::RParen, "`)`")?;
                ExprKind::Paren(Box::new(inner))
            }
            TokenKind::Punct(Punct::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                while !self.is_punct(Punct::RBracket) {
                    if self.is_punct(Punct::Comma) {
                        items.push(None); // elision
                        self.bump();
                        continue;
                    }
                    items.push(Some(self.parse_assign(true)?));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RBracket, "`]`")?;
                ExprKind::Array(items)
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let mut props = Vec::new();
                while !self.is_punct(Punct::RBrace) {
                    let key = match self.kind().clone() {
                        TokenKind::Ident(n) => {
                            self.bump();
                            PropKey::Ident(n)
                        }
                        TokenKind::Keyword(k) => {
                            self.bump();
                            PropKey::Ident(k.as_str().to_string())
                        }
                        TokenKind::String(s) => {
                            self.bump();
                            PropKey::String(s)
                        }
                        TokenKind::Number(n) => {
                            self.bump();
                            PropKey::Number(n)
                        }
                        TokenKind::Punct(Punct::LBracket) => {
                            self.bump();
                            let k = self.parse_assign(true)?;
                            self.expect_punct(Punct::RBracket, "`]`")?;
                            PropKey::Computed(Box::new(k))
                        }
                        _ => return Err(self.error("expected property key")),
                    };
                    let value = if self.eat_punct(Punct::Colon) {
                        Some(self.parse_assign(true)?)
                    } else {
                        // Shorthand `{ x }` — only valid for ident keys.
                        match &key {
                            PropKey::Ident(_) => None,
                            _ => return Err(self.error("expected `:` after property key")),
                        }
                    };
                    props.push(ObjectProp { key, value });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RBrace, "`}`")?;
                ExprKind::Object(props)
            }
            TokenKind::Eof => return Err(self.error("unexpected end of input")),
            other => return Err(self.error(format!("unexpected token {other:?}"))),
        };
        Ok(Expr { id, span: Span::new(start, self.prev_end()), kind })
    }
}

/// Parses the source of a template substitution into an expression. The
/// caller's nesting depth carries over so `` `${`${…}`}` `` towers cannot
/// reset the guard and overflow the stack.
fn parse_embedded_expr(src: &str, depth: u32) -> Result<Expr, SyntaxError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0, next_id: 0, depth };
    let expr = parser.parse_expr(true)?;
    parser.expect_eof()?;
    Ok(expr)
}

enum BinOrLogical {
    Binary(BinaryOp),
    Logical(LogicalOp),
}

fn is_assign_target(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index { .. } => true,
        ExprKind::Paren(inner) => is_assign_target(inner),
        _ => false,
    }
}
