//! Arena-flattened AST: compact 16-byte node headers over typed data pools.
//!
//! [`NodeArena`] is the cache-friendly execution encoding of a [`Program`]:
//! every statement and expression becomes one fixed-size [`Node`] whose
//! operands (`a`/`b`/`c`) index other nodes, the interned atom table, the
//! number pool, or variable-length records in the `extra` pool. The arena is
//! built once per program by [`NodeArena::build`] and is immutable and
//! `Send + Sync` afterwards (atoms are `Arc<str>`), so one arena can be
//! shared read-only across every testbed of a differential run.
//!
//! The flattening is 1:1 and lossless for execution purposes: each arena
//! node keeps the original [`NodeId`] of the AST node it lowers (in the
//! parallel `ids` pool), which is what keeps coverage maps bit-identical
//! between the tree-walking evaluator and the bytecode VM downstream.
//! Function bodies additionally carry precomputed hoisting lists whose order
//! matches the evaluator's `var`/function-declaration collection exactly.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::*;

/// Sentinel operand meaning "absent" (no node / no atom / no payload).
pub const NONE: u32 = u32::MAX;

/// Discriminant of an arena node. Statement kinds first, then expressions;
/// the numbering is private to the arena and never serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // one-to-one with `StmtKind` / `ExprKind` variants
pub enum NodeKind {
    // -- statements --
    ExprStmt,
    Decl,
    FunctionDecl,
    Block,
    If,
    While,
    DoWhile,
    For,
    ForInOf,
    Return,
    Break,
    Continue,
    Throw,
    Try,
    Switch,
    Empty,
    Directive,
    // -- expressions --
    Ident,
    Number,
    Str,
    Bool,
    Null,
    Regex,
    This,
    Array,
    Object,
    Function,
    Arrow,
    Unary,
    Update,
    Binary,
    Logical,
    Cond,
    Assign,
    Seq,
    Call,
    New,
    Member,
    Index,
    Template,
    Paren,
}

/// One flattened AST node: a kind, an 8-bit flag field, and three 32-bit
/// operands. 16 bytes, so a whole program's nodes pack into a few cache
/// lines instead of a pointer graph.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// What this node is.
    pub kind: NodeKind,
    /// Kind-specific small immediate (operator code, decl kind, bool value).
    pub flags: u8,
    /// First operand (meaning depends on `kind`).
    pub a: u32,
    /// Second operand.
    pub b: u32,
    /// Third operand.
    pub c: u32,
}

/// `Ident` flag values for the names the evaluator special-cases before any
/// environment lookup.
pub mod ident_flags {
    /// Ordinary identifier.
    pub const PLAIN: u8 = 0;
    /// `undefined`
    pub const UNDEFINED: u8 = 1;
    /// `NaN`
    pub const NAN: u8 = 2;
    /// `Infinity`
    pub const INFINITY: u8 = 3;
}

/// A function lowered into the arena: parameter/body ranges plus the
/// precomputed hoisting lists for its body.
#[derive(Debug, Clone, Copy)]
pub struct FuncProto {
    /// Name atom, or [`NONE`] for anonymous functions/arrows.
    pub name: u32,
    /// Parameter name atoms: `(start, len)` into `extra`.
    pub params: (u32, u32),
    /// Body statement nodes: `(start, len)` into `extra`.
    pub body: (u32, u32),
    /// `true` if the body has a `"use strict"` prologue.
    pub strict: bool,
    /// `true` for arrow functions.
    pub is_arrow: bool,
    /// Original [`NodeId`] of the function (function coverage key).
    pub id: u32,
    /// Expression body node for `x => expr` arrows, or [`NONE`].
    pub expr_body: u32,
    /// Hoisted `var` name atoms, in evaluator collection order.
    pub hoist_vars: (u32, u32),
    /// Hoisted function declarations (func-proto indices), in order.
    pub hoist_funcs: (u32, u32),
}

/// The arena: node headers plus typed data pools.
#[derive(Debug)]
pub struct NodeArena {
    /// Fixed-size node headers.
    pub nodes: Vec<Node>,
    /// Original AST [`NodeId`] of each node (parallel to `nodes`).
    pub ids: Vec<u32>,
    /// Interned strings (identifiers, literals, property names). `Arc` so
    /// the arena is `Send + Sync` and shareable across worker threads.
    pub atoms: Vec<Arc<str>>,
    /// Number-literal pool.
    pub numbers: Vec<f64>,
    /// Variable-length operand records (child lists, decl pairs, …).
    pub extra: Vec<u32>,
    /// Function table.
    pub funcs: Vec<FuncProto>,
    /// Top-level statement nodes: `(start, len)` into `extra`.
    pub top_body: (u32, u32),
    /// Top-level hoisted `var` atoms.
    pub top_hoist_vars: (u32, u32),
    /// Top-level hoisted function declarations.
    pub top_hoist_funcs: (u32, u32),
    /// `true` if the program opens with `"use strict"`.
    pub strict: bool,
}

impl NodeArena {
    /// Flattens `program` into a fresh arena.
    pub fn build(program: &Program) -> NodeArena {
        let mut b = Builder::default();
        let top: Vec<u32> = program.body.iter().map(|s| b.stmt(s)).collect();
        let top_body = b.list(&top);
        let (vars, funcs) = b.arena_hoist_lists(&top);
        let top_hoist_vars = b.list(&vars);
        let top_hoist_funcs = b.list(&funcs);
        NodeArena {
            nodes: b.nodes,
            ids: b.ids,
            atoms: b.atoms,
            numbers: b.numbers,
            extra: b.extra,
            funcs: b.funcs,
            top_body,
            top_hoist_vars,
            top_hoist_funcs,
            strict: program.strict,
        }
    }

    /// The node at `idx`.
    #[inline]
    pub fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// Original [`NodeId`] of the node at `idx`.
    #[inline]
    pub fn node_id(&self, idx: u32) -> NodeId {
        NodeId(self.ids[idx as usize])
    }

    /// The interned atom `idx`.
    #[inline]
    pub fn atom(&self, idx: u32) -> &str {
        &self.atoms[idx as usize]
    }

    /// The number-pool entry `idx`.
    #[inline]
    pub fn number(&self, idx: u32) -> f64 {
        self.numbers[idx as usize]
    }

    /// An `extra`-pool slice for a `(start, len)` range.
    #[inline]
    pub fn slice(&self, range: (u32, u32)) -> &[u32] {
        &self.extra[range.0 as usize..(range.0 + range.1) as usize]
    }

    /// Approximate resident size in bytes (diagnostics / benchmarks).
    pub fn byte_size(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.ids.len() * 4
            + self.extra.len() * 4
            + self.numbers.len() * 8
            + self.funcs.len() * std::mem::size_of::<FuncProto>()
            + self.atoms.iter().map(|a| a.len()).sum::<usize>()
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<Node>,
    ids: Vec<u32>,
    atoms: Vec<Arc<str>>,
    atom_map: HashMap<Arc<str>, u32>,
    numbers: Vec<f64>,
    extra: Vec<u32>,
    funcs: Vec<FuncProto>,
}

impl Builder {
    fn push(&mut self, id: NodeId, kind: NodeKind, flags: u8, a: u32, b: u32, c: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { kind, flags, a, b, c });
        self.ids.push(id.0);
        idx
    }

    fn atom(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.atom_map.get(s) {
            return idx;
        }
        let idx = self.atoms.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.atoms.push(Arc::clone(&arc));
        self.atom_map.insert(arc, idx);
        idx
    }

    fn number(&mut self, n: f64) -> u32 {
        // Number literals are few per program; no interning needed.
        let idx = self.numbers.len() as u32;
        self.numbers.push(n);
        idx
    }

    fn list(&mut self, items: &[u32]) -> (u32, u32) {
        let start = self.extra.len() as u32;
        self.extra.extend_from_slice(items);
        (start, items.len() as u32)
    }

    fn decl_kind_code(kind: DeclKind) -> u8 {
        match kind {
            DeclKind::Var => 0,
            DeclKind::Let => 1,
            DeclKind::Const => 2,
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> u32 {
        let id = stmt.id;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let e = self.expr(e);
                self.push(id, NodeKind::ExprStmt, 0, e, NONE, NONE)
            }
            StmtKind::Decl { kind, decls } => {
                let mut pairs = Vec::with_capacity(decls.len() * 2);
                for d in decls {
                    let name = self.atom(&d.name);
                    let init = match &d.init {
                        Some(e) => self.expr(e),
                        None => NONE,
                    };
                    pairs.push(name);
                    pairs.push(init);
                }
                let (start, _) = self.list(&pairs);
                self.push(
                    id,
                    NodeKind::Decl,
                    Self::decl_kind_code(*kind),
                    start,
                    decls.len() as u32,
                    NONE,
                )
            }
            StmtKind::FunctionDecl(f) => {
                let fidx = self.function(f, false, None);
                self.push(id, NodeKind::FunctionDecl, 0, fidx, NONE, NONE)
            }
            StmtKind::Block(body) => {
                let stmts: Vec<u32> = body.iter().map(|s| self.stmt(s)).collect();
                let (start, len) = self.list(&stmts);
                self.push(id, NodeKind::Block, 0, start, len, NONE)
            }
            StmtKind::If { cond, cons, alt } => {
                let cond = self.expr(cond);
                let cons = self.stmt(cons);
                let alt = match alt {
                    Some(s) => self.stmt(s),
                    None => NONE,
                };
                self.push(id, NodeKind::If, 0, cond, cons, alt)
            }
            StmtKind::While { cond, body } => {
                let cond = self.expr(cond);
                let body = self.stmt(body);
                self.push(id, NodeKind::While, 0, cond, body, NONE)
            }
            StmtKind::DoWhile { body, cond } => {
                let body = self.stmt(body);
                let cond = self.expr(cond);
                self.push(id, NodeKind::DoWhile, 0, body, cond, NONE)
            }
            StmtKind::For { init, test, update, body } => {
                // Record: [test|NONE, update|NONE, body, init_tag, payload…].
                // init_tag: 0 = none, 1 = expr (payload: node), 2/3/4 =
                // var/let/const decl (payload: ndecls, then (atom, init) pairs).
                let mut record = Vec::new();
                let (init_tag, init_payload): (u32, Vec<u32>) = match init.as_deref() {
                    None => (0, Vec::new()),
                    Some(ForInit::Expr(e)) => (1, vec![self.expr(e)]),
                    Some(ForInit::Decl { kind, decls }) => {
                        let mut payload = vec![decls.len() as u32];
                        for d in decls {
                            let name = self.atom(&d.name);
                            let init = match &d.init {
                                Some(e) => self.expr(e),
                                None => NONE,
                            };
                            payload.push(name);
                            payload.push(init);
                        }
                        (2 + u32::from(Self::decl_kind_code(*kind)), payload)
                    }
                };
                let test = match test {
                    Some(e) => self.expr(e),
                    None => NONE,
                };
                let update = match update {
                    Some(e) => self.expr(e),
                    None => NONE,
                };
                let body = self.stmt(body);
                record.extend([test, update, body, init_tag]);
                record.extend(init_payload);
                let (start, _) = self.list(&record);
                self.push(id, NodeKind::For, 0, start, NONE, NONE)
            }
            StmtKind::ForInOf { kind, decl, object, body } => {
                let object = self.expr(object);
                let body = self.stmt(body);
                let (target_code, name) = match decl {
                    ForTarget::Ident(n) => (0u8, self.atom(n)),
                    ForTarget::Decl(k, n) => (1 + Self::decl_kind_code(*k), self.atom(n)),
                };
                let of_bit = if *kind == ForInOfKind::Of { 4u8 } else { 0 };
                self.push(id, NodeKind::ForInOf, of_bit | target_code, object, body, name)
            }
            StmtKind::Return(arg) => {
                let arg = match arg {
                    Some(e) => self.expr(e),
                    None => NONE,
                };
                self.push(id, NodeKind::Return, 0, arg, NONE, NONE)
            }
            StmtKind::Break => self.push(id, NodeKind::Break, 0, NONE, NONE, NONE),
            StmtKind::Continue => self.push(id, NodeKind::Continue, 0, NONE, NONE, NONE),
            StmtKind::Throw(e) => {
                let e = self.expr(e);
                self.push(id, NodeKind::Throw, 0, e, NONE, NONE)
            }
            StmtKind::Try { block, catch, finally } => {
                // Record: [block_start, block_len, catch_tag, catch_param,
                //          catch_start, catch_len, fin_tag, fin_start, fin_len].
                let stmts: Vec<u32> = block.iter().map(|s| self.stmt(s)).collect();
                let (bs, bl) = self.list(&stmts);
                let (ctag, cparam, cs, cl) = match catch {
                    Some(clause) => {
                        let param = match &clause.param {
                            Some(p) => self.atom(p),
                            None => NONE,
                        };
                        let stmts: Vec<u32> = clause.body.iter().map(|s| self.stmt(s)).collect();
                        let (cs, cl) = self.list(&stmts);
                        (1u32, param, cs, cl)
                    }
                    None => (0, NONE, 0, 0),
                };
                let (ftag, fs, fl) = match finally {
                    Some(fin) => {
                        let stmts: Vec<u32> = fin.iter().map(|s| self.stmt(s)).collect();
                        let (fs, fl) = self.list(&stmts);
                        (1u32, fs, fl)
                    }
                    None => (0, 0, 0),
                };
                let (start, _) = self.list(&[bs, bl, ctag, cparam, cs, cl, ftag, fs, fl]);
                self.push(id, NodeKind::Try, 0, start, NONE, NONE)
            }
            StmtKind::Switch { disc, cases } => {
                let disc = self.expr(disc);
                // Per-case record: [test|NONE, body_start, body_len].
                let mut records = Vec::with_capacity(cases.len() * 3);
                for case in cases {
                    let test = match &case.test {
                        Some(e) => self.expr(e),
                        None => NONE,
                    };
                    let stmts: Vec<u32> = case.body.iter().map(|s| self.stmt(s)).collect();
                    let (cs, cl) = self.list(&stmts);
                    records.extend([test, cs, cl]);
                }
                let (start, _) = self.list(&records);
                self.push(id, NodeKind::Switch, 0, disc, start, cases.len() as u32)
            }
            StmtKind::Empty => self.push(id, NodeKind::Empty, 0, NONE, NONE, NONE),
            StmtKind::Directive(text) => {
                let atom = self.atom(text);
                self.push(id, NodeKind::Directive, 0, atom, NONE, NONE)
            }
        }
    }

    fn function(&mut self, f: &Function, is_arrow: bool, expr_body: Option<&Expr>) -> u32 {
        let name = match &f.name {
            Some(n) => self.atom(n),
            None => NONE,
        };
        let param_atoms: Vec<u32> = f.params.iter().map(|p| self.atom(p)).collect();
        let params = self.list(&param_atoms);
        let stmts: Vec<u32> = f.body.iter().map(|s| self.stmt(s)).collect();
        let body = self.list(&stmts);
        let expr_body = match expr_body {
            Some(e) => self.expr(e),
            None => NONE,
        };
        let (vars, funcs) = self.arena_hoist_lists(&stmts);
        let hoist_vars = self.list(&vars);
        let hoist_funcs = self.list(&funcs);
        let idx = self.funcs.len() as u32;
        self.funcs.push(FuncProto {
            name,
            params,
            body,
            strict: f.strict,
            is_arrow,
            id: f.id.0,
            expr_body,
            hoist_vars,
            hoist_funcs,
        });
        idx
    }

    fn expr(&mut self, expr: &Expr) -> u32 {
        let id = expr.id;
        match &expr.kind {
            ExprKind::Ident(name) => {
                let flags = match name.as_str() {
                    "undefined" => ident_flags::UNDEFINED,
                    "NaN" => ident_flags::NAN,
                    "Infinity" => ident_flags::INFINITY,
                    _ => ident_flags::PLAIN,
                };
                let atom = self.atom(name);
                self.push(id, NodeKind::Ident, flags, atom, NONE, NONE)
            }
            ExprKind::Lit(lit) => match lit {
                Lit::Number(n) => {
                    let idx = self.number(*n);
                    self.push(id, NodeKind::Number, 0, idx, NONE, NONE)
                }
                Lit::String(s) => {
                    let atom = self.atom(s);
                    self.push(id, NodeKind::Str, 0, atom, NONE, NONE)
                }
                Lit::Bool(v) => self.push(id, NodeKind::Bool, u8::from(*v), NONE, NONE, NONE),
                Lit::Null => self.push(id, NodeKind::Null, 0, NONE, NONE, NONE),
                Lit::Regex { pattern, flags } => {
                    let pattern = self.atom(pattern);
                    let flags = self.atom(flags);
                    self.push(id, NodeKind::Regex, 0, pattern, flags, NONE)
                }
            },
            ExprKind::This => self.push(id, NodeKind::This, 0, NONE, NONE, NONE),
            ExprKind::Array(items) => {
                let slots: Vec<u32> = items
                    .iter()
                    .map(|item| match item {
                        Some(e) => self.expr(e),
                        None => NONE,
                    })
                    .collect();
                let (start, len) = self.list(&slots);
                self.push(id, NodeKind::Array, 0, start, len, NONE)
            }
            ExprKind::Object(props) => {
                // Per-prop record: [key_tag, payload, value|NONE]. key_tag:
                // 0 = ident atom, 1 = string atom, 2 = number-pool index,
                // 3 = computed node.
                let mut records = Vec::with_capacity(props.len() * 3);
                for p in props {
                    let (tag, payload) = match &p.key {
                        PropKey::Ident(n) => (0u32, self.atom(n)),
                        PropKey::String(s) => (1, self.atom(s)),
                        PropKey::Number(n) => (2, self.number(*n)),
                        PropKey::Computed(e) => (3, self.expr(e)),
                    };
                    let value = match &p.value {
                        Some(v) => self.expr(v),
                        None => NONE,
                    };
                    records.extend([tag, payload, value]);
                }
                let (start, _) = self.list(&records);
                self.push(id, NodeKind::Object, 0, start, props.len() as u32, NONE)
            }
            ExprKind::Function(f) => {
                let fidx = self.function(f, false, None);
                self.push(id, NodeKind::Function, 0, fidx, NONE, NONE)
            }
            ExprKind::Arrow { func, expr_body } => {
                let fidx = self.function(func, true, expr_body.as_deref());
                self.push(id, NodeKind::Arrow, 0, fidx, NONE, NONE)
            }
            ExprKind::Unary { op, operand } => {
                let operand = self.expr(operand);
                self.push(id, NodeKind::Unary, *op as u8, operand, NONE, NONE)
            }
            ExprKind::Update { prefix, inc, target } => {
                let target = self.expr(target);
                let flags = u8::from(*inc) | (u8::from(*prefix) << 1);
                self.push(id, NodeKind::Update, flags, target, NONE, NONE)
            }
            ExprKind::Binary { op, left, right } => {
                let left = self.expr(left);
                let right = self.expr(right);
                self.push(id, NodeKind::Binary, *op as u8, left, right, NONE)
            }
            ExprKind::Logical { op, left, right } => {
                let left = self.expr(left);
                let right = self.expr(right);
                self.push(id, NodeKind::Logical, *op as u8, left, right, NONE)
            }
            ExprKind::Cond { cond, cons, alt } => {
                let cond = self.expr(cond);
                let cons = self.expr(cons);
                let alt = self.expr(alt);
                self.push(id, NodeKind::Cond, 0, cond, cons, alt)
            }
            ExprKind::Assign { op, target, value } => {
                let target = self.expr(target);
                let value = self.expr(value);
                self.push(id, NodeKind::Assign, *op as u8, target, value, NONE)
            }
            ExprKind::Seq(items) => {
                let nodes: Vec<u32> = items.iter().map(|e| self.expr(e)).collect();
                let (start, len) = self.list(&nodes);
                self.push(id, NodeKind::Seq, 0, start, len, NONE)
            }
            ExprKind::Call { callee, args } => {
                let callee = self.expr(callee);
                let argv: Vec<u32> = args.iter().map(|a| self.expr(a)).collect();
                let (start, len) = self.list(&argv);
                self.push(id, NodeKind::Call, 0, callee, start, len)
            }
            ExprKind::New { callee, args } => {
                let callee = self.expr(callee);
                let argv: Vec<u32> = args.iter().map(|a| self.expr(a)).collect();
                let (start, len) = self.list(&argv);
                self.push(id, NodeKind::New, 0, callee, start, len)
            }
            ExprKind::Member { object, prop } => {
                let object = self.expr(object);
                let prop = self.atom(prop);
                self.push(id, NodeKind::Member, 0, object, prop, NONE)
            }
            ExprKind::Index { object, index } => {
                let object = self.expr(object);
                let index = self.expr(index);
                self.push(id, NodeKind::Index, 0, object, index, NONE)
            }
            ExprKind::Template { quasis, exprs } => {
                // Layout: quasi atoms at a..a+b, expression nodes at a+b..a+b+c.
                let quasi_atoms: Vec<u32> = quasis.iter().map(|q| self.atom(q)).collect();
                let expr_nodes: Vec<u32> = exprs.iter().map(|e| self.expr(e)).collect();
                let start = self.extra.len() as u32;
                self.extra.extend_from_slice(&quasi_atoms);
                self.extra.extend_from_slice(&expr_nodes);
                self.push(
                    id,
                    NodeKind::Template,
                    0,
                    start,
                    quasi_atoms.len() as u32,
                    expr_nodes.len() as u32,
                )
            }
            ExprKind::Paren(inner) => {
                let inner = self.expr(inner);
                self.push(id, NodeKind::Paren, 0, inner, NONE, NONE)
            }
        }
    }

    /// Collects hoisted `var` atoms and function-declaration proto indices
    /// from a lowered statement list, in exactly the traversal order the
    /// tree-walking evaluator's `collect_vars` uses (vars and functions each
    /// in pre-order; `for` init declarations before the loop body).
    fn arena_hoist_lists(&self, body: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut vars = Vec::new();
        let mut funcs = Vec::new();
        for &n in body {
            self.collect_hoist(n, &mut vars, &mut funcs);
        }
        (vars, funcs)
    }

    fn collect_hoist(&self, n: u32, vars: &mut Vec<u32>, funcs: &mut Vec<u32>) {
        let node = self.nodes[n as usize];
        match node.kind {
            NodeKind::Decl if node.flags == 0 => {
                for i in 0..node.b {
                    vars.push(self.extra[(node.a + i * 2) as usize]);
                }
            }
            NodeKind::FunctionDecl => funcs.push(node.a),
            NodeKind::Block => {
                for i in 0..node.b {
                    self.collect_hoist(self.extra[(node.a + i) as usize], vars, funcs);
                }
            }
            NodeKind::If => {
                self.collect_hoist(node.b, vars, funcs);
                if node.c != NONE {
                    self.collect_hoist(node.c, vars, funcs);
                }
            }
            NodeKind::While => self.collect_hoist(node.b, vars, funcs),
            NodeKind::DoWhile => self.collect_hoist(node.a, vars, funcs),
            NodeKind::For => {
                let base = node.a as usize;
                let init_tag = self.extra[base + 3];
                if init_tag == 2 {
                    // `for (var …)` — only var-kind init decls hoist.
                    let ndecls = self.extra[base + 4];
                    for i in 0..ndecls {
                        vars.push(self.extra[base + 5 + (i * 2) as usize]);
                    }
                }
                self.collect_hoist(self.extra[base + 2], vars, funcs);
            }
            NodeKind::ForInOf => {
                if node.flags & 3 == 1 {
                    vars.push(node.c);
                }
                self.collect_hoist(node.b, vars, funcs);
            }
            NodeKind::Try => {
                let base = node.a as usize;
                let [bs, bl, ctag, _cparam, cs, cl, ftag, fs, fl] =
                    self.extra[base..base + 9].try_into().expect("try record is 9 words");
                for i in 0..bl {
                    self.collect_hoist(self.extra[(bs + i) as usize], vars, funcs);
                }
                if ctag == 1 {
                    for i in 0..cl {
                        self.collect_hoist(self.extra[(cs + i) as usize], vars, funcs);
                    }
                }
                if ftag == 1 {
                    for i in 0..fl {
                        self.collect_hoist(self.extra[(fs + i) as usize], vars, funcs);
                    }
                }
            }
            NodeKind::Switch => {
                for i in 0..node.c {
                    let rec = (node.b + i * 3) as usize;
                    let (cs, cl) = (self.extra[rec + 1], self.extra[rec + 2]);
                    for j in 0..cl {
                        self.collect_hoist(self.extra[(cs + j) as usize], vars, funcs);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn node_header_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 16);
    }

    #[test]
    fn builds_and_preserves_node_ids() {
        let program = parse("var x = 1; function f(a) { return a + x; } print(f(2));")
            .expect("test source parses");
        let arena = NodeArena::build(&program);
        assert!(!arena.nodes.is_empty());
        assert_eq!(arena.nodes.len(), arena.ids.len());
        // Every lowered node carries a real (non-dummy) pre-order id below
        // the program's node count.
        for &id in &arena.ids {
            assert!(id < program.node_count, "id {id} >= node_count {}", program.node_count);
        }
        assert_eq!(arena.funcs.len(), 1);
        assert_eq!(arena.top_body.1, 3);
    }

    #[test]
    fn atoms_are_interned() {
        let program = parse("var aa = 1; print(aa); print(aa);").expect("test source parses");
        let arena = NodeArena::build(&program);
        let count = arena.atoms.iter().filter(|a| &***a == "aa").count();
        assert_eq!(count, 1, "identifier should intern to a single atom");
    }

    #[test]
    fn hoist_lists_match_collect_order() {
        let src = "if (x) { var a = 1; } while (y) { var b = 2; } function g() {} var c;";
        let program = parse(src).expect("test source parses");
        let arena = NodeArena::build(&program);
        let vars: Vec<&str> =
            arena.slice(arena.top_hoist_vars).iter().map(|&a| arena.atom(a)).collect();
        assert_eq!(vars, ["a", "b", "c"]);
        let funcs = arena.slice(arena.top_hoist_funcs);
        assert_eq!(funcs.len(), 1);
        assert_eq!(arena.atom(arena.funcs[funcs[0] as usize].name), "g");
    }

    #[test]
    fn for_init_vars_hoist_before_body_vars() {
        let src = "for (var i = 0; i < 2; i++) { var inner = i; }";
        let program = parse(src).expect("test source parses");
        let arena = NodeArena::build(&program);
        let vars: Vec<&str> =
            arena.slice(arena.top_hoist_vars).iter().map(|&a| arena.atom(a)).collect();
        assert_eq!(vars, ["i", "inner"]);
    }

    #[test]
    fn arena_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeArena>();
    }
}
