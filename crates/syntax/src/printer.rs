//! Pretty-printer: AST → JavaScript source.
//!
//! The printer is precedence-aware, so synthesized trees (whose `Paren` nodes
//! may be absent) still print to source that re-parses to the same structure.
//! This property is checked by the round-trip property tests in
//! `tests/roundtrip.rs`.

use crate::ast::*;

/// Prints a whole program (one top-level statement per line).
pub fn print_program(program: &Program) -> String {
    let mut p = Printer::new();
    for (i, stmt) in program.body.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.stmt(stmt);
    }
    if !p.out.is_empty() {
        p.out.push('\n');
    }
    p.out
}

/// Prints a single statement.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

/// Prints a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

/// Formats an `f64` the way JavaScript's `ToString(Number)` does for the
/// values COMFORT deals in: integers print without a fraction, specials print
/// as `NaN` / `Infinity`.
pub fn fmt_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == 0.0 && n.is_sign_negative() {
        "0".to_string()
    } else if n.abs() >= 1e21 {
        format!("{n:e}").replace('e', "e+").replace("e+-", "e-")
    } else {
        format!("{n}")
    }
}

/// Escapes `s` as a double-quoted JS string literal (with quotes).
pub fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\0' => out.push_str("\\0"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer { out: String::new(), indent: 0 }
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        self.push("{");
        self.indent += 1;
        for stmt in body {
            self.nl();
            self.stmt(stmt);
        }
        self.indent -= 1;
        self.nl();
        self.push("}");
    }

    /// Prints a loop/if body: blocks get braces, single statements indent.
    fn nested(&mut self, stmt: &Stmt) {
        if let StmtKind::Block(body) = &stmt.kind {
            self.push(" ");
            self.block(body);
        } else {
            self.indent += 1;
            self.nl();
            self.stmt(stmt);
            self.indent -= 1;
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                if leading_is_ambiguous(e) {
                    self.push("(");
                    self.expr(e, 0);
                    self.push(");");
                } else {
                    self.expr(e, 0);
                    self.push(";");
                }
            }
            StmtKind::Directive(d) => {
                self.push(&quote_string(d));
                self.push(";");
            }
            StmtKind::Decl { kind, decls } => {
                self.push(&kind.to_string());
                self.push(" ");
                self.declarators(decls);
                self.push(";");
            }
            StmtKind::FunctionDecl(f) => self.function("function", f),
            StmtKind::Block(body) => self.block(body),
            StmtKind::If { cond, cons, alt } => {
                self.push("if (");
                self.expr(cond, 0);
                self.push(")");
                self.nested(cons);
                if let Some(alt) = alt {
                    if matches!(cons.kind, StmtKind::Block(_)) {
                        self.push(" else");
                    } else {
                        self.nl();
                        self.push("else");
                    }
                    if matches!(alt.kind, StmtKind::If { .. }) {
                        self.push(" ");
                        self.stmt(alt);
                    } else {
                        self.nested(alt);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                self.push("while (");
                self.expr(cond, 0);
                self.push(")");
                self.nested(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.push("do");
                self.nested(body);
                if matches!(body.kind, StmtKind::Block(_)) {
                    self.push(" while (");
                } else {
                    self.nl();
                    self.push("while (");
                }
                self.expr(cond, 0);
                self.push(");");
            }
            StmtKind::For { init, test, update, body } => {
                self.push("for (");
                match init.as_deref() {
                    Some(ForInit::Decl { kind, decls }) => {
                        self.push(&kind.to_string());
                        self.push(" ");
                        self.declarators(decls);
                    }
                    Some(ForInit::Expr(e)) => self.expr(e, 0),
                    None => {}
                }
                self.push("; ");
                if let Some(t) = test {
                    self.expr(t, 0);
                }
                self.push("; ");
                if let Some(u) = update {
                    self.expr(u, 0);
                }
                self.push(")");
                self.nested(body);
            }
            StmtKind::ForInOf { kind, decl, object, body } => {
                self.push("for (");
                match decl {
                    ForTarget::Decl(dk, name) => {
                        self.push(&dk.to_string());
                        self.push(" ");
                        self.push(name);
                    }
                    ForTarget::Ident(name) => self.push(name),
                }
                self.push(match kind {
                    ForInOfKind::In => " in ",
                    ForInOfKind::Of => " of ",
                });
                self.expr(object, 0);
                self.push(")");
                self.nested(body);
            }
            StmtKind::Return(arg) => {
                self.push("return");
                if let Some(arg) = arg {
                    self.push(" ");
                    self.expr(arg, 0);
                }
                self.push(";");
            }
            StmtKind::Break => self.push("break;"),
            StmtKind::Continue => self.push("continue;"),
            StmtKind::Throw(e) => {
                self.push("throw ");
                self.expr(e, 0);
                self.push(";");
            }
            StmtKind::Try { block, catch, finally } => {
                self.push("try ");
                self.block(block);
                if let Some(c) = catch {
                    match &c.param {
                        Some(p) => {
                            self.push(" catch (");
                            self.push(p);
                            self.push(") ");
                        }
                        None => self.push(" catch "),
                    }
                    self.block(&c.body);
                }
                if let Some(f) = finally {
                    self.push(" finally ");
                    self.block(f);
                }
            }
            StmtKind::Switch { disc, cases } => {
                self.push("switch (");
                self.expr(disc, 0);
                self.push(") {");
                self.indent += 1;
                for case in cases {
                    self.nl();
                    match &case.test {
                        Some(t) => {
                            self.push("case ");
                            self.expr(t, 0);
                            self.push(":");
                        }
                        None => self.push("default:"),
                    }
                    self.indent += 1;
                    for s in &case.body {
                        self.nl();
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.nl();
                self.push("}");
            }
            StmtKind::Empty => self.push(";"),
        }
    }

    fn declarators(&mut self, decls: &[Declarator]) {
        for (i, d) in decls.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.push(&d.name);
            if let Some(init) = &d.init {
                self.push(" = ");
                // Comma operator needs parens inside a declarator list.
                self.expr(init, prec::ASSIGN);
            }
        }
    }

    fn function(&mut self, keyword: &str, f: &Function) {
        self.push(keyword);
        if let Some(name) = &f.name {
            self.push(" ");
            self.push(name);
        }
        self.push("(");
        self.push(&f.params.join(", "));
        self.push(") ");
        self.block(&f.body);
    }

    /// Prints `expr`, parenthesizing if its precedence is below `min`.
    fn expr(&mut self, expr: &Expr, min: u8) {
        let p = precedence(expr);
        if p < min {
            self.push("(");
            self.expr_inner(expr);
            self.push(")");
        } else {
            self.expr_inner(expr);
        }
    }

    fn expr_inner(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::Ident(n) => self.push(n),
            ExprKind::This => self.push("this"),
            ExprKind::Lit(lit) => match lit {
                Lit::Number(n) => {
                    if *n < 0.0 || (n.is_sign_negative() && *n == 0.0) {
                        // Negative numeric literals do not exist in JS; print
                        // as a unary expression.
                        self.push(&format!("(-{})", fmt_number(-n)));
                    } else {
                        self.push(&fmt_number(*n));
                    }
                }
                Lit::String(s) => self.push(&quote_string(s)),
                Lit::Bool(b) => self.push(if *b { "true" } else { "false" }),
                Lit::Null => self.push("null"),
                Lit::Regex { pattern, flags } => {
                    self.push("/");
                    self.push(pattern);
                    self.push("/");
                    self.push(flags);
                }
            },
            ExprKind::Array(items) => {
                self.push("[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    if let Some(e) = item {
                        self.expr(e, prec::ASSIGN);
                    }
                }
                self.push("]");
            }
            ExprKind::Object(props) => {
                self.push("{");
                for (i, prop) in props.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    match &prop.key {
                        PropKey::Ident(n) => self.push(n),
                        PropKey::String(s) => self.push(&quote_string(s)),
                        PropKey::Number(n) => self.push(&fmt_number(*n)),
                        PropKey::Computed(e) => {
                            self.push("[");
                            self.expr(e, prec::ASSIGN);
                            self.push("]");
                        }
                    }
                    if let Some(v) = &prop.value {
                        self.push(": ");
                        self.expr(v, prec::ASSIGN);
                    }
                }
                self.push("}");
            }
            ExprKind::Function(f) => self.function("function", f),
            ExprKind::Arrow { func, expr_body } => {
                self.push("(");
                self.push(&func.params.join(", "));
                self.push(") => ");
                match expr_body {
                    Some(e) => {
                        // An object literal body would parse as a block.
                        if matches!(e.kind, ExprKind::Object(_)) {
                            self.push("(");
                            self.expr(e, 0);
                            self.push(")");
                        } else {
                            self.expr(e, prec::ASSIGN);
                        }
                    }
                    None => self.block(&func.body),
                }
            }
            ExprKind::Unary { op, operand } => {
                self.push(op.as_str());
                if matches!(op, UnaryOp::TypeOf | UnaryOp::Void | UnaryOp::Delete) {
                    self.push(" ");
                } else if let ExprKind::Unary { op: inner_op, .. } = &operand.kind {
                    // Avoid `--x` / `++x` from `-(-x)`.
                    if inner_op.as_str().starts_with(op.as_str()) {
                        self.push(" ");
                    }
                } else if let ExprKind::Lit(Lit::Number(n)) = &operand.kind {
                    if *n < 0.0 {
                        self.push(" ");
                    }
                }
                self.expr(operand, prec::UNARY);
            }
            ExprKind::Update { prefix, inc, target } => {
                let op = if *inc { "++" } else { "--" };
                if *prefix {
                    self.push(op);
                    self.expr(target, prec::UNARY);
                } else {
                    self.expr(target, prec::POSTFIX);
                    self.push(op);
                }
            }
            ExprKind::Binary { op, left, right } => {
                let p = binary_prec(*op);
                // `**` is right-associative.
                let (lmin, rmin) = if *op == BinaryOp::Pow { (p + 1, p) } else { (p, p + 1) };
                self.expr(left, lmin);
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.expr(right, rmin);
            }
            ExprKind::Logical { op, left, right } => {
                let p = match op {
                    LogicalOp::Or => prec::OR,
                    LogicalOp::And => prec::AND,
                };
                self.expr(left, p);
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.expr(right, p + 1);
            }
            ExprKind::Cond { cond, cons, alt } => {
                self.expr(cond, prec::COND + 1);
                self.push(" ? ");
                self.expr(cons, prec::ASSIGN);
                self.push(" : ");
                self.expr(alt, prec::ASSIGN);
            }
            ExprKind::Assign { op, target, value } => {
                self.expr(target, prec::POSTFIX);
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.expr(value, prec::ASSIGN);
            }
            ExprKind::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(item, prec::ASSIGN);
                }
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee, prec::CALL);
                self.push("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a, prec::ASSIGN);
                }
                self.push(")");
            }
            ExprKind::New { callee, args } => {
                self.push("new ");
                self.expr(callee, prec::MEMBER_NO_CALL);
                self.push("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a, prec::ASSIGN);
                }
                self.push(")");
            }
            ExprKind::Member { object, prop } => {
                self.member_object(object);
                self.push(".");
                self.push(prop);
            }
            ExprKind::Index { object, index } => {
                self.member_object(object);
                self.push("[");
                self.expr(index, 0);
                self.push("]");
            }
            ExprKind::Template { quasis, exprs } => {
                self.push("`");
                for (i, q) in quasis.iter().enumerate() {
                    for c in q.chars() {
                        match c {
                            '`' => self.push("\\`"),
                            '$' => self.push("\\$"),
                            '\\' => self.push("\\\\"),
                            c => self.out.push(c),
                        }
                    }
                    if i < exprs.len() {
                        self.push("${");
                        self.expr(&exprs[i], 0);
                        self.push("}");
                    }
                }
                self.push("`");
            }
            ExprKind::Paren(inner) => {
                self.push("(");
                self.expr(inner, 0);
                self.push(")");
            }
        }
    }

    fn member_object(&mut self, object: &Expr) {
        // `42.x` is invalid; number receivers need parens.
        if matches!(object.kind, ExprKind::Lit(Lit::Number(_))) {
            self.push("(");
            self.expr_inner(object);
            self.push(")");
        } else {
            self.expr(object, prec::CALL);
        }
    }
}

mod prec {
    pub const ASSIGN: u8 = 2;
    pub const COND: u8 = 3;
    pub const OR: u8 = 4;
    pub const AND: u8 = 5;
    pub const UNARY: u8 = 15;
    pub const POSTFIX: u8 = 16;
    pub const CALL: u8 = 17;
    pub const MEMBER_NO_CALL: u8 = 18;
    pub const PRIMARY: u8 = 19;
}

fn binary_prec(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        BitOr => 6,
        BitXor => 7,
        BitAnd => 8,
        Eq | NotEq | StrictEq | StrictNotEq => 9,
        Lt | LtEq | Gt | GtEq | In | InstanceOf => 10,
        Shl | Shr | UShr => 11,
        Add | Sub => 12,
        Mul | Div | Rem => 13,
        Pow => 14,
    }
}

fn precedence(expr: &Expr) -> u8 {
    match &expr.kind {
        ExprKind::Seq(_) => 1,
        ExprKind::Assign { .. } | ExprKind::Arrow { .. } => prec::ASSIGN,
        ExprKind::Cond { .. } => prec::COND,
        ExprKind::Logical { op: LogicalOp::Or, .. } => prec::OR,
        ExprKind::Logical { op: LogicalOp::And, .. } => prec::AND,
        ExprKind::Binary { op, .. } => binary_prec(*op),
        ExprKind::Unary { .. } | ExprKind::Update { prefix: true, .. } => prec::UNARY,
        ExprKind::Update { prefix: false, .. } => prec::POSTFIX,
        ExprKind::Call { .. } => prec::CALL,
        ExprKind::New { .. } | ExprKind::Member { .. } | ExprKind::Index { .. } => {
            prec::MEMBER_NO_CALL
        }
        ExprKind::Lit(Lit::Number(n)) if *n < 0.0 => prec::UNARY,
        _ => prec::PRIMARY,
    }
}

/// `true` if printing `e` as a statement would start with `{` or `function`,
/// which would be misparsed as a block / declaration.
fn leading_is_ambiguous(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Object(_) | ExprKind::Function(_) => true,
        ExprKind::Binary { left, .. } | ExprKind::Logical { left, .. } => {
            leading_is_ambiguous(left)
        }
        ExprKind::Cond { cond, .. } => leading_is_ambiguous(cond),
        ExprKind::Assign { target, .. } => leading_is_ambiguous(target),
        ExprKind::Seq(items) => items.first().is_some_and(leading_is_ambiguous),
        ExprKind::Call { callee, .. } => leading_is_ambiguous(callee),
        ExprKind::Member { object, .. } | ExprKind::Index { object, .. } => {
            leading_is_ambiguous(object)
        }
        ExprKind::Update { prefix: false, target, .. } => leading_is_ambiguous(target),
        _ => false,
    }
}
