//! Printer correctness property: for *arbitrary synthesized expression
//! trees* (no `Paren` nodes — precedence must be reconstructed purely from
//! structure), `parse(print(e))` yields the same tree modulo parentheses,
//! node ids, and spans. This is the invariant the test-data mutator and the
//! baselines rely on when they synthesize ASTs.

use comfort_syntax::ast::*;
use comfort_syntax::{parse, print_stmt};
use proptest::prelude::*;

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u32..50).prop_map(|n| build::num(n as f64)),
        Just(build::num(0.5)),
        Just(build::num(-3.0)),
        "[a-d]".prop_map(|s| build::ident(&s)),
        "[a-z]{0,6}".prop_map(|s| build::str(&s)),
        any::<bool>().prop_map(build::bool),
        Just(build::null()),
        Just(Expr::synthesized(ExprKind::This)),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            // Binary operators across the precedence spectrum.
            (
                inner.clone(),
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Rem),
                    Just(BinaryOp::Pow),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::StrictEq),
                    Just(BinaryOp::BitAnd),
                    Just(BinaryOp::BitOr),
                    Just(BinaryOp::Shl),
                ],
                inner.clone()
            )
                .prop_map(|(l, op, r)| Expr::synthesized(ExprKind::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                })),
            (inner.clone(), any::<bool>(), inner.clone()).prop_map(|(l, and, r)| {
                Expr::synthesized(ExprKind::Logical {
                    op: if and { LogicalOp::And } else { LogicalOp::Or },
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                Expr::synthesized(ExprKind::Cond {
                    cond: Box::new(c),
                    cons: Box::new(t),
                    alt: Box::new(e),
                })
            }),
            (
                prop_oneof![
                    Just(UnaryOp::Neg),
                    Just(UnaryOp::Not),
                    Just(UnaryOp::TypeOf),
                    Just(UnaryOp::BitNot),
                    Just(UnaryOp::Void),
                ],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::synthesized(ExprKind::Unary {
                    op,
                    operand: Box::new(e),
                })),
            (inner.clone(), "[a-z]{1,4}").prop_map(|(o, p)| {
                Expr::synthesized(ExprKind::Member { object: Box::new(o), prop: p })
            }),
            (inner.clone(), inner.clone()).prop_map(|(o, i)| {
                Expr::synthesized(ExprKind::Index { object: Box::new(o), index: Box::new(i) })
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(
                |(callee, args)| Expr::synthesized(ExprKind::Call {
                    callee: Box::new(callee),
                    args,
                })
            ),
            proptest::collection::vec(inner.clone().prop_map(Some), 0..4)
                .prop_map(|items| Expr::synthesized(ExprKind::Array(items))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::synthesized(ExprKind::Seq(vec![a, b])) }),
        ]
    })
}

/// Structural equality modulo `Paren` wrappers, ids, spans, and the negative
/// number representation (JS has no negative literals: a synthesized
/// `Number(-3)` prints as `-3` and necessarily reparses as `Unary(Neg, 3)`).
fn strip(e: &Expr) -> Expr {
    let kind = match &e.kind {
        ExprKind::Paren(inner) => return strip(inner),
        ExprKind::Unary { op: UnaryOp::Neg, operand } => {
            let inner = strip(operand);
            if let ExprKind::Lit(Lit::Number(n)) = inner.kind {
                ExprKind::Lit(Lit::Number(-n))
            } else {
                ExprKind::Unary { op: UnaryOp::Neg, operand: Box::new(inner) }
            }
        }
        ExprKind::Binary { op, left, right } => {
            ExprKind::Binary { op: *op, left: Box::new(strip(left)), right: Box::new(strip(right)) }
        }
        ExprKind::Logical { op, left, right } => ExprKind::Logical {
            op: *op,
            left: Box::new(strip(left)),
            right: Box::new(strip(right)),
        },
        ExprKind::Cond { cond, cons, alt } => ExprKind::Cond {
            cond: Box::new(strip(cond)),
            cons: Box::new(strip(cons)),
            alt: Box::new(strip(alt)),
        },
        ExprKind::Unary { op, operand } => {
            ExprKind::Unary { op: *op, operand: Box::new(strip(operand)) }
        }
        ExprKind::Member { object, prop } => {
            ExprKind::Member { object: Box::new(strip(object)), prop: prop.clone() }
        }
        ExprKind::Index { object, index } => {
            ExprKind::Index { object: Box::new(strip(object)), index: Box::new(strip(index)) }
        }
        ExprKind::Call { callee, args } => ExprKind::Call {
            callee: Box::new(strip(callee)),
            args: args.iter().map(strip).collect(),
        },
        ExprKind::Array(items) => {
            ExprKind::Array(items.iter().map(|i| i.as_ref().map(strip)).collect())
        }
        ExprKind::Seq(items) => ExprKind::Seq(items.iter().map(strip).collect()),
        other => other.clone(),
    };
    Expr::synthesized(kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_preserves_structure(e in expr_strategy()) {
        // Statement-ify so the parser accepts it; assignment avoids the
        // expression-statement `{`/`function` ambiguity entirely.
        let stmt = build::var_decl("probe", e.clone());
        let printed = print_stmt(&stmt);
        let program = parse(&printed)
            .unwrap_or_else(|err| panic!("printed statement failed to parse: {err}\n{printed}"));
        prop_assert_eq!(program.body.len(), 1);
        let reparsed = match &program.body[0].kind {
            StmtKind::Decl { decls, .. } => decls[0].init.clone().expect("has initializer"),
            other => panic!("expected decl, got {other:?}"),
        };
        let lhs = strip(&e);
        let rhs = strip(&reparsed);
        prop_assert_eq!(
            format!("{lhs:?}"),
            format!("{rhs:?}"),
            "structure changed through print/parse:\n{}",
            printed
        );
    }
}
