//! Back-off n-gram language model over BPE token ids.
//!
//! This is the deep-model stand-in (see DESIGN.md §1): the **context order**
//! plays the role of model capacity. COMFORT's GPT-2 is simulated with a long
//! context (order 12 — long-range dependence, balanced brackets), the
//! DeepSmith/Montage LSTM with a short one (order 2–3), which is precisely
//! the contrast the paper evaluates in Figure 9.

use std::collections::HashMap;

use rand::Rng;

/// Frozen continuation table for one context.
type Continuations = Vec<(u32, u32)>; // (token, count), sorted by count desc

/// A trained back-off n-gram model.
#[derive(Debug, Clone)]
pub struct NgramModel {
    order: usize,
    /// `tables[l]` maps a length-`l` context to its continuations.
    tables: Vec<HashMap<Vec<u32>, Continuations>>,
}

impl NgramModel {
    /// Trains on token sequences with contexts up to `order - 1` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero.
    pub fn train(sequences: &[Vec<u32>], order: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        let mut counting: Vec<HashMap<Vec<u32>, HashMap<u32, u32>>> =
            (0..order).map(|_| HashMap::new()).collect();
        for seq in sequences {
            for i in 0..seq.len() {
                let next = seq[i];
                for l in 0..order.min(i + 1) {
                    let ctx = seq[i - l..i].to_vec();
                    *counting[l].entry(ctx).or_default().entry(next).or_insert(0) += 1;
                }
            }
        }
        let tables = counting
            .into_iter()
            .map(|t| {
                t.into_iter()
                    .map(|(ctx, conts)| {
                        let mut v: Continuations = conts.into_iter().collect();
                        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                        (ctx, v)
                    })
                    .collect()
            })
            .collect();
        NgramModel { order, tables }
    }

    /// The maximum context length + 1.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Continuations for `context`, backing off to shorter contexts until one
    /// has data. Returns the empty slice only for an empty training set.
    pub fn predict(&self, context: &[u32]) -> &[(u32, u32)] {
        let max_l = (self.order - 1).min(context.len());
        for l in (0..=max_l).rev() {
            let ctx = &context[context.len() - l..];
            if let Some(conts) = self.tables[l].get(ctx) {
                if !conts.is_empty() {
                    return conts;
                }
            }
        }
        &[]
    }

    /// Top-k sampling (§3.2, k = 10 in the paper): restrict to the `k`
    /// highest-count continuations and sample proportionally to count.
    pub fn sample_top_k<R: Rng>(&self, rng: &mut R, context: &[u32], k: usize) -> Option<u32> {
        let conts = self.predict(context);
        if conts.is_empty() {
            return None;
        }
        let top = &conts[..k.min(conts.len())];
        let total: u64 = top.iter().map(|(_, c)| *c as u64).sum();
        let mut at = rng.random_range(0..total);
        for (tok, c) in top {
            if at < *c as u64 {
                return Some(*tok);
            }
            at -= *c as u64;
        }
        Some(top[top.len() - 1].0)
    }

    /// Number of distinct contexts stored (all orders).
    pub fn context_count(&self) -> usize {
        self.tables.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> NgramModel {
        // Sequences: 1 2 3 4, 1 2 3 5, 9 2 7.
        NgramModel::train(&[vec![1, 2, 3, 4], vec![1, 2, 3, 5], vec![9, 2, 7]], 3)
    }

    #[test]
    fn highest_order_wins() {
        let m = model();
        // Context [2, 3]: continuations {4, 5}.
        let conts = m.predict(&[2, 3]);
        let toks: Vec<u32> = conts.iter().map(|(t, _)| *t).collect();
        assert_eq!(toks.len(), 2);
        assert!(toks.contains(&4) && toks.contains(&5));
    }

    #[test]
    fn backoff_on_unseen_context() {
        let m = model();
        // Context [42, 2] unseen at order 2; backs off to [2] → {3, 7}.
        let conts = m.predict(&[42, 2]);
        let toks: Vec<u32> = conts.iter().map(|(t, _)| *t).collect();
        assert!(toks.contains(&3));
        assert!(toks.contains(&7));
    }

    #[test]
    fn unigram_fallback() {
        let m = model();
        let conts = m.predict(&[12345]);
        assert!(!conts.is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(m.sample_top_k(&mut r1, &[1], 10), m.sample_top_k(&mut r2, &[1], 10));
        }
    }

    #[test]
    fn top_k_restricts_candidates() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        // With k = 1, sampling always picks the single most frequent token.
        let first = m.predict(&[2]).first().map(|(t, _)| *t);
        for _ in 0..10 {
            assert_eq!(m.sample_top_k(&mut rng, &[2], 1), first);
        }
    }

    #[test]
    fn empty_model_returns_none() {
        let m = NgramModel::train(&[], 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample_top_k(&mut rng, &[1], 10), None);
        assert_eq!(m.context_count(), 0);
    }
}
