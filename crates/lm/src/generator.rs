//! The test-program generator: seed header → token-by-token sampling with
//! the paper's termination rules (§3.2).
//!
//! A generation run starts from a randomly chosen seed header (e.g.
//! `var a = function(assert) {`), repeatedly asks the model for the next
//! token using top-k sampling, and stops when
//!
//! * the braces balance (`{`/`}` matched — the function is complete), or
//! * the dedicated `<EOF>` symbol is produced, or
//! * the token budget (5,000 in the paper) is exhausted — such runaway
//!   generations are usually the syntactically invalid ones.

use rand::Rng;

use crate::bpe::Bpe;
use crate::ngram::NgramModel;

/// End-of-program sentinel appended to every training sequence.
pub const EOF_MARK: &str = "\u{241F}"; // ␟ symbol for <EOF>

/// Configuration of a [`Generator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Context order of the n-gram model (model-capacity knob: 12 ≈ GPT-2,
    /// 2–3 ≈ the DeepSmith LSTM).
    pub order: usize,
    /// BPE merge operations to learn.
    pub bpe_merges: usize,
    /// Top-k sampling width (the paper sets k = 10).
    pub top_k: usize,
    /// Maximum tokens per generation (paper: 5,000 words).
    pub max_tokens: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { order: 12, bpe_merges: 600, top_k: 10, max_tokens: 5000 }
    }
}

/// A trained program generator (tokenizer + model + header pool).
#[derive(Debug, Clone)]
pub struct Generator {
    bpe: Bpe,
    model: NgramModel,
    headers: Vec<String>,
    config: GeneratorConfig,
}

impl Generator {
    /// Trains tokenizer and model on `corpus` and harvests seed headers.
    pub fn train(corpus: &[String], config: GeneratorConfig) -> Self {
        let with_eof: Vec<String> = corpus.iter().map(|p| format!("{p}{EOF_MARK}")).collect();
        let bpe = Bpe::train(&with_eof, config.bpe_merges);
        let sequences: Vec<Vec<u32>> = with_eof.iter().map(|p| bpe.encode(p)).collect();
        let model = NgramModel::train(&sequences, config.order);
        let mut headers = comfort_corpus::harvest_headers(corpus);
        if headers.is_empty() {
            headers.push("var a = function(n) {".to_string());
        }
        Generator { bpe, model, headers, config }
    }

    /// The tokenizer (exposed for the Montage-style baseline).
    pub fn bpe(&self) -> &Bpe {
        &self.bpe
    }

    /// The header pool size.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Generates one test program.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> String {
        let header = &self.headers[rng.random_range(0..self.headers.len())];
        self.generate_from(rng, header)
    }

    /// Generates starting from an explicit seed `header`.
    pub fn generate_from<R: Rng>(&self, rng: &mut R, header: &str) -> String {
        let mut ids = self.bpe.encode(header);
        let mut text = self.bpe.decode(&ids);
        let mut depth = brace_delta(&text);
        let needs_semi = header.contains('=');

        for _ in 0..self.config.max_tokens {
            let Some(next) = self.model.sample_top_k(rng, &ids, self.config.top_k) else {
                break;
            };
            let tok_text = self.bpe.token_text(next).replace('\u{2581}', " ");
            if tok_text.contains(EOF_MARK) {
                break;
            }
            ids.push(next);
            text.push_str(&tok_text);
            depth += brace_delta(&tok_text);
            if depth <= 0 {
                break;
            }
        }
        if needs_semi && text.trim_end().ends_with('}') {
            text.push(';');
        }
        text.push('\n');
        text
    }
}

/// Net `{`/`}` depth change contributed by `text`, ignoring braces inside
/// string literals well enough for generated code (quotes toggle an
/// in-string flag).
fn brace_delta(text: &str) -> i32 {
    let mut depth = 0;
    let mut in_str: Option<char> = None;
    let mut prev_escape = false;
    for c in text.chars() {
        match in_str {
            Some(q) => {
                if prev_escape {
                    prev_escape = false;
                } else if c == '\\' {
                    prev_escape = true;
                } else if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            },
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained(order: usize) -> Generator {
        let corpus = comfort_corpus::training_corpus(11, 200);
        Generator::train(
            &corpus,
            GeneratorConfig { order, bpe_merges: 400, max_tokens: 2000, ..Default::default() },
        )
    }

    #[test]
    fn generates_deterministically_per_seed() {
        let g = trained(8);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(g.generate(&mut r1), g.generate(&mut r2));
    }

    #[test]
    fn long_context_mostly_produces_valid_js() {
        let g = trained(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ok = 0;
        const N: usize = 60;
        for _ in 0..N {
            if comfort_syntax::lint(&g.generate(&mut rng)).is_ok() {
                ok += 1;
            }
        }
        // The GPT-2 proxy must clear a DeepSmith-level bar by a wide margin
        // (paper: 80% vs <31% syntactic validity; the contrast itself is
        // asserted in `short_context_is_worse_than_long_context`).
        assert!(ok * 100 >= N * 55, "only {ok}/{N} valid");
    }

    #[test]
    fn short_context_is_worse_than_long_context() {
        let long = trained(10);
        let short = trained(2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut long_ok = 0;
        let mut short_ok = 0;
        const N: usize = 50;
        for _ in 0..N {
            if comfort_syntax::lint(&long.generate(&mut rng)).is_ok() {
                long_ok += 1;
            }
            if comfort_syntax::lint(&short.generate(&mut rng)).is_ok() {
                short_ok += 1;
            }
        }
        assert!(
            long_ok > short_ok,
            "long-context validity ({long_ok}) must beat short-context ({short_ok})"
        );
    }

    #[test]
    fn generation_is_bounded() {
        let g = trained(3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = g.generate(&mut rng);
            assert!(p.len() < 100_000);
        }
    }

    #[test]
    fn explicit_header_is_respected() {
        let g = trained(8);
        let mut rng = StdRng::seed_from_u64(4);
        let p = g.generate_from(&mut rng, "var a = function(assert) {");
        assert!(p.starts_with("var a = function(assert) {"), "{p}");
    }

    #[test]
    fn brace_delta_ignores_string_contents() {
        assert_eq!(brace_delta("{ \"}}}\" }"), 0);
        assert_eq!(brace_delta("{ '{{{' }"), 0);
        assert_eq!(brace_delta("function f() {"), 1);
        assert_eq!(brace_delta("}"), -1);
    }
}
