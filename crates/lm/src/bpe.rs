//! Byte-Pair-Encoding tokenizer (§3.2).
//!
//! Implements the same scheme the paper describes: count word frequencies,
//! break words into subword chunks by iteratively merging the most frequent
//! adjacent pair, and map each subword to an integer in a vocabulary table.
//! Common keywords (`var`, `for`, `if`) end up as whole tokens while rare
//! identifiers decompose into a few characters — allowing an unbounded
//! identifier space over a finite vocabulary.

use std::collections::HashMap;

/// Marker prefixed to space-separated word starts (the `Ġ` of GPT-2's BPE).
const SPACE_MARK: char = '\u{2581}'; // ▁

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct Bpe {
    /// Learned merges in priority order: `(left, right) -> merged`.
    merges: Vec<(String, String)>,
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Bpe {
    /// Trains on `corpus` with at most `n_merges` merge operations.
    pub fn train(corpus: &[String], n_merges: usize) -> Self {
        // Word frequency table over pre-tokens.
        let mut word_freq: HashMap<Vec<String>, u64> = HashMap::new();
        for text in corpus {
            for word in pre_tokenize(text) {
                let symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
                *word_freq.entry(symbols).or_insert(0) += 1;
            }
        }

        let mut merges = Vec::with_capacity(n_merges);
        for _ in 0..n_merges {
            // Count adjacent pairs, weighted by word frequency.
            let mut pair_freq: HashMap<(String, String), u64> = HashMap::new();
            for (symbols, freq) in &word_freq {
                for w in symbols.windows(2) {
                    *pair_freq.entry((w[0].clone(), w[1].clone())).or_insert(0) += freq;
                }
            }
            // Deterministic best pair: max count, ties broken lexicographically.
            let Some((best, count)) =
                pair_freq.into_iter().max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let merged = format!("{}{}", best.0, best.1);
            // Apply the merge to every word.
            let mut new_freq: HashMap<Vec<String>, u64> = HashMap::with_capacity(word_freq.len());
            for (symbols, freq) in word_freq {
                let mut out = Vec::with_capacity(symbols.len());
                let mut i = 0;
                while i < symbols.len() {
                    if i + 1 < symbols.len() && symbols[i] == best.0 && symbols[i + 1] == best.1 {
                        out.push(merged.clone());
                        i += 2;
                    } else {
                        out.push(symbols[i].clone());
                        i += 1;
                    }
                }
                *new_freq.entry(out).or_insert(0) += freq;
            }
            word_freq = new_freq;
            merges.push(best);
        }

        // Vocabulary: all residual symbols plus all single characters.
        // Collected into an ordered set first so token ids are deterministic
        // (HashMap iteration order would leak into generation otherwise).
        let mut all: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for symbols in word_freq.keys() {
            for s in symbols {
                for c in s.chars() {
                    all.insert(c.to_string());
                }
                all.insert(s.clone());
            }
        }
        for (l, r) in &merges {
            all.insert(format!("{l}{r}"));
        }
        let mut token_to_id = HashMap::new();
        let mut id_to_token = Vec::new();
        for tok in all {
            token_to_id.insert(tok.clone(), id_to_token.len() as u32);
            id_to_token.push(tok);
        }

        Bpe { merges, token_to_id, id_to_token }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.id_to_token.len()
    }

    /// Number of merge operations learned during training.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Encodes `text` to token ids.
    ///
    /// Segmentation is greedy longest-match against the learned vocabulary —
    /// equivalent in coverage to replaying the merge sequence, but linear in
    /// practice (merge replay is O(merges × word) per word).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for word in pre_tokenize(text) {
            let chars: Vec<char> = word.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                let mut best: Option<(usize, u32)> = None;
                let mut probe = String::new();
                for (j, &c) in chars.iter().enumerate().skip(i) {
                    probe.push(c);
                    if let Some(&id) = self.token_to_id.get(&probe) {
                        best = Some((j + 1, id));
                    }
                }
                match best {
                    Some((next, id)) => {
                        out.push(id);
                        i = next;
                    }
                    None => i += 1, // unknown character: skip
                }
            }
        }
        out
    }

    /// Decodes ids back to text.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            if let Some(tok) = self.id_to_token.get(id as usize) {
                out.push_str(tok);
            }
        }
        out.replace(SPACE_MARK, " ")
    }

    /// Decodes a single token id.
    pub fn token_text(&self, id: u32) -> &str {
        self.id_to_token.get(id as usize).map(String::as_str).unwrap_or("")
    }
}

/// Splits source text into pre-tokens: identifier/number runs, single
/// punctuation characters, and explicit newlines. A leading space folds into
/// the following token as the `▁` marker.
fn pre_tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    let mut pending_space = false;
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            out.push("\n".to_string());
            pending_space = false;
            continue;
        }
        if c == ' ' || c == '\t' {
            chars.next();
            pending_space = true;
            continue;
        }
        let mut word = String::new();
        if pending_space {
            word.push(SPACE_MARK);
            pending_space = false;
        }
        if c.is_alphanumeric() || c == '_' || c == '$' {
            while let Some(&c2) = chars.peek() {
                if c2.is_alphanumeric()
                    || c2 == '_'
                    || c2 == '$'
                    || c2 == '.' && word.chars().last().is_some_and(|p| p.is_ascii_digit())
                {
                    word.push(c2);
                    chars.next();
                } else {
                    break;
                }
            }
        } else {
            word.push(c);
            chars.next();
        }
        out.push(word);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "var x = foo(1);\nvar y = foo(2);\n".to_string(),
            "var z = foo(3);\nfunction foo(n) { return n; }\n".to_string(),
        ]
    }

    #[test]
    fn roundtrip_preserves_text() {
        let bpe = Bpe::train(&corpus(), 50);
        let text = "var x = foo(1);";
        assert_eq!(bpe.decode(&bpe.encode(text)), text);
    }

    #[test]
    fn newlines_survive() {
        let bpe = Bpe::train(&corpus(), 20);
        let text = "var x = 1;\nvar y = 2;";
        assert_eq!(bpe.decode(&bpe.encode(text)), text);
    }

    #[test]
    fn common_words_become_single_tokens() {
        let bpe = Bpe::train(&corpus(), 200);
        // `var` appears often; after enough merges it is one token (with its
        // space/newline context variants).
        let ids = bpe.encode("var");
        assert_eq!(ids.len(), 1, "`var` should be a single token");
    }

    #[test]
    fn unknown_chars_are_skipped_not_panicked() {
        let bpe = Bpe::train(&corpus(), 10);
        let ids = bpe.encode("本");
        assert!(ids.is_empty());
    }

    #[test]
    fn vocab_is_finite_and_bounded() {
        let bpe = Bpe::train(&corpus(), 30);
        assert!(bpe.vocab_size() > 10);
        assert!(bpe.vocab_size() < 200);
    }
}
