#![warn(missing_docs)]

//! Deep-learning-based test-program generation, reproduced with classical
//! machinery (§3.2 / DESIGN.md §1).
//!
//! The paper fine-tunes **GPT-2** on a JS corpus and samples programs token
//! by token with top-k sampling. The Rust ML stack cannot carry a GPT-2
//! here, so this crate preserves the *behaviourally relevant* structure:
//!
//! * [`Bpe`] — the same Byte-Pair-Encoding tokenization the paper uses,
//! * [`NgramModel`] — a back-off n-gram model whose **context order** is the
//!   model-capacity knob (order 12 ≈ GPT-2's long-range dependence; order
//!   2–3 ≈ the DeepSmith LSTM baseline),
//! * [`Generator`] — seed headers, top-k sampling (k = 10), and the paper's
//!   termination rules (balanced braces, `<EOF>`, 5,000-token cap).
//!
//! The Figure 9 contrast (COMFORT's high syntactic validity vs the
//! short-context baselines) emerges from the order knob, not from hard-coded
//! numbers — see `crates/bench` for the measurement.
//!
//! # Examples
//!
//! ```
//! use comfort_lm::{Generator, GeneratorConfig};
//! use rand::SeedableRng;
//!
//! let corpus = comfort_corpus::training_corpus(1, 60);
//! let generator = Generator::train(&corpus, GeneratorConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let program = generator.generate(&mut rng);
//! assert!(program.contains("function"));
//! ```

mod bpe;
mod generator;
mod ngram;

pub use bpe::Bpe;
pub use generator::{Generator, GeneratorConfig, EOF_MARK};
pub use ngram::NgramModel;
